//! Offline stand-in for the subset of
//! [crossbeam](https://crates.io/crates/crossbeam) the dcmesh workspace uses.
//! The build container has no registry access, so the workspace points its
//! `crossbeam` dependency here.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! backed by `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust
//! 1.72, which is all the simulated-MPI layer needs).

/// Multi-producer channels, crossbeam-channel style.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel. Clonable and shareable across
    /// threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when every sender has been dropped.
    #[derive(Debug)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails only once all senders are
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

// Opaque Debug impls: these types hold closures or raw parallel-iterator
// state with no useful field rendering; the workspace denies public types
// without Debug.

impl<T> std::fmt::Debug for channel::Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for channel::Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(t).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<usize> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
