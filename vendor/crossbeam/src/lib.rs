//! Offline stand-in for the subset of
//! [crossbeam](https://crates.io/crates/crossbeam) the dcmesh workspace uses.
//! The build container has no registry access, so the workspace points its
//! `crossbeam` dependency here.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver}` is provided,
//! backed by `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust
//! 1.72, which is all the simulated-MPI layer needs). The receiver also
//! exposes `try_recv` and `recv_timeout` so callers can bound their waits —
//! the fault-tolerant comm layer polls in bounded chunks instead of
//! blocking forever on a dead peer.

/// Multi-producer channels, crossbeam-channel style.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sending half of an unbounded channel. Clonable and shareable across
    /// threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when every sender has been dropped.
    #[derive(Debug)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// Every sender has been dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has been dropped and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; fails only once all senders are
        /// gone and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Dequeue a message if one is already waiting; never blocks.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

// Opaque Debug impls: these types hold closures or raw parallel-iterator
// state with no useful field rendering; the workspace denies public types
// without Debug.

impl<T> std::fmt::Debug for channel::Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for channel::Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(t).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<usize> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_reports_empty_then_value() {
        let (tx, rx) = unbounded();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
