//! Offline stand-in for the subset of
//! [parking_lot](https://crates.io/crates/parking_lot) the dcmesh workspace
//! uses. The build container has no registry access, so the workspace points
//! its `parking_lot` dependency here.
//!
//! Provides a [`Mutex`] whose `lock()` returns the guard directly (no
//! `Result`), matching parking_lot's no-poisoning semantics. Backed by
//! `std::sync::Mutex`; a poisoned lock is recovered rather than propagated.

use std::sync::MutexGuard;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on
    /// poisoning — a poisoned state is simply cleared, like parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_panic_in_critical_section() {
        let m = std::sync::Arc::new(Mutex::new(0usize));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: lock() still succeeds afterwards.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
