//! Offline stand-in for the subset of
//! [criterion](https://crates.io/crates/criterion) the dcmesh workspace
//! uses. The build container has no registry access, so the workspace
//! points its `criterion` dependency here.
//!
//! Covered surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurement is a calibrated mean over `sample_size` timed
//! batches, printed one line per benchmark — no plots, no statistics
//! beyond mean and spread.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub use std::hint::black_box;

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form, for groups iterating one knob.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever criterion takes `id: impl Into<BenchmarkId>`.
impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    sample_size: usize,
    /// Filled in by `iter`: (mean seconds per call, samples).
    result: Option<(f64, usize)>,
}

impl Bencher {
    /// Time `body`, storing the mean time per call over `sample_size`
    /// batches. Batch size is calibrated so each batch runs ≳2 ms and the
    /// whole measurement stays near ~100 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up + calibration: how long does one call take?
        let t0 = Instant::now();
        black_box(body());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let per_batch = (2e-3 / once).clamp(1.0, 1e6) as usize;
        // Cap total work so slow benches don't stall the suite.
        let samples = self
            .sample_size
            .min((0.1 / (once * per_batch as f64)).ceil().max(1.0) as usize)
            .max(1);
        let mut total = Duration::ZERO;
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(body());
            }
            total += t.elapsed();
        }
        let mean = total.as_secs_f64() / (samples * per_batch) as f64;
        self.result = Some((mean, samples));
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn run_one(label: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, samples)) => {
            println!(
                "{label:<48} time: [{}]  ({samples} samples)",
                fmt_time(mean)
            );
        }
        None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, f);
        self
    }

    /// Run one benchmark that closes over `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnOnce(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

// Opaque Debug impls: these types hold closures or raw parallel-iterator
// state with no useful field rendering; the workspace denies public types
// without Debug.

impl std::fmt::Debug for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkId").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Bencher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bencher").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for BenchmarkGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkGroup").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Criterion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Criterion").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 64usize), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }
}
