//! Offline stand-in for the subset of [rayon](https://crates.io/crates/rayon)
//! the dcmesh workspace uses. The container this repo builds in has no
//! registry access, so the workspace points its `rayon` dependency at this
//! path crate instead.
//!
//! Semantics match rayon for the covered surface:
//!
//! * `slice.par_chunks_mut(n)` — contiguous chunks, `enumerate()` indices
//!   equal the sequential chunk positions,
//! * `(0..n).into_par_iter()` / `vec.into_par_iter()` / `vec.par_iter_mut()`,
//! * `.for_each(..)` and `.map(..).collect::<C>()` (order-preserving),
//! * `current_num_threads()`.
//!
//! Execution uses `std::thread::scope`: items are split into at most
//! `current_num_threads()` contiguous batches, each batch runs on its own
//! scoped thread, and results are concatenated in order. Panics in any task
//! propagate to the caller, like rayon.

use std::num::NonZeroUsize;

/// Number of threads parallel operations may use (rayon's global-pool size;
/// here, the machine's available parallelism).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over `items` with order-preserving batching across scoped threads.
fn run_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let nthreads = current_num_threads().min(n);
    if nthreads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let batch = n.div_ceil(nthreads);
    let mut batches: Vec<Vec<T>> = Vec::with_capacity(nthreads);
    let mut it = items.into_iter();
    loop {
        let b: Vec<T> = it.by_ref().take(batch).collect();
        if b.is_empty() {
            break;
        }
        batches.push(b);
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|b| scope.spawn(move || b.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel task panicked"))
            .collect()
    })
}

/// A materialized parallel iterator over `items`.
pub struct IntoParIter<T> {
    items: Vec<T>,
}

impl<T: Send> IntoParIter<T> {
    /// Pair each item with its sequential index.
    pub fn enumerate(self) -> IntoParIter<(usize, T)> {
        IntoParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Consume every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        run_parallel(self.items, f);
    }

    /// Map items in parallel; finish with [`MapIter::collect`].
    pub fn map<R, F>(self, f: F) -> MapIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        MapIter {
            items: self.items,
            f,
        }
    }
}

/// Adapter produced by [`IntoParIter::map`].
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> MapIter<T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
        C: FromIterator<R>,
    {
        run_parallel(self.items, self.f).into_iter().collect()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type yielded by the parallel iterator.
    type Item: Send;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> IntoParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> IntoParIter<usize> {
        IntoParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> IntoParIter<T> {
        IntoParIter { items: self }
    }
}

/// `par_iter_mut()` for mutable views over collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type (`&mut T`).
    type Item: Send;
    /// Parallel iterator of mutable references.
    fn par_iter_mut(&'data mut self) -> IntoParIter<Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> IntoParIter<&'data mut T> {
        IntoParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    fn par_iter_mut(&'data mut self) -> IntoParIter<&'data mut T> {
        IntoParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> IntoParIter<&mut [T]> {
        IntoParIter {
            items: self.chunks_mut(chunk_size.max(1)).collect(),
        }
    }
}

/// The traits rayon users import wholesale.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_enumerate_in_order() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 10);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_every_item() {
        let mut v: Vec<u32> = vec![1; 57];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        (0..4usize).into_par_iter().for_each(|i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }
}
