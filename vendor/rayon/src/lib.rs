//! Offline stand-in for the subset of [rayon](https://crates.io/crates/rayon)
//! the dcmesh workspace uses — now a thin facade over the persistent
//! executor in `dcmesh-pool`.
//!
//! The original shim spawned and joined fresh OS threads via
//! `std::thread::scope` on every call and materialized every index range
//! into a `Vec`. All execution now routes to [`dcmesh_pool::global`]: one
//! set of worker threads for the whole process, parked on a condvar
//! between calls, with work handed out by atomic chunk-claiming.
//!
//! Semantics match rayon for the covered surface:
//!
//! * `slice.par_chunks_mut(n)` — contiguous chunks, `enumerate()` indices
//!   equal the sequential chunk positions,
//! * `(0..n).into_par_iter()` — **zero-allocation**: the range is
//!   dispatched directly, never collected into a `Vec<usize>`,
//! * `vec.into_par_iter()` / `vec.par_iter_mut()` / `slice.par_iter_mut()`,
//! * `.for_each(..)` and `.map(..).collect::<C>()` (order-preserving),
//! * `current_num_threads()` — the persistent pool's size
//!   (`--threads` override > `DCMESH_THREADS` > `available_parallelism`).
//!
//! Panics in any task propagate to the caller, like rayon. One divergence
//! worth knowing: if a task panics mid-job in a consuming iterator
//! (`vec.into_par_iter()`), items not yet processed are leaked rather than
//! dropped — memory-safe, but drop-order-sensitive code should not panic
//! inside parallel bodies.

use dcmesh_pool::{global, SlicePtr};
use std::mem::ManuallyDrop;

/// Number of threads parallel operations may use — the persistent pool's
/// execution-slot count.
pub fn current_num_threads() -> usize {
    global().size()
}

// ---------------------------------------------------------------------------
// Ranges — dispatched without materialization
// ---------------------------------------------------------------------------

/// Parallel iterator over `start..end`, dispatched as an index range.
pub struct RangeParIter {
    start: usize,
    end: usize,
}

impl RangeParIter {
    /// Run `f` for every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        global().for_each_index(self.start..self.end, f);
    }

    /// Pair each index with its sequential position (for `start == 0`
    /// ranges the pair is `(i, i)`).
    pub fn enumerate(self) -> RangeEnumParIter {
        RangeEnumParIter {
            start: self.start,
            end: self.end,
        }
    }

    /// Map indices in parallel; finish with [`RangeMapIter::collect`].
    pub fn map<R, F>(self, f: F) -> RangeMapIter<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
    {
        RangeMapIter {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// Adapter produced by [`RangeParIter::enumerate`].
pub struct RangeEnumParIter {
    start: usize,
    end: usize,
}

impl RangeEnumParIter {
    /// Run `f((position, index))` for every index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, usize)) + Sync + Send,
    {
        let start = self.start;
        global().for_each_index(0..self.end.saturating_sub(start), move |pos| {
            f((pos, start + pos))
        });
    }
}

/// Adapter produced by [`RangeParIter::map`].
pub struct RangeMapIter<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> RangeMapIter<F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(usize) -> R + Sync + Send,
        C: FromIterator<R>,
    {
        let start = self.start;
        let f = self.f;
        global()
            .map_index(self.end.saturating_sub(start), move |i| f(start + i))
            .into_iter()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Owned collections
// ---------------------------------------------------------------------------

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

/// Move every element out of `items` by claimed index, then free the buffer
/// without dropping elements. If `f` panics, unprocessed elements (and the
/// buffer) are leaked — memory-safe, see the crate docs.
fn consume_in_parallel<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync + Send,
{
    let mut items = ManuallyDrop::new(items);
    let n = items.len();
    let base = SlicePtr::new(&mut items);
    let out = global().map_index(n, move |i| {
        // SAFETY: each index is claimed exactly once, so each element is
        // moved out exactly once.
        let item = unsafe { std::ptr::read(base.get_mut(i) as *mut T) };
        f(i, item)
    });
    // SAFETY: all elements were moved out above; reconstituting with len 0
    // frees the allocation without double-dropping them.
    drop(unsafe { Vec::from_raw_parts(items.as_mut_ptr(), 0, items.capacity()) });
    out
}

impl<T: Send> VecParIter<T> {
    /// Pair each item with its sequential index.
    pub fn enumerate(self) -> VecEnumParIter<T> {
        VecEnumParIter { items: self.items }
    }

    /// Consume every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        consume_in_parallel(self.items, move |_, item| f(item));
    }

    /// Map items in parallel; finish with [`VecMapIter::collect`].
    pub fn map<R, F>(self, f: F) -> VecMapIter<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        VecMapIter {
            items: self.items,
            f,
        }
    }
}

/// Adapter produced by [`VecParIter::enumerate`].
pub struct VecEnumParIter<T> {
    items: Vec<T>,
}

impl<T: Send> VecEnumParIter<T> {
    /// Consume every `(index, item)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, T)) + Sync + Send,
    {
        consume_in_parallel(self.items, move |i, item| f((i, item)));
    }
}

/// Adapter produced by [`VecParIter::map`].
pub struct VecMapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> VecMapIter<T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
        C: FromIterator<R>,
    {
        let f = self.f;
        consume_in_parallel(self.items, move |_, item| f(item))
            .into_iter()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Mutable views
// ---------------------------------------------------------------------------

/// Parallel iterator of `&mut T` over a slice.
pub struct SliceMutParIter<'data, T> {
    data: &'data mut [T],
}

impl<'data, T: Send> SliceMutParIter<'data, T> {
    /// Run `f(&mut item)` for every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync + Send,
    {
        global().for_each_mut(self.data, move |_, x| f(x));
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> SliceMutEnumParIter<'data, T> {
        SliceMutEnumParIter { data: self.data }
    }

    /// Map elements in parallel; finish with [`SliceMutMapIter::collect`].
    pub fn map<R, F>(self, f: F) -> SliceMutMapIter<'data, T, F>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync + Send,
    {
        SliceMutMapIter { data: self.data, f }
    }
}

/// Adapter produced by [`SliceMutParIter::enumerate`].
pub struct SliceMutEnumParIter<'data, T> {
    data: &'data mut [T],
}

impl<'data, T: Send> SliceMutEnumParIter<'data, T> {
    /// Run `f((index, &mut item))` for every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync + Send,
    {
        global().for_each_mut(self.data, move |i, x| f((i, x)));
    }
}

/// Adapter produced by [`SliceMutParIter::map`].
pub struct SliceMutMapIter<'data, T, F> {
    data: &'data mut [T],
    f: F,
}

impl<'data, T: Send, F> SliceMutMapIter<'data, T, F> {
    /// Run the map in parallel and collect results in input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync + Send,
        C: FromIterator<R>,
    {
        let f = self.f;
        global()
            .map_mut(self.data, move |_, x| f(x))
            .into_iter()
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Mutable chunks
// ---------------------------------------------------------------------------

/// Parallel iterator over contiguous mutable chunks of a slice.
pub struct ChunksMutParIter<'data, T> {
    data: &'data mut [T],
    chunk_size: usize,
}

impl<'data, T: Send> ChunksMutParIter<'data, T> {
    /// Run `f(chunk)` for every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync + Send,
    {
        global().for_each_chunks_of_mut(self.data, self.chunk_size, move |_, c| f(c));
    }

    /// Pair each chunk with its sequential position.
    pub fn enumerate(self) -> ChunksMutEnumParIter<'data, T> {
        ChunksMutEnumParIter {
            data: self.data,
            chunk_size: self.chunk_size,
        }
    }
}

/// Adapter produced by [`ChunksMutParIter::enumerate`].
pub struct ChunksMutEnumParIter<'data, T> {
    data: &'data mut [T],
    chunk_size: usize,
}

impl<'data, T: Send> ChunksMutEnumParIter<'data, T> {
    /// Run `f((chunk_index, chunk))` for every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync + Send,
    {
        global().for_each_chunks_of_mut(self.data, self.chunk_size, move |t, c| f((t, c)));
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Item type yielded by the parallel iterator.
    type Item: Send;
    /// Concrete parallel-iterator type.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// `par_iter_mut()` for mutable views over collections.
pub trait IntoParallelRefMutIterator<'data> {
    /// Item type (`&mut T`).
    type Item: Send;
    /// Concrete parallel-iterator type.
    type Iter;
    /// Parallel iterator of mutable references.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = SliceMutParIter<'data, T>;
    fn par_iter_mut(&'data mut self) -> SliceMutParIter<'data, T> {
        SliceMutParIter { data: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = SliceMutParIter<'data, T>;
    fn par_iter_mut(&'data mut self) -> SliceMutParIter<'data, T> {
        SliceMutParIter { data: self }
    }
}

/// `par_chunks_mut()` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over contiguous mutable chunks of length
    /// `chunk_size` (last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T> {
        ChunksMutParIter {
            data: self,
            chunk_size: chunk_size.max(1),
        }
    }
}

/// The traits rayon users import wholesale.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator, ParallelSliceMut};
}

// Opaque Debug impls: these types hold closures or raw parallel-iterator
// state with no useful field rendering; the workspace denies public types
// without Debug.

impl std::fmt::Debug for RangeParIter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangeParIter").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for RangeEnumParIter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangeEnumParIter").finish_non_exhaustive()
    }
}

impl<F> std::fmt::Debug for RangeMapIter<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RangeMapIter").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for VecParIter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecParIter").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for VecEnumParIter<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecEnumParIter").finish_non_exhaustive()
    }
}

impl<T, F> std::fmt::Debug for VecMapIter<T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecMapIter").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for SliceMutParIter<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceMutParIter").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for SliceMutEnumParIter<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceMutEnumParIter")
            .finish_non_exhaustive()
    }
}

impl<T, F> std::fmt::Debug for SliceMutMapIter<'_, T, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SliceMutMapIter").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for ChunksMutParIter<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunksMutParIter").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for ChunksMutEnumParIter<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunksMutEnumParIter")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_enumerate_in_order() {
        let mut v = vec![0usize; 103];
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for x in c.iter_mut() {
                *x = i;
            }
        });
        for (j, &x) in v.iter().enumerate() {
            assert_eq!(x, j / 10);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_touches_every_item() {
        let mut v: Vec<u32> = vec![1; 57];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_iter_mut_map_collect_in_order() {
        let mut v: Vec<u32> = (0..64).collect();
        let out: Vec<u32> = v.par_iter_mut().map(|x| *x * 10).collect();
        assert_eq!(out, (0..64).map(|x| x * 10).collect::<Vec<u32>>());
    }

    #[test]
    fn vec_into_par_iter_consumes_each_once() {
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..200).collect();
        items.into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn range_enumerate_positions_match() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        (5..55usize)
            .into_par_iter()
            .enumerate()
            .for_each(|(pos, i)| {
                assert_eq!(i, pos + 5);
                hits[pos].fetch_add(1, Ordering::Relaxed);
            });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        (0..4usize).into_par_iter().for_each(|i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }
}
