//! Offline stand-in for the subset of
//! [proptest](https://crates.io/crates/proptest) the dcmesh workspace uses.
//! The build container has no registry access, so the workspace points its
//! `proptest` dependency here.
//!
//! Covered surface: the [`Strategy`] trait with [`Strategy::prop_map`],
//! range strategies over the workspace's numeric types, tuple strategies,
//! [`collection::vec`], [`ProptestConfig::with_cases`], and the
//! [`proptest!`] / [`prop_assert!`] macros. Sampling is deterministic
//! (fixed-seed xoshiro generator per test), so failures are reproducible —
//! the real crate's shrinking and persistence machinery is intentionally
//! absent.

/// Deterministic random source used to sample strategies.
pub mod test_runner {
    /// Small xoshiro256++ generator, deterministically seeded per test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Fixed-seed construction: every test run samples the same cases.
        pub fn deterministic() -> Self {
            let mut sm = 0x9E3779B97F4A7C15u64;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uint_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_sint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_sint_strategy!(i64, i32, i16, i8, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, 1..8)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-test configuration; only `cases` is honored by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to sample per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` samples of each property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)` is
/// expanded into a test that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (@run($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for _case in 0..config.cases {
                let ($($arg,)*) =
                    ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                $body
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

// Opaque Debug impls: these types hold closures or raw parallel-iterator
// state with no useful field rendering; the workspace denies public types
// without Debug.

impl<S, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S> std::fmt::Debug for collection::VecStrategy<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VecStrategy").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            n in 1usize..10,
            x in -2.0f64..2.0,
            s in 0u64..100,
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!(s < 100);
        }

        #[test]
        fn prop_map_and_vec_compose(
            v in collection::vec((0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b), 1..8),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0.0..2.0).contains(&x)));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = (0.0f64..1.0, 0u64..1000);
        let mut r1 = TestRng::deterministic();
        let mut r2 = TestRng::deterministic();
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
