//! Offline stand-in for the subset of [rand](https://crates.io/crates/rand)
//! the dcmesh workspace uses. The build container has no registry access, so
//! the workspace points its `rand` dependency here.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over the numeric
//! range types the workspace samples. Deterministic for a fixed seed, which
//! is all the simulation and its tests rely on.

/// Construct a generator from a 64-bit seed (SplitMix64 state expansion,
/// like rand's `SeedableRng::seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build the generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, driven by an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one value from `self`.
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// A source of randomness.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (half-open, like rand 0.8).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform f64 in `[0, 1)` using the top 53 bits.
fn unit_f64<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i64, i32, i16, i8, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The SplitMix64 golden-gamma increment.
    const GAMMA: u64 = 0x9E3779B97F4A7C15;

    /// The SplitMix64 output mix (Steele, Lea & Flood 2014).
    #[inline]
    fn splitmix_mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++ (small, fast,
    /// excellent statistical quality for simulation seeding).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard way to seed xoshiro.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(GAMMA);
                splitmix_mix(sm)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    /// A counter-based SplitMix64 generator whose entire state is one
    /// `u64`, exposed exactly through [`SplitMix64::state`] /
    /// [`SplitMix64::from_state`]. Checkpoint/restart uses it wherever a
    /// generator must resume bit-for-bit mid-stream (FSSH hop draws):
    /// [`StdRng`]'s xoshiro state is deliberately opaque, this one is not.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// The raw counter state (serialize this).
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuild the generator from a previously captured state; the
        /// output stream continues exactly where [`SplitMix64::state`] was
        /// taken.
        pub fn from_state(state: u64) -> Self {
            Self { state }
        }
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(GAMMA);
            splitmix_mix(self.state)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SplitMix64, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(1usize..9);
            assert!((1..9).contains(&n));
            let i: i32 = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn splitmix_deterministic_and_seed_compatible() {
        // The sequence for a fixed seed is part of the checkpoint format:
        // pin the first draws so a format break cannot slip in silently.
        let mut rng = SplitMix64::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(rng.next_u64(), 0x6E789E6AA1B965F4);
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_state_roundtrip_resumes_mid_stream() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut resumed = SplitMix64::from_state(rng.state());
        for _ in 0..50 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn splitmix_gen_range_respects_bounds() {
        let mut rng = SplitMix64::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
