#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints-as-errors, full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== cargo bench --workspace --no-run =="
cargo bench --workspace --no-run

echo "== pool tests at DCMESH_THREADS=2 =="
DCMESH_THREADS=2 cargo test -q -p dcmesh-pool -p dcmesh-device -p dcmesh-lfd

echo "== unsafe-hygiene lint gate =="
cargo run -q -p dcmesh-analyze --bin lint

echo "== concurrency suites under the shadow-access race detector =="
# --test-threads=1: shadow intervals are raw addresses, so unrelated
# tests must not interleave reallocations (see crates/analyze/src/race.rs).
DCMESH_RACECHECK=1 cargo test -q -p dcmesh-pool -p dcmesh-device -p dcmesh-lfd -- --test-threads=1

echo "All checks passed."
