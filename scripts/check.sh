#!/usr/bin/env bash
# Tiered repo-wide hygiene gate. Run from anywhere; operates on the
# workspace root. Shared by local runs and CI (.github/workflows/ci.yml):
#
#   check.sh quick   fast lane — fmt, clippy -D warnings, workspace tests
#   check.sh gates   heavy gates — audit, racecheck, fault matrix, model
#                    check, overlap ablation, serve p95 latency gate, ...
#   check.sh all     quick + gates (default)
set -euo pipefail
cd "$(dirname "$0")/.."

# Every mktemp dir/file registers here; the EXIT trap removes them even
# when a gate fails mid-way (they used to leak on error).
SCRATCH=()
cleanup() {
  if [ "${#SCRATCH[@]}" -gt 0 ]; then
    rm -rf -- "${SCRATCH[@]}"
  fi
}
trap cleanup EXIT

tier_quick() {
  echo "== cargo fmt --check =="
  cargo fmt --all -- --check

  echo "== cargo clippy --workspace -- -D warnings =="
  cargo clippy --workspace --all-targets -- -D warnings

  echo "== cargo test --workspace -q =="
  cargo test --workspace -q
}

tier_gates() {
  echo "== cargo bench --workspace --no-run =="
  cargo bench --workspace --no-run

  echo "== pool tests at DCMESH_THREADS=2 =="
  DCMESH_THREADS=2 cargo test -q -p dcmesh-pool -p dcmesh-device -p dcmesh-lfd

  echo "== static-analysis audit gate (lint + panic-freedom + SAFETY contracts) =="
  # `lint` is kept as an alias of `audit` for older scripts/muscle memory.
  cargo run -q -p dcmesh-analyze --bin audit -- --report

  echo "== SIMD forced-scalar equivalence (math + lfd suites) =="
  # The scalar backend must reproduce today's results bit-compatibly; the
  # bitwise-equality tests in these crates enforce it under the override.
  DCMESH_SIMD=scalar cargo test -q -p dcmesh-math -p dcmesh-lfd -p dcmesh-tune

  echo "== tuning-cache smoke (cold search, warm load, identical tiles) =="
  TUNE_DIR=$(mktemp -d /tmp/dcmesh_tune_XXXXXX)
  SCRATCH+=("$TUNE_DIR")
  COLD_OUT=$(DCMESH_TUNE_DIR="$TUNE_DIR" cargo run -q --release -p dcmesh-tune --bin tune_probe 2>/dev/null)
  WARM_LOG=$(mktemp /tmp/dcmesh_tune_warm_XXXXXX.log)
  SCRATCH+=("$WARM_LOG")
  WARM_OUT=$(DCMESH_TUNE_DIR="$TUNE_DIR" cargo run -q --release -p dcmesh-tune --bin tune_probe 2>"$WARM_LOG")
  grep -q "cache=warm" "$WARM_LOG"
  [ "$COLD_OUT" = "$WARM_OUT" ] || {
    echo "tuning smoke: warm-start tiles differ from cold search" >&2
    diff <(echo "$COLD_OUT") <(echo "$WARM_OUT") >&2 || true
    exit 1
  }

  echo "== concurrency suites under the shadow-access race detector =="
  # --test-threads=1: shadow intervals are raw addresses, so unrelated
  # tests must not interleave reallocations (see crates/analyze/src/race.rs).
  DCMESH_RACECHECK=1 cargo test -q -p dcmesh-pool -p dcmesh-device -p dcmesh-lfd -- --test-threads=1

  echo "== fault-injection matrix (comm failures, NaN recovery, restart equivalence) =="
  # Fault plans and the metrics registry are process-global, so these
  # suites serialize injection internally (fault::test_lock).
  cargo test -q -p dcmesh-comm --test faults
  cargo test -q -p dcmesh-ckpt
  cargo test -q -p dcmesh-core resilience
  cargo test -q --test restart_equivalence

  echo "== serve edge cases (cancellation, backpressure, eviction, replay) =="
  cargo test -q -p dcmesh-serve

  echo "== checkpoint/restore smoke (fig7 driver round-trip) =="
  CKPT_SMOKE=$(mktemp -u /tmp/dcmesh_smoke_XXXXXX.ckpt)
  SCRATCH+=("$CKPT_SMOKE")
  SMOKE_OUT=$(mktemp /tmp/dcmesh_smoke_out_XXXXXX.log)
  SCRATCH+=("$SMOKE_OUT")
  cargo run -q --release -p dcmesh-bench --bin fig7_flux_closure -- \
    --checkpoint "$CKPT_SMOKE" --checkpoint-every 6 > /dev/null
  # Capture to a file rather than piping into grep -q: an early-exiting
  # grep would SIGPIPE the driver mid-run.
  cargo run -q --release -p dcmesh-bench --bin fig7_flux_closure -- \
    --restore "$CKPT_SMOKE" > "$SMOKE_OUT"
  grep -q "restored checkpoint" "$SMOKE_OUT"

  echo "== comm request-lifecycle model check (sched explorer) =="
  cargo test -q --test comm_request_modelcheck

  echo "== overlap-ablation gate (weak scaling with vs without --no-overlap) =="
  # The scaling clocks are fully modeled (deterministic), so the gate runs
  # the compare bin at --modeled-ratio 1.0: halo/compute overlap must never
  # produce a slower modeled step than the blocking ablation, at any P.
  OVL_DIR=$(mktemp -d /tmp/dcmesh_overlap_XXXXXX)
  SCRATCH+=("$OVL_DIR")
  cargo run -q --release -p dcmesh-bench --bin fig2_weak_scaling -- \
    --ranks 4,8,16,32 --no-overlap --record "$OVL_DIR/baseline.runrecord.json" > /dev/null
  cargo run -q --release -p dcmesh-bench --bin fig2_weak_scaling -- \
    --ranks 4,8,16,32 --record "$OVL_DIR/overlap.runrecord.json" > /dev/null
  cargo run -q --release -p dcmesh-bench --bin compare -- \
    --modeled-ratio 1.0 "$OVL_DIR/baseline.runrecord.json" "$OVL_DIR/overlap.runrecord.json"

  echo "== serve_load p95 tail-latency gate (back-to-back runs, compare --p95-ratio) =="
  # Two identical load runs on the same machine: the candidate's queue/run
  # p95 must stay within 3x of the baseline's (0.02 s noise floor absorbs
  # scheduler jitter on tiny runs). Catches tail-latency pathologies in the
  # serve scheduler (lost wakeups, head-of-line blocking) without a
  # machine-dependent committed baseline.
  SERVE_DIR=$(mktemp -d /tmp/dcmesh_serve_XXXXXX)
  SCRATCH+=("$SERVE_DIR")
  cargo run -q --release -p dcmesh-bench --bin serve_load -- \
    --jobs 12 --concurrency 2 --record "$SERVE_DIR/baseline.runrecord.json" > /dev/null
  cargo run -q --release -p dcmesh-bench --bin serve_load -- \
    --jobs 12 --concurrency 2 --record "$SERVE_DIR/candidate.runrecord.json" > /dev/null
  cargo run -q --release -p dcmesh-bench --bin compare -- \
    --p95-ratio 3.0 --latency-ratio 3.0 --noise-floor-s 0.02 \
    "$SERVE_DIR/baseline.runrecord.json" "$SERVE_DIR/candidate.runrecord.json"

  echo "== telemetry smoke (fig5 RunRecord + self-compare gate) =="
  REC_DIR=$(mktemp -d /tmp/dcmesh_telemetry_XXXXXX)
  SCRATCH+=("$REC_DIR")
  cargo run -q --release -p dcmesh-bench --bin fig5_kernels -- \
    --quick --deterministic --telemetry --record "$REC_DIR/fig5.runrecord.json" > /dev/null
  test -s "$REC_DIR/fig5.runrecord.json"
  test -s "$REC_DIR/fig5.runrecord.steps.jsonl"
  # A record diffed against itself must never regress (exit 0).
  cargo run -q --release -p dcmesh-bench --bin compare -- \
    "$REC_DIR/fig5.runrecord.json" "$REC_DIR/fig5.runrecord.json"
}

TIER="${1:-all}"
case "$TIER" in
  quick) tier_quick ;;
  gates) tier_gates ;;
  all)
    tier_quick
    tier_gates
    ;;
  *)
    echo "usage: $0 [quick|gates|all]" >&2
    exit 2
    ;;
esac

echo "All checks passed ($TIER)."
