//! dcmesh umbrella crate: re-exports the whole workspace public API.
pub use dcmesh_ckpt as ckpt;
pub use dcmesh_comm as comm;
pub use dcmesh_core as core;
pub use dcmesh_device as device;
pub use dcmesh_grid as grid;
pub use dcmesh_lfd as lfd;
pub use dcmesh_math as math;
pub use dcmesh_obs as obs;
pub use dcmesh_qxmd as qxmd;
pub use dcmesh_serve as serve;
pub use dcmesh_tddft as tddft;
pub use dcmesh_telemetry as telemetry;
