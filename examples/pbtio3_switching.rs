//! Light-induced topological switching in PbTiO3 (the paper's application,
//! §V and Fig. 7).
//!
//! Prepares a flux-closure polar vortex in a PbTiO3 slab, runs the coupled
//! DC-MESH simulation (Maxwell field -> per-domain TDDFT -> occupation
//! handshake -> surface hopping -> MD -> Landau-Khalatnikov polarization),
//! and prints the polarization texture before/after a femtosecond pulse.
//!
//! Run: `cargo run --release --example pbtio3_switching`

use dcmesh::core::{DcMeshConfig, DcMeshSim};
use dcmesh::lfd::LaserPulse;
use dcmesh::qxmd::pbtio3::{PbTiO3Cell, Supercell};
use dcmesh::qxmd::polarization::{LkDynamics, PolarizationField};

fn main() {
    // --- The initial topology. ---
    let mut sc = Supercell::build(&PbTiO3Cell::cubic(), [10, 1, 10]);
    sc.imprint_flux_closure(0.3, 1.0);
    let field = PolarizationField::from_supercell(&sc, 0);
    println!("initial flux-closure texture (10x10 cells):");
    println!("{}", field.render_ascii());
    println!(
        "toroidal moment G_y = {:+.4}, mean |P| = {:.4}\n",
        field.toroidal_moment(),
        field.mean_magnitude()
    );

    // --- Coupled DC-MESH dynamics under a femtosecond pulse. ---
    let cfg = DcMeshConfig {
        supercell_dims: [8, 1, 8],
        domains_x: 2,
        domain_mesh_points: 8,
        norb: 4,
        lumo: 2,
        dt_qd: 0.02,
        n_qd: 40,
        dt_md: dcmesh::math::phys::femtoseconds_to_au(0.25),
        build: dcmesh::lfd::BuildKind::GpuCublasPinned,
        laser: Some(LaserPulse {
            e0: 1.2,
            omega: 0.8,
            duration: 10.0,
        }),
        flux_closure_amplitude: Some(0.3),
        scf_initial_state: false,
        ehrenfest_feedback: true,
        seed: 7,
    };
    let mut sim = DcMeshSim::new(cfg);
    println!("coupled run: 16 MD steps x 40 QD steps under the pulse");
    println!("step  t(fs)   excited    G_y       T(K)");
    for s in 0..16 {
        let r = sim.md_step();
        if s % 2 == 1 {
            println!(
                "{:>4}  {:>5.2}  {:>8.4}  {:>8.5}  {:>6.1}",
                s + 1,
                r.time_fs,
                r.excited_population,
                r.toroidal_moment,
                r.temperature_k
            );
        }
    }

    // --- The switching mechanism at device scale (LK + excitation). ---
    println!("\nswitching study: sub-coercive bias PULSE, dark vs photo-excited");
    let p0 = 0.1;
    let ec = 2.0 * 0.5 * p0 / (3.0 * 3.0f64.sqrt());
    for (label, n_exc) in [("dark", 0.0), ("photo-excited", 0.8)] {
        let mut s = Supercell::build(&PbTiO3Cell::cubic(), [8, 1, 8]);
        s.imprint_flux_closure(0.3, 1.0);
        let f = PolarizationField::from_supercell(&s, 0);
        let mut lk = LkDynamics::new(f, 0.5, p0);
        lk.run(0.01, 4000, |_| ([0.0, 0.0], 0.0)); // relax to equilibrium vortex
        let g0 = lk.field.toroidal_moment();
        lk.run(0.01, 500, |_| ([0.0, -0.5 * ec], n_exc)); // bias pulse
        lk.run(0.01, 4000, |_| ([0.0, 0.0], 0.0)); // recovery
        let g1 = lk.field.toroidal_moment();
        println!(
            "  {label:<14}: G_y {g0:+.4} -> {g1:+.4}  ({})",
            if g1.abs() < 0.2 * g0.abs() {
                "switched — excitation unlocked the topology"
            } else {
                "vortex recovered: topologically protected"
            }
        );
    }
    println!("\nonly the photo-excited run ends mono-domain along the bias —");
    println!("the ultrafast, ultralow-power switching pathway the paper targets.");
}
