//! Divide-and-conquer global-local SCF — the "DC" of DC-MESH, standalone.
//!
//! Splits a two-atom cell into two DC domains with an LDC buffer shell,
//! runs the global-local SCF (global multigrid Hartree + per-domain dense
//! eigensolves + one global Fermi level), and compares against the
//! single-domain reference.
//!
//! Run: `cargo run --release --example dc_scf`

use dcmesh::grid::Mesh3;
use dcmesh::tddft::dcscf::{run_dc_scf, DcScfConfig};
use dcmesh::tddft::{AtomSet, Species};

fn main() {
    let global = Mesh3::new(16, 8, 8, 0.55, 0.55, 0.55);
    let mut atoms = AtomSet::new(vec![Species::hydrogen()]);
    atoms.push(0, [4.0 * 0.55, 4.0 * 0.55, 4.0 * 0.55]);
    atoms.push(0, [12.0 * 0.55, 4.0 * 0.55, 4.0 * 0.55]);
    println!(
        "two H atoms in a {}x{}x{} cell, decomposed into 2 DC domains along x\n",
        global.nx, global.ny, global.nz
    );

    for buffer in [0usize, 1, 2, 3] {
        let cfg = DcScfConfig {
            parts: [2, 1, 1],
            buffer,
            norb_per_domain: 2,
            scf_iters: 8,
            ..Default::default()
        };
        let res = run_dc_scf(&global, &atoms, &cfg);
        let (homo, lumo) = res.global_homo_lumo();
        println!(
            "buffer {buffer}: electrons {:.4}, Fermi {:.4} Ha, HOMO {:.4}, LUMO {:.4}, final residual {:.2e}",
            res.electron_count(),
            res.fermi_level,
            homo,
            lumo,
            res.residual_history.last().unwrap()
        );
    }

    println!("\nsingle-domain reference:");
    let reference = run_dc_scf(
        &global,
        &atoms,
        &DcScfConfig {
            parts: [1, 1, 1],
            buffer: 0,
            norb_per_domain: 4,
            scf_iters: 8,
            ..Default::default()
        },
    );
    let (h, l) = reference.global_homo_lumo();
    println!(
        "            electrons {:.4}, Fermi {:.4} Ha, HOMO {:.4}, LUMO {:.4}",
        reference.electron_count(),
        reference.fermi_level,
        h,
        l
    );
    println!("\nthe LDC buffer embeds each domain in the globally informed potential;");
    println!("thicker buffers converge the DC spectra toward the reference at O((s+2b)^3) cost.");
}
