//! Quickstart: propagate Kohn–Sham electrons in a laser field with the LFD
//! engine — the minimal "hello, light-matter interaction" of dcmesh.
//!
//! Builds a small harmonic-well domain, solves for its lowest eigenstates,
//! then drives them with a resonant femtosecond pulse and watches the
//! excited-state population grow while the total electron count stays
//! conserved (the shadow-dynamics occupation handshake).
//!
//! Run: `cargo run --release --example quickstart`

use dcmesh::grid::Mesh3;
use dcmesh::lfd::{BuildKind, LaserPulse, LfdConfig, LfdEngine};
use dcmesh::tddft::{eigensolver, Hamiltonian};

fn main() {
    // 1. A small domain: 10^3 mesh, harmonic confining potential.
    let mesh = Mesh3::cubic(10, 0.5);
    let center = mesh.center();
    let mut v_loc = vec![0.0; mesh.len()];
    for (i, j, k) in mesh.iter_points() {
        let p = mesh.position(i, j, k);
        let r2 =
            (p[0] - center[0]).powi(2) + (p[1] - center[1]).powi(2) + (p[2] - center[2]).powi(2);
        v_loc[mesh.idx(i, j, k)] = 0.5 * r2;
    }

    // 2. Ground-state orbitals (the QXMD side would normally supply these).
    let h = Hamiltonian::with_potential(mesh.clone(), v_loc.clone());
    let eig = eigensolver::lowest_states(&h, 4, 250, 42);
    println!("adiabatic eigenvalues (Hartree): {:?}", eig.values);
    let gap = eig.values[1] - eig.values[0];
    println!(
        "HOMO-LUMO gap: {:.4} Ha = {:.2} eV",
        gap,
        dcmesh::math::phys::hartree_to_ev(gap)
    );

    // 3. An LFD engine on the device-resident build, driven resonantly.
    let n_qd = 200;
    let dt = 0.02;
    let cfg = LfdConfig {
        mesh,
        norb: 4,
        lumo: 1, // 2 electrons in the lowest orbital
        dt,
        n_qd,
        block_size: 4,
        build: BuildKind::GpuCublasPinned,
        delta_sci: 0.0,
        laser: Some(LaserPulse {
            e0: 0.35,
            omega: gap,
            duration: n_qd as f64 * dt * 4.0,
        }),
        seed: 1,
    };
    let mut engine = LfdEngine::<f64>::with_initial_state(cfg, v_loc, eig.orbitals);

    // 4. Four MD steps = 4 x 200 QD steps of real-time TDDFT.
    println!("\nMD step |  t (as) | excited population | total electrons");
    for step in 1..=4 {
        let timings = engine.run_md_step();
        println!(
            "{:>7} | {:>7.1} | {:>18.4} | {:>15.6}",
            step,
            engine.time * dcmesh::math::phys::ATOMIC_TIME_AS,
            engine.excited_population(),
            engine.total_occupation(),
        );
        if step == 1 {
            println!(
                "          (modeled device time per MD step: {:.3} ms electron + {:.3} ms nonlocal)",
                timings.electron * 1e3,
                timings.nonlocal * 1e3
            );
        }
    }
    let shadow = engine.shadow().expect("device build has a shadow state");
    println!(
        "\nshadow dynamics: {} handshakes moved {} bytes each, while {:.2} MB of wavefunctions stayed device-resident",
        shadow.handshakes(),
        shadow.handshake_bytes(),
        shadow.device().stats().resident_bytes as f64 / (1 << 20) as f64,
    );
}
