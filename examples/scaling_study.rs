//! Weak- and strong-scaling study on the simulated Polaris fabric
//! (the Figs. 2-3 experiment as a library-user workflow).
//!
//! Run: `cargo run --release --example scaling_study`

use dcmesh::core::scaling::{strong_scaling, weak_scaling, AnalyticEfficiency, ScalingConfig};

fn main() {
    let cfg = ScalingConfig::default();
    println!("DC-MESH scaling study (simulated ranks, modeled Slingshot network)\n");

    println!("weak scaling — {} atoms/rank:", cfg.atoms_per_rank);
    println!(
        "{:>6} {:>9} {:>14} {:>11}",
        "ranks", "atoms", "t/step (s)", "efficiency"
    );
    for p in weak_scaling(&cfg, &[4, 16, 64, 256, 1024]) {
        println!(
            "{:>6} {:>9} {:>14.3} {:>11.4}",
            p.ranks, p.atoms, p.sim_seconds, p.efficiency
        );
    }

    for atoms in [5120usize, 10240] {
        let ranks: Vec<usize> = if atoms == 5120 {
            vec![64, 128, 256]
        } else {
            vec![128, 256, 512]
        };
        println!("\nstrong scaling — {atoms} atoms:");
        println!(
            "{:>6} {:>12} {:>14} {:>11}",
            "ranks", "atoms/rank", "t/step (s)", "efficiency"
        );
        for p in strong_scaling(&cfg, atoms, &ranks) {
            println!(
                "{:>6} {:>12} {:>14.3} {:>11.4}",
                p.ranks,
                atoms / p.ranks,
                p.sim_seconds,
                p.efficiency
            );
        }
    }

    println!("\nanalytic efficiency models (paper §IV-A):");
    let weak_model = AnalyticEfficiency {
        alpha: 0.02,
        beta: 0.12,
    };
    let strong_model = AnalyticEfficiency {
        alpha: 0.6,
        beta: 1.2,
    };
    println!(
        "  weak:   eta(n=40, P=1024) = {:.4}",
        weak_model.weak(40.0, 1024)
    );
    println!(
        "  strong: eta(N=5120, P=256) / eta(N=5120, P=64) = {:.4}",
        strong_model.strong(5120.0, 256) / strong_model.strong(5120.0, 64)
    );
}
