//! Optical absorption spectrum via the real-time delta-kick protocol —
//! the canonical RT-TDDFT validation (what Octopus/SALMON, the paper's
//! reference codes, call "linear response from real time").
//!
//! Kicks the ground state of a harmonic well, propagates field-free with
//! the split-operator LFD kernels, Fourier-transforms the dipole, and
//! prints the spectrum: the peak must sit at the oscillator frequency
//! (Kohn's theorem).
//!
//! Run: `cargo run --release --example absorption_spectrum`

use dcmesh::grid::Mesh3;
use dcmesh::lfd::spectrum::delta_kick_spectrum;
use dcmesh::tddft::{eigensolver, Hamiltonian};

fn main() {
    let omega0 = 0.8; // oscillator frequency (Hartree)
    let mesh = Mesh3::cubic(12, 0.45);
    let c = mesh.center();
    let mut v = vec![0.0; mesh.len()];
    for (i, j, k) in mesh.iter_points() {
        let p = mesh.position(i, j, k);
        let r2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
        v[mesh.idx(i, j, k)] = 0.5 * omega0 * omega0 * r2;
    }
    println!("solving the ground state of a harmonic well (omega0 = {omega0} Ha)...");
    let h = Hamiltonian::with_potential(mesh.clone(), v.clone());
    let eig = eigensolver::lowest_states(&h, 1, 300, 5);
    println!(
        "E0 = {:.4} Ha (continuum: {:.4})\n",
        eig.values[0],
        1.5 * omega0
    );

    println!("delta-kick + 1500 QD steps of field-free propagation...");
    let spec = delta_kick_spectrum(&mesh, &v, eig.orbitals, &[2.0], 0.04, 0.05, 1500, 0);

    // Poor-man's terminal plot of S(omega).
    let smax = spec.strength.iter().cloned().fold(0.0f64, f64::max);
    println!("\nabsorption spectrum S(omega):");
    for chunk in spec.omega.chunks(10).zip(spec.strength.chunks(10)) {
        let (ws, ss) = chunk;
        let w = ws[ws.len() / 2];
        let s: f64 = ss.iter().sum::<f64>() / ss.len() as f64;
        if w > 2.0 {
            break;
        }
        let bar = "#".repeat((s / smax * 60.0).round() as usize);
        println!("{w:5.2} Ha | {bar}");
    }
    let peak = spec.dominant_peak();
    println!(
        "\ndominant peak at {:.3} Ha = {:.2} eV  (oscillator frequency: {omega0} Ha — Kohn's theorem)",
        peak,
        dcmesh::math::phys::hartree_to_ev(peak)
    );
}
