//! Fewest-switches surface hopping demo: an ensemble of trajectories
//! relaxing from an excited state through a nonadiabatic coupling region —
//! the `U_SH` factor of paper Eq. (3) in isolation.
//!
//! Run: `cargo run --release --example surface_hopping`

use dcmesh::qxmd::fssh::{FsshConfig, FsshState, HopEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Two adiabatic surfaces separated by a small gap, coupled while the
    // (virtual) nuclear coordinate crosses the interaction region.
    let gap = 0.02;
    let energies = vec![gap, 0.0]; // start on the UPPER surface (index 0)
    let ntraj = 200;
    let steps = 400;
    let dt = 0.5;

    println!("FSSH ensemble: {ntraj} trajectories, {steps} steps x {dt} au");
    println!("surfaces: upper = {gap} Ha, lower = 0 Ha, Gaussian coupling burst\n");

    let mut hop_times = Vec::new();
    let mut final_lower = 0usize;
    let mut frustrated_total = 0usize;
    for traj in 0..ntraj {
        let mut state = FsshState::new(2, 0, FsshConfig::default());
        let mut kinetic = 0.05; // modest nuclear kinetic energy
        let mut rng = StdRng::seed_from_u64(1000 + traj);
        for s in 0..steps {
            // Coupling pulse centered mid-trajectory (crossing region).
            let t = s as f64 * dt;
            let t0 = steps as f64 * dt / 2.0;
            let d = 0.05 * (-(t - t0).powi(2) / 500.0).exp();
            let nac = vec![vec![0.0, d], vec![-d, 0.0]];
            match state.step(&energies, &nac, dt, &mut kinetic, &mut rng) {
                HopEvent::Hopped(1) => hop_times.push(t),
                HopEvent::Frustrated(_) => frustrated_total += 1,
                _ => {}
            }
        }
        if state.surface == 1 {
            final_lower += 1;
        }
    }

    let frac = final_lower as f64 / ntraj as f64;
    println!(
        "trajectories relaxed to the lower surface: {final_lower}/{ntraj} ({:.0}%)",
        frac * 100.0
    );
    println!("frustrated (energy-forbidden) hops rejected: {frustrated_total}");
    if !hop_times.is_empty() {
        let mean: f64 = hop_times.iter().sum::<f64>() / hop_times.len() as f64;
        let t0 = steps as f64 * dt / 2.0;
        println!("mean hop time: {mean:.0} au (coupling burst centered at {t0:.0} au)");
    }
    println!("\ndownward hops deposit the electronic energy ({gap} Ha) into the nuclei —");
    println!("in DC-MESH this is the channel converting laser excitation into lattice motion.");
}
