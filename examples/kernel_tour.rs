//! A guided tour of the paper's kernel optimizations (Algorithms 1-5 and
//! the BLASification) with live timings — the Table I/II story as a demo.
//!
//! Run: `cargo run --release --example kernel_tour`

use std::time::Instant;

use dcmesh::device::{Device, LaunchPolicy};
use dcmesh::grid::{Mesh3, WfAos};
use dcmesh::lfd::kinetic::{Axis, KineticPropagator, StepFraction};
use dcmesh::lfd::nonlocal::{GemmPath, NonlocalCorrection};

fn time(label: &str, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let dt = t0.elapsed().as_secs_f64();
    println!("  {label:<46} {:>9.3} ms", dt * 1e3);
    dt
}

fn main() {
    let mesh = Mesh3::new(28, 28, 28, 0.42, 0.42, 0.42);
    let norb = 24;
    let reps = 20;
    println!(
        "kernel tour on a {}x{}x{} mesh, {norb} orbitals, {reps} repetitions each\n",
        mesh.nx, mesh.ny, mesh.nz
    );

    let mut init = WfAos::<f64>::zeros(mesh.clone(), norb);
    init.randomize(5);
    let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);

    println!("1) kin_prop(): the split-operator kinetic stencil (paper Algorithms 1-5)");
    let t1 = {
        let mut psi = init.clone();
        time("Algorithm 1: AoS + whole-mesh scratch buffer", || {
            for _ in 0..reps {
                prop.apply_axis_alg1(&mut psi, Axis::X, StepFraction::Full);
            }
        })
    };
    let t3 = {
        let mut psi = init.to_soa();
        time("Algorithm 3: loop interchange + SoA, in place", || {
            for _ in 0..reps {
                prop.apply_axis_alg3(&mut psi, Axis::X, StepFraction::Full);
            }
        })
    };
    let t4 = {
        let mut psi = init.to_soa();
        time("Algorithm 4: + orbital cache blocking", || {
            for _ in 0..reps {
                prop.apply_axis_alg4(&mut psi, Axis::X, StepFraction::Full, 8);
            }
        })
    };
    let t5 = {
        let mut psi = init.to_soa();
        time("Algorithm 5: + teams-distribute parallelism", || {
            for _ in 0..reps {
                prop.apply_axis_alg5(&mut psi, Axis::X, StepFraction::Full, 8, None);
            }
        })
    };
    println!(
        "  speedups vs Algorithm 1: alg3 {:.2}x, alg4 {:.2}x, alg5 {:.2}x\n",
        t1 / t3,
        t1 / t4,
        t1 / t5
    );

    println!("2) the same Algorithm-5 kernel through the device offload runtime");
    let dev = Device::a100();
    let mut psi = init.to_soa();
    for policy in [LaunchPolicy::Sync, LaunchPolicy::Async] {
        dev.reset_clock();
        for _ in 0..reps {
            prop.apply_axis_alg5(
                &mut psi,
                Axis::X,
                StepFraction::Full,
                8,
                Some((&dev, policy)),
            );
        }
        println!(
            "  modeled A100 time, {:?} launches{:<24} {:>9.3} ms",
            policy,
            ":",
            dev.synchronize() * 1e3
        );
    }

    println!("\n3) nonlocal correction: loops vs BLASified GEMM (paper SIII-D)");
    let nl = NonlocalCorrection::new(init.to_matrix(), norb * 3 / 4, 0.08, 0.04, mesh.dv());
    let tl = {
        let mut state = init.to_matrix();
        time("point-by-point loops (pre-BLAS formulation)", || {
            for _ in 0..reps {
                nl.nlp_prop(&mut state, GemmPath::Loops);
            }
        })
    };
    let tb = {
        let mut state = init.to_soa();
        time("BLAS level-3 (zero-copy SoA GEMM)", || {
            for _ in 0..reps {
                nl.nlp_prop_soa(&mut state);
            }
        })
    };
    println!("  BLASification speedup: {:.2}x", tl / tb);
}
