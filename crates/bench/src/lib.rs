//! # dcmesh-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (§IV). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — `kin_prop()` optimization ladder (Alg. 1/3/4/5, `nowait` ablation) |
//! | `table2` | Table II — build-variant ladder x SP/DP (electron propagation / nonlocal / total) |
//! | `fig2_weak_scaling` | Fig. 2 — weak-scaling parallel efficiency to 1,024 ranks |
//! | `fig3_strong_scaling` | Fig. 3 — strong scaling, 5,120- and 10,240-atom PbTiO3 |
//! | `fig4_throughput` | Fig. 4 — single-node CPU vs CPU+GPU throughput |
//! | `fig5_kernels` | Fig. 5 — DP kernel runtimes across builds |
//! | `fig6_speedup` | Fig. 6 — cumulative speedup ladder (1x -> 644x) |
//! | `fig7_flux_closure` | Fig. 7 — flux-closure polar topology + laser switching |
//!
//! CPU rows are **measured** wall-clock on this machine; GPU rows are
//! **modeled** by the A100 roofline runtime (clearly labeled). Default
//! workloads are scaled down so every binary finishes in seconds; pass
//! `--full` for the paper-size workload (70x70x72 mesh, 64 orbitals,
//! 1,000 QD steps) and `--scale X` for anything in between.

use dcmesh_core::metrics::Table;
use dcmesh_grid::Mesh3;
use dcmesh_obs::Event;
use dcmesh_telemetry::{FlightRecorder, RunRecord};
use std::path::PathBuf;

/// Workload scale and observability options parsed from the command line.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Fraction of the paper workload (1.0 = full).
    pub scale: f64,
    /// Write a Chrome-trace/Perfetto JSON of the run to this path.
    pub trace: Option<PathBuf>,
    /// Print the flat per-phase aggregate table at exit.
    pub report: bool,
    /// Use the deterministic counter clock for host timestamps, so the
    /// trace file is byte-identical across runs of a fixed-seed workload.
    pub deterministic: bool,
    /// Worker-thread count for the persistent pool (`--threads N`).
    /// Precedence: `--threads` > `DCMESH_THREADS` > `available_parallelism`.
    pub threads: Option<usize>,
    /// Write a checkpoint every N MD steps (`--checkpoint-every N`, 0 =
    /// off). Only meaningful to drivers that run a [`dcmesh_core::DcMeshSim`].
    pub checkpoint_every: u64,
    /// Checkpoint file path (`--checkpoint PATH`).
    pub checkpoint: Option<PathBuf>,
    /// Resume from this checkpoint file before stepping (`--restore PATH`).
    pub restore: Option<PathBuf>,
    /// Emit a flight-recorder RunRecord (+ step-series JSONL) at exit
    /// (`--telemetry`). Implies the collector is on.
    pub telemetry: bool,
    /// RunRecord output path (`--record PATH`); defaults to
    /// `bench_results/<bin>.runrecord.json`.
    pub record: Option<PathBuf>,
    /// Disable halo/compute overlap in the scaling benches
    /// (`--no-overlap`) — the paper's "disable nowait" ablation. Halo
    /// exchanges run blocking (send, then receive, then compute) instead
    /// of posted-early with the wait after the compute slice.
    pub no_overlap: bool,
    /// Override the scaling benches' rank sweep (`--ranks 4,8,16`).
    pub ranks: Option<Vec<usize>>,
    /// Jobs to offer in the `serve_load` driver (`--jobs N`).
    pub jobs: Option<usize>,
    /// Concurrency sweep for `serve_load` (`--concurrency 1,2,4`).
    pub concurrency: Option<Vec<usize>>,
    /// Per-job wall-clock deadline for `serve_load` (`--deadline-ms MS`).
    pub deadline_ms: Option<u64>,
    /// Mean open-loop interarrival gap for `serve_load`
    /// (`--arrival-ms MS`, 0 = burst).
    pub arrival_ms: Option<f64>,
    /// Binary name (from `argv[0]`), used in records and default paths.
    pub bin: String,
}

impl BenchArgs {
    /// Parse `--full`, `--scale X`, `--quick`, `--trace PATH`, `--report`,
    /// `--deterministic`, `--threads N`, `--checkpoint-every N`,
    /// `--checkpoint PATH`, `--restore PATH`, `--telemetry`,
    /// `--record PATH`, `--no-overlap`, `--ranks P1,P2,...`,
    /// `--jobs N`, `--concurrency C1,C2,...`, `--deadline-ms MS`,
    /// `--arrival-ms MS` from `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_with_default(0.25)
    }

    /// Parse with a benchmark-specific default scale.
    pub fn parse_with_default(default_scale: f64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let bin = args
            .first()
            .map(|a| {
                PathBuf::from(a)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| a.clone())
            })
            .unwrap_or_else(|| "bench".into());
        let mut parsed = Self {
            scale: default_scale,
            trace: None,
            report: false,
            deterministic: false,
            threads: None,
            checkpoint_every: 0,
            checkpoint: None,
            restore: None,
            telemetry: false,
            record: None,
            no_overlap: false,
            ranks: None,
            jobs: None,
            concurrency: None,
            deadline_ms: None,
            arrival_ms: None,
            bin,
        };
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => parsed.scale = 1.0,
                "--quick" => parsed.scale = 0.1,
                "--scale" => {
                    parsed.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a number");
                }
                "--trace" => {
                    parsed.trace = Some(PathBuf::from(it.next().expect("--trace requires a path")));
                }
                "--report" => parsed.report = true,
                "--deterministic" => parsed.deterministic = true,
                "--threads" => {
                    parsed.threads = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--threads requires a positive integer"),
                    );
                }
                "--checkpoint-every" => {
                    parsed.checkpoint_every = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--checkpoint-every requires a step count");
                }
                "--checkpoint" => {
                    parsed.checkpoint = Some(PathBuf::from(
                        it.next().expect("--checkpoint requires a path"),
                    ));
                }
                "--restore" => {
                    parsed.restore =
                        Some(PathBuf::from(it.next().expect("--restore requires a path")));
                }
                "--telemetry" => parsed.telemetry = true,
                "--record" => {
                    parsed.record =
                        Some(PathBuf::from(it.next().expect("--record requires a path")));
                    parsed.telemetry = true;
                }
                "--no-overlap" => parsed.no_overlap = true,
                "--ranks" => {
                    let list = it.next().expect("--ranks requires a comma-separated list");
                    let ranks: Vec<usize> = list
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("--ranks: bad rank count {v:?}"))
                        })
                        .collect();
                    assert!(!ranks.is_empty(), "--ranks requires at least one entry");
                    parsed.ranks = Some(ranks);
                }
                "--jobs" => {
                    parsed.jobs = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--jobs requires a positive integer"),
                    );
                }
                "--concurrency" => {
                    let list = it
                        .next()
                        .expect("--concurrency requires a comma-separated list");
                    let sweep: Vec<usize> = list
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse()
                                .unwrap_or_else(|_| panic!("--concurrency: bad worker count {v:?}"))
                        })
                        .collect();
                    assert!(
                        !sweep.is_empty(),
                        "--concurrency requires at least one entry"
                    );
                    parsed.concurrency = Some(sweep);
                }
                "--deadline-ms" => {
                    parsed.deadline_ms = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--deadline-ms requires a millisecond count"),
                    );
                }
                "--arrival-ms" => {
                    parsed.arrival_ms = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--arrival-ms requires a millisecond value"),
                    );
                }
                other => panic!(
                    "unknown argument: {other} (use --full | --quick | --scale X | \
                     --trace PATH | --report | --deterministic | --threads N | \
                     --checkpoint-every N | --checkpoint PATH | --restore PATH | \
                     --telemetry | --record PATH | --no-overlap | --ranks P1,P2,... | \
                     --jobs N | --concurrency C1,C2,... | --deadline-ms MS | \
                     --arrival-ms MS)"
                ),
            }
        }
        // Must happen before the first pool use anywhere in the binary:
        // the global pool is built once, on first dispatch.
        if let Some(n) = parsed.threads {
            dcmesh_pool::set_thread_override(n);
        }
        parsed
    }

    /// Whether any observability output was requested.
    pub fn obs_active(&self) -> bool {
        self.trace.is_some() || self.report || self.telemetry
    }

    /// Turn the global collector on if `--trace`/`--report`/`--telemetry`
    /// was given. Call once, before the instrumented work starts.
    pub fn init_obs(&self) {
        if !self.obs_active() {
            return;
        }
        if self.deterministic {
            dcmesh_obs::clock::set_mode(dcmesh_obs::clock::ClockMode::Counter { step_us: 1 });
        }
        dcmesh_obs::enable();
    }

    /// Where the RunRecord goes when `--telemetry` is on.
    pub fn record_path(&self) -> Option<PathBuf> {
        if !self.telemetry {
            return None;
        }
        Some(self.record.clone().unwrap_or_else(|| {
            PathBuf::from("bench_results").join(format!("{}.runrecord.json", self.bin))
        }))
    }

    /// Drain the collector, write the trace file and/or print the report
    /// as requested, and hand back the drained events for further checks.
    /// Returns `None` (and does nothing) when observability is off.
    ///
    /// Drivers that ran a simulation should call
    /// [`BenchArgs::finish_obs_with`] instead, so the RunRecord carries
    /// the config fingerprint and the flight recorder's invariant summary.
    pub fn finish_obs(&self) -> Option<Vec<Event>> {
        self.finish_obs_with(None, None)
    }

    /// [`BenchArgs::finish_obs`] plus RunRecord emission: with
    /// `--telemetry`, writes the schema-versioned RunRecord JSON to
    /// [`BenchArgs::record_path`] and the per-step JSONL series next to it
    /// (`<record>.steps.jsonl`) — from the flight recorder when one ran,
    /// otherwise synthesized from the `md_step` spans in the trace.
    pub fn finish_obs_with(
        &self,
        config_fingerprint: Option<u64>,
        recorder: Option<&FlightRecorder>,
    ) -> Option<Vec<Event>> {
        if !self.obs_active() {
            return None;
        }
        dcmesh_obs::disable();
        let events = dcmesh_obs::trace::drain();
        if let Some(path) = &self.trace {
            dcmesh_obs::chrome::write_chrome_trace(path, &events)
                .unwrap_or_else(|e| panic!("cannot write trace to {}: {e}", path.display()));
            println!(
                "wrote Chrome trace ({} events) to {}",
                events.len(),
                path.display()
            );
        }
        if self.report {
            println!("\nPer-phase aggregate report");
            println!("{}", obs_report(&events));
        }
        if let Some(record_path) = self.record_path() {
            let metrics = dcmesh_obs::metrics::snapshot();
            let record = RunRecord::collect(
                &self.bin,
                &self.describe(),
                config_fingerprint,
                &events,
                &metrics,
                recorder.and_then(FlightRecorder::summary),
            );
            record.write(&record_path).unwrap_or_else(|e| {
                panic!("cannot write record to {}: {e}", record_path.display())
            });
            println!("wrote RunRecord to {}", record_path.display());
            let steps_path = record_path.with_extension("steps.jsonl");
            let jsonl = match recorder {
                Some(rec) => rec.to_jsonl(),
                None => steps_jsonl_from_events(&events),
            };
            std::fs::write(&steps_path, jsonl)
                .unwrap_or_else(|e| panic!("cannot write steps to {}: {e}", steps_path.display()));
            println!("wrote step series to {}", steps_path.display());
        }
        Some(events)
    }

    /// The benchmark mesh at this scale (paper: 70 x 70 x 72).
    pub fn mesh(&self) -> Mesh3 {
        let d = |n: usize| ((n as f64 * self.scale).round() as usize).max(8);
        Mesh3::new(d(70), d(70), d(72), 0.42, 0.42, 0.42)
    }

    /// Orbital count at this scale (paper: 64).
    pub fn norb(&self) -> usize {
        ((64.0 * self.scale).round() as usize).max(4)
    }

    /// QD steps at this scale (paper: 1,000).
    pub fn n_qd(&self) -> usize {
        ((1000.0 * self.scale).round() as usize).max(10)
    }

    /// Human-readable workload description for report headers.
    pub fn describe(&self) -> String {
        let m = self.mesh();
        format!(
            "workload: {}x{}x{} mesh, {} orbitals, {} QD steps (scale {:.2} of the paper's 70x70x72 / 64 / 1000), {} pool threads",
            m.nx,
            m.ny,
            m.nz,
            self.norb(),
            self.n_qd(),
            self.scale,
            dcmesh_pool::configured_threads()
        )
    }
}

/// The pre-pool dispatch strategy, kept as the `pool_overhead` ablation
/// baseline: split `data` into `n_teams` OpenMP-style chunks and run the
/// team bodies on **freshly spawned** scoped threads — one spawn/join
/// cycle per call, which is exactly the per-dispatch cost the persistent
/// `dcmesh-pool` executor eliminates.
pub fn spawn_per_call_distribute_mut<T, F>(
    data: &mut [T],
    n_teams: usize,
    n_threads: usize,
    body: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if n_teams == 0 {
        return;
    }
    let n = data.len();
    let chunk = n.div_ceil(n_teams).max(1);
    let base = dcmesh_pool::SlicePtr::new(data);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let claim = |_w: usize| loop {
        let t = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if t >= n_teams {
            break;
        }
        let lo = (t * chunk).min(n);
        let hi = ((t + 1) * chunk).min(n);
        // SAFETY: each team index is claimed exactly once, and teams own
        // disjoint `[lo, hi)` ranges of the slice.
        body(t, unsafe { base.subslice_mut(lo, hi) });
    };
    let workers = n_threads.clamp(1, n_teams);
    if workers == 1 {
        claim(0);
        return;
    }
    std::thread::scope(|s| {
        for w in 1..workers {
            s.spawn(move || claim(w));
        }
        claim(0);
    });
}

/// Paper reference numbers, quoted verbatim for side-by-side reporting.
pub mod paper {
    /// Table I: (implementation, target, runtime seconds, speedup).
    pub const TABLE1: [(&str, &str, f64, f64); 5] = [
        ("Algorithm 1", "CPU", 8.655, 1.0),
        ("Algorithm 3", "CPU", 2.356, 3.67),
        ("Algorithm 4", "CPU", 0.939, 9.22),
        ("Algorithm 5", "GPU", 0.026, 338.0),
        ("Algorithm 5 (disable nowait)", "GPU", 0.029, 298.0),
    ];

    /// Table II total runtimes (seconds): (build, SP, DP).
    pub const TABLE2_TOTAL: [(&str, f64, f64); 5] = [
        ("CPU OpenMP Parallel", 1082.0, 1167.0),
        ("CPU OpenMP Parallel + BLAS", 38.83, 65.93),
        ("GPU OpenMP Offload + BLAS", 17.14, 29.23),
        ("GPU OpenMP Offload + cuBLAS", 1.33, 2.11),
        ("GPU cuBLAS + Pinned/Streams", 1.06, 1.48),
    ];

    /// Fig. 2: weak-scaling efficiency at P = 1024 ranks.
    pub const WEAK_EFF_1024: f64 = 0.9673;

    /// Fig. 3: strong-scaling efficiencies.
    pub const STRONG_EFF_5120_AT_256: f64 = 0.6634;
    /// 10,240 atoms on 512 ranks.
    pub const STRONG_EFF_10240_AT_512: f64 = 0.8083;

    /// Fig. 4: single-node CPU+GPU over CPU-only throughput.
    pub const FIG4_SPEEDUP: f64 = 19.0;

    /// Fig. 5 speedups (CPU+BLAS -> GPU+cuBLAS+pinned, DP):
    /// electron propagation, nonlocal propagation, energy calculation.
    pub const FIG5_SPEEDUPS: [f64; 3] = [45.0, 42.0, 46.0];

    /// Fig. 6 cumulative ladder: BLAS on CPU, GPU offload over that, pinned
    /// gain, and the total.
    pub const FIG6_CPU_BLAS: f64 = 25.2;
    /// GPU over BLASified CPU.
    pub const FIG6_GPU_OVER_BLAS: f64 = 18.6;
    /// Pinned-memory extra gain (fraction).
    pub const FIG6_PINNED_GAIN: f64 = 0.376;
    /// Total cumulative speedup.
    pub const FIG6_TOTAL: f64 = 644.0;
}

/// Render the flat per-phase aggregate of a drained timeline through the
/// shared [`Table`] formatter: one row per `(phase, track)` with counts,
/// total seconds, and attached bytes. Includes the metrics registry's
/// counters and gauges below the phase table when any are set.
pub fn obs_report(events: &[Event]) -> String {
    let mut table = Table::new(&["Phase", "Track", "Count", "Total (s)", "Bytes"]);
    for agg in dcmesh_obs::report::aggregate(events) {
        table.row(&[
            agg.name.clone(),
            agg.track.to_string(),
            agg.count.to_string(),
            fmt_s(agg.total_s),
            agg.bytes.to_string(),
        ]);
    }
    let mut out = table.render();
    let snap = dcmesh_obs::metrics::snapshot();
    if !snap.counters.is_empty() || !snap.gauges.is_empty() {
        let mut mt = Table::new(&["Metric", "Kind", "Value"]);
        for (name, v) in &snap.counters {
            mt.row(&[name.clone(), "counter".to_string(), v.to_string()]);
        }
        for (name, g) in &snap.gauges {
            mt.row(&[name.clone(), "gauge".to_string(), format!("{:.6e}", g.last)]);
        }
        for (name, h) in &snap.histograms {
            mt.row(&[
                name.clone(),
                "histogram".to_string(),
                format!(
                    "n={} sum={:.6e} p50={:.3e} p95={:.3e} p99={:.3e}",
                    h.count,
                    h.sum,
                    h.p50(),
                    h.p95(),
                    h.p99()
                ),
            ]);
        }
        out.push('\n');
        out.push_str(&mt.render());
    }
    out
}

/// Fallback step series for drivers without a [`FlightRecorder`]: one
/// JSONL line per completed `sim.md_step` span in the trace (or
/// `lfd.md_step` for engine-only benches), carrying the span duration as
/// `wall_s`.
pub fn steps_jsonl_from_events(events: &[Event]) -> String {
    let tree = dcmesh_obs::report::SpanTree::build(events);
    let spans = {
        let sim = tree.named("sim.md_step");
        if sim.is_empty() {
            tree.named("lfd.md_step")
        } else {
            sim
        }
    };
    let mut out = String::new();
    for (i, node) in spans.iter().enumerate() {
        let line = dcmesh_obs::json::Json::Obj(vec![
            ("step".into(), dcmesh_obs::json::Json::Num(i as f64)),
            (
                "wall_s".into(),
                dcmesh_obs::json::Json::Num(node.dur_us * 1e-6),
            ),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

/// Total host-track seconds recorded for one phase name.
pub fn host_phase_seconds(events: &[Event], name: &str) -> f64 {
    dcmesh_obs::report::aggregate(events)
        .iter()
        .filter(|a| a.name == name && a.track == "host")
        .map(|a| a.total_s)
        .sum()
}

/// Format a seconds value with sensible precision.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// Format a speedup.
pub fn fmt_x(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_at(scale: f64) -> BenchArgs {
        BenchArgs {
            scale,
            trace: None,
            report: false,
            deterministic: false,
            threads: None,
            checkpoint_every: 0,
            checkpoint: None,
            restore: None,
            telemetry: false,
            record: None,
            no_overlap: false,
            ranks: None,
            jobs: None,
            concurrency: None,
            deadline_ms: None,
            arrival_ms: None,
            bin: "test_bench".into(),
        }
    }

    #[test]
    fn default_scale_shrinks_workload() {
        let a = args_at(0.25);
        assert!(a.mesh().len() < 70 * 70 * 72 / 10);
        assert_eq!(a.norb(), 16);
        assert_eq!(a.n_qd(), 250);
        assert!(!a.obs_active());
    }

    #[test]
    fn full_scale_matches_paper() {
        let a = args_at(1.0);
        let m = a.mesh();
        assert_eq!((m.nx, m.ny, m.nz), (70, 70, 72));
        assert_eq!(a.norb(), 64);
        assert_eq!(a.n_qd(), 1000);
    }

    #[test]
    fn paper_constants_sane() {
        assert_eq!(paper::TABLE1.len(), 5);
        assert!(paper::TABLE1[3].3 > 300.0);
        const { assert!(paper::FIG6_TOTAL > 600.0) };
    }

    #[test]
    fn spawn_per_call_baseline_partitions_like_the_pool() {
        // The ablation baseline must compute the same answer as the
        // persistent executor so the comparison times identical work.
        let n = 1003;
        let teams = 64;
        let mut a: Vec<usize> = vec![0; n];
        let mut b: Vec<usize> = vec![0; n];
        spawn_per_call_distribute_mut(&mut a, teams, 4, |t, chunk| {
            for x in chunk {
                *x += t + 1;
            }
        });
        dcmesh_pool::global().for_each_chunk_mut(&mut b, teams, |t, chunk| {
            for x in chunk {
                *x += t + 1;
            }
        });
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x > 0));
    }

    #[test]
    fn record_path_defaults_under_bench_results() {
        let mut a = args_at(0.25);
        assert_eq!(a.record_path(), None, "no --telemetry, no record");
        a.telemetry = true;
        assert_eq!(
            a.record_path(),
            Some(PathBuf::from("bench_results/test_bench.runrecord.json"))
        );
        a.record = Some(PathBuf::from("/tmp/x.json"));
        assert_eq!(a.record_path(), Some(PathBuf::from("/tmp/x.json")));
        assert!(a.obs_active(), "--telemetry turns the collector on");
    }

    #[test]
    fn step_series_falls_back_to_md_step_spans() {
        use dcmesh_obs::trace::{EventKind, Track};
        let mk = |name: &'static str, id, ts, kind| {
            dcmesh_obs::trace::Event::complete(name, Track::Host, ts, 0.0)
                .with_ids(id, 0)
                .with_kind(kind)
        };
        let events = vec![
            mk("lfd.md_step", 1, 0.0, EventKind::Begin),
            mk("lfd.md_step", 1, 1500.0, EventKind::End),
            mk("lfd.md_step", 2, 2000.0, EventKind::Begin),
            mk("lfd.md_step", 2, 2500.0, EventKind::End),
        ];
        let jsonl = steps_jsonl_from_events(&events);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = dcmesh_obs::json::Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("wall_s").and_then(|v| v.as_num()), Some(0.0015));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(8.654), "8.65");
        assert_eq!(fmt_s(0.026), "0.0260");
        assert_eq!(fmt_x(338.0), "338x");
        assert_eq!(fmt_x(3.67), "3.67x");
    }
}
