//! # dcmesh-bench
//!
//! The benchmark harness regenerating every table and figure of the paper's
//! evaluation (§IV). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — `kin_prop()` optimization ladder (Alg. 1/3/4/5, `nowait` ablation) |
//! | `table2` | Table II — build-variant ladder x SP/DP (electron propagation / nonlocal / total) |
//! | `fig2_weak_scaling` | Fig. 2 — weak-scaling parallel efficiency to 1,024 ranks |
//! | `fig3_strong_scaling` | Fig. 3 — strong scaling, 5,120- and 10,240-atom PbTiO3 |
//! | `fig4_throughput` | Fig. 4 — single-node CPU vs CPU+GPU throughput |
//! | `fig5_kernels` | Fig. 5 — DP kernel runtimes across builds |
//! | `fig6_speedup` | Fig. 6 — cumulative speedup ladder (1x -> 644x) |
//! | `fig7_flux_closure` | Fig. 7 — flux-closure polar topology + laser switching |
//!
//! CPU rows are **measured** wall-clock on this machine; GPU rows are
//! **modeled** by the A100 roofline runtime (clearly labeled). Default
//! workloads are scaled down so every binary finishes in seconds; pass
//! `--full` for the paper-size workload (70x70x72 mesh, 64 orbitals,
//! 1,000 QD steps) and `--scale X` for anything in between.

use dcmesh_grid::Mesh3;

/// Workload scale parsed from the command line.
#[derive(Copy, Clone, Debug)]
pub struct BenchArgs {
    /// Fraction of the paper workload (1.0 = full).
    pub scale: f64,
}

impl BenchArgs {
    /// Parse `--full`, `--scale X`, `--quick` from `std::env::args`.
    pub fn parse() -> Self {
        Self::parse_with_default(0.25)
    }

    /// Parse with a benchmark-specific default scale.
    pub fn parse_with_default(default_scale: f64) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = default_scale;
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => scale = 1.0,
                "--quick" => scale = 0.1,
                "--scale" => {
                    scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale requires a number");
                }
                other => panic!("unknown argument: {other} (use --full | --quick | --scale X)"),
            }
        }
        Self { scale }
    }

    /// The benchmark mesh at this scale (paper: 70 x 70 x 72).
    pub fn mesh(&self) -> Mesh3 {
        let d = |n: usize| ((n as f64 * self.scale).round() as usize).max(8);
        Mesh3::new(d(70), d(70), d(72), 0.42, 0.42, 0.42)
    }

    /// Orbital count at this scale (paper: 64).
    pub fn norb(&self) -> usize {
        ((64.0 * self.scale).round() as usize).max(4)
    }

    /// QD steps at this scale (paper: 1,000).
    pub fn n_qd(&self) -> usize {
        ((1000.0 * self.scale).round() as usize).max(10)
    }

    /// Human-readable workload description for report headers.
    pub fn describe(&self) -> String {
        let m = self.mesh();
        format!(
            "workload: {}x{}x{} mesh, {} orbitals, {} QD steps (scale {:.2} of the paper's 70x70x72 / 64 / 1000)",
            m.nx,
            m.ny,
            m.nz,
            self.norb(),
            self.n_qd(),
            self.scale
        )
    }
}

/// Paper reference numbers, quoted verbatim for side-by-side reporting.
pub mod paper {
    /// Table I: (implementation, target, runtime seconds, speedup).
    pub const TABLE1: [(&str, &str, f64, f64); 5] = [
        ("Algorithm 1", "CPU", 8.655, 1.0),
        ("Algorithm 3", "CPU", 2.356, 3.67),
        ("Algorithm 4", "CPU", 0.939, 9.22),
        ("Algorithm 5", "GPU", 0.026, 338.0),
        ("Algorithm 5 (disable nowait)", "GPU", 0.029, 298.0),
    ];

    /// Table II total runtimes (seconds): (build, SP, DP).
    pub const TABLE2_TOTAL: [(&str, f64, f64); 5] = [
        ("CPU OpenMP Parallel", 1082.0, 1167.0),
        ("CPU OpenMP Parallel + BLAS", 38.83, 65.93),
        ("GPU OpenMP Offload + BLAS", 17.14, 29.23),
        ("GPU OpenMP Offload + cuBLAS", 1.33, 2.11),
        ("GPU cuBLAS + Pinned/Streams", 1.06, 1.48),
    ];

    /// Fig. 2: weak-scaling efficiency at P = 1024 ranks.
    pub const WEAK_EFF_1024: f64 = 0.9673;

    /// Fig. 3: strong-scaling efficiencies.
    pub const STRONG_EFF_5120_AT_256: f64 = 0.6634;
    /// 10,240 atoms on 512 ranks.
    pub const STRONG_EFF_10240_AT_512: f64 = 0.8083;

    /// Fig. 4: single-node CPU+GPU over CPU-only throughput.
    pub const FIG4_SPEEDUP: f64 = 19.0;

    /// Fig. 5 speedups (CPU+BLAS -> GPU+cuBLAS+pinned, DP):
    /// electron propagation, nonlocal propagation, energy calculation.
    pub const FIG5_SPEEDUPS: [f64; 3] = [45.0, 42.0, 46.0];

    /// Fig. 6 cumulative ladder: BLAS on CPU, GPU offload over that, pinned
    /// gain, and the total.
    pub const FIG6_CPU_BLAS: f64 = 25.2;
    /// GPU over BLASified CPU.
    pub const FIG6_GPU_OVER_BLAS: f64 = 18.6;
    /// Pinned-memory extra gain (fraction).
    pub const FIG6_PINNED_GAIN: f64 = 0.376;
    /// Total cumulative speedup.
    pub const FIG6_TOTAL: f64 = 644.0;
}

/// Format a seconds value with sensible precision.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else {
        format!("{t:.4}")
    }
}

/// Format a speedup.
pub fn fmt_x(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_shrinks_workload() {
        let a = BenchArgs { scale: 0.25 };
        assert!(a.mesh().len() < 70 * 70 * 72 / 10);
        assert_eq!(a.norb(), 16);
        assert_eq!(a.n_qd(), 250);
    }

    #[test]
    fn full_scale_matches_paper() {
        let a = BenchArgs { scale: 1.0 };
        let m = a.mesh();
        assert_eq!((m.nx, m.ny, m.nz), (70, 70, 72));
        assert_eq!(a.norb(), 64);
        assert_eq!(a.n_qd(), 1000);
    }

    #[test]
    fn paper_constants_sane() {
        assert_eq!(paper::TABLE1.len(), 5);
        assert!(paper::TABLE1[3].3 > 300.0);
        assert!(paper::FIG6_TOTAL > 600.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(8.654), "8.65");
        assert_eq!(fmt_s(0.026), "0.0260");
        assert_eq!(fmt_x(338.0), "338x");
        assert_eq!(fmt_x(3.67), "3.67x");
    }
}
