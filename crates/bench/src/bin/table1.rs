//! Table I: runtime of the `kin_prop()` function across the optimization
//! ladder (paper §IV-C). CPU rows are measured on this machine; GPU rows
//! report the A100 roofline model's time for the same (really executed)
//! kernels, including the `nowait` ablation of the last row.

use std::time::Instant;

use dcmesh_bench::{fmt_s, fmt_x, paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_device::{Device, LaunchPolicy};
use dcmesh_grid::WfAos;
use dcmesh_lfd::kinetic::{Axis, KineticPropagator, StepFraction};

fn main() {
    // Table I needs enough per-pass work that launch overheads do not
    // dominate the modeled device rows: default to half the paper scale.
    let args = BenchArgs::parse_with_default(0.5);
    let mesh = args.mesh();
    let norb = args.norb();
    let n_qd = args.n_qd();
    println!("Table I reproduction — kin_prop() optimization ladder");
    println!("{}", args.describe());
    println!("(timing: {n_qd} QD steps of the x-direction stencil, like the paper)\n");
    args.init_obs();

    let mut init = WfAos::<f64>::zeros(mesh.clone(), norb);
    init.randomize(1);
    let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);
    let block = (norb / 2).max(1);

    // Algorithm 1 (AoS baseline, measured).
    let mut aos = init.clone();
    let t0 = Instant::now();
    for _ in 0..n_qd {
        prop.apply_axis_alg1(&mut aos, Axis::X, StepFraction::Full);
    }
    let t_alg1 = t0.elapsed().as_secs_f64();

    // Algorithm 3 (SoA + loop interchange, measured).
    let mut soa = init.to_soa();
    let t0 = Instant::now();
    for _ in 0..n_qd {
        prop.apply_axis_alg3(&mut soa, Axis::X, StepFraction::Full);
    }
    let t_alg3 = t0.elapsed().as_secs_f64();

    // Algorithm 4 (+ blocking, measured).
    let mut soa4 = init.to_soa();
    let t0 = Instant::now();
    for _ in 0..n_qd {
        prop.apply_axis_alg4(&mut soa4, Axis::X, StepFraction::Full, block);
    }
    let t_alg4 = t0.elapsed().as_secs_f64();

    // Algorithm 5 on the modeled device. The async row uses real `nowait`
    // deferral: all n_qd x 3 pass bodies are enqueued on the stream-0 lane
    // under one scoped borrow and execute while the host runs ahead; the
    // sync row launches the same kernels inline.
    let t_alg5_async = {
        let dev = Device::a100();
        let mut s = init.to_soa();
        dev.nowait_scope(|scope| {
            prop.apply_axis_alg5_nowait(&mut s, Axis::X, StepFraction::Full, block, n_qd, scope);
        });
        dev.synchronize()
    };
    let t_alg5_sync = {
        let dev = Device::a100();
        let mut s = init.to_soa();
        for _ in 0..n_qd {
            prop.apply_axis_alg5(
                &mut s,
                Axis::X,
                StepFraction::Full,
                block,
                Some((&dev, LaunchPolicy::Sync)),
            );
        }
        dev.synchronize()
    };

    let rows: [(&str, &str, f64, bool); 5] = [
        ("Algorithm 1", "CPU", t_alg1, false),
        ("Algorithm 3", "CPU", t_alg3, false),
        ("Algorithm 4", "CPU", t_alg4, false),
        ("Algorithm 5", "GPU", t_alg5_async, true),
        ("Algorithm 5 (disable nowait)", "GPU", t_alg5_sync, true),
    ];

    let mut table = Table::new(&[
        "Implementation",
        "Target",
        "Runtime (s)",
        "Speedup",
        "Paper (s)",
        "Paper speedup",
        "Source",
    ]);
    for ((name, target, t, modeled), (pname, _, pt, px)) in rows.iter().zip(paper::TABLE1.iter()) {
        assert_eq!(*name, *pname);
        table.row(&[
            name.to_string(),
            target.to_string(),
            fmt_s(*t),
            fmt_x(t_alg1 / t),
            fmt_s(*pt),
            fmt_x(*px),
            if *modeled {
                "modeled (A100 roofline)"
            } else {
                "measured"
            }
            .to_string(),
        ]);
    }
    println!("{}", table.render());
    let nowait_gain = (t_alg5_sync - t_alg5_async) / t_alg5_async * 100.0;
    println!(
        "asynchronous (nowait) gain over synchronous: {:.2}% (paper: 10.35%)",
        nowait_gain
    );
    println!(
        "\nshape check: Alg3 > 1x, Alg4 >= Alg3, GPU >> CPU, async > sync — compare columns above."
    );
    args.finish_obs();
}
