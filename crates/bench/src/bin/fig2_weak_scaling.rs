//! Fig. 2: weak-scaling parallel efficiency of DC-MESH, 40 atoms per rank,
//! P = 4 ... 1024 simulated ranks on the modeled Slingshot fabric.
//!
//! `--no-overlap` runs the paper's "disable nowait" ablation (halo
//! exchanges blocking instead of posted before the compute slice), and
//! `--ranks 4,8,16` overrides the sweep. With `--record`, the modeled
//! per-step times land in the RunRecord as `scaling.modeled_step_s.p{P}`
//! gauges so the `compare` bin can gate overlap regressions exactly.

use dcmesh_bench::{paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_core::scaling::{weak_scaling, AnalyticEfficiency, ScalingConfig};

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 2 reproduction — weak-scaling parallel efficiency");
    println!("(one OS thread per simulated rank; compute = calibrated roofline model,");
    println!(" communication = modeled Slingshot dragonfly; see DESIGN.md)\n");
    if args.no_overlap {
        println!("halo/compute overlap DISABLED (--no-overlap ablation)\n");
    }
    args.init_obs();

    let cfg = ScalingConfig {
        overlap: !args.no_overlap,
        ..ScalingConfig::default()
    };
    let default_ranks = vec![4usize, 8, 16, 32, 64, 128, 256, 512, 1024];
    let ranks = args.ranks.clone().unwrap_or(default_ranks);
    let points = weak_scaling(&cfg, &ranks);

    // Fit-free analytic overlay with the paper's functional form.
    let analytic = AnalyticEfficiency {
        alpha: 0.02,
        beta: 0.12,
    };

    let mut table = Table::new(&[
        "Ranks (P)",
        "Atoms",
        "t/MD step (s, simulated)",
        "Efficiency",
        "Comm wait (s)",
        "Overlap",
        "Analytic model",
    ]);
    for p in &points {
        table.row(&[
            p.ranks.to_string(),
            p.atoms.to_string(),
            format!("{:.3}", p.sim_seconds),
            format!("{:.4}", p.efficiency),
            format!("{:.2e}", p.comm_wait_s),
            format!("{:.3}", p.overlap_ratio),
            format!("{:.4}", analytic.weak(cfg.atoms_per_rank as f64, p.ranks)),
        ]);
        dcmesh_obs::metrics::gauge_set(
            &format!("scaling.modeled_step_s.p{}", p.ranks),
            p.sim_seconds,
        );
    }
    if let Some(last) = points.last() {
        dcmesh_obs::metrics::gauge_set("comm.overlap_ratio", last.overlap_ratio);
    }
    println!("{}", table.render());
    let last = points.last().unwrap();
    println!(
        "efficiency at P = {}: {:.4} (paper at P = 1024: {:.4})",
        last.ranks,
        last.efficiency,
        paper::WEAK_EFF_1024
    );
    println!("shape check: efficiency stays > 0.9 and decays slowly (log P).");
    args.finish_obs();
}
