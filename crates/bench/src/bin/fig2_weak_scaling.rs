//! Fig. 2: weak-scaling parallel efficiency of DC-MESH, 40 atoms per rank,
//! P = 4 ... 1024 simulated ranks on the modeled Slingshot fabric.

use dcmesh_bench::{paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_core::scaling::{weak_scaling, AnalyticEfficiency, ScalingConfig};

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 2 reproduction — weak-scaling parallel efficiency");
    println!("(one OS thread per simulated rank; compute = calibrated roofline model,");
    println!(" communication = modeled Slingshot dragonfly; see DESIGN.md)\n");
    args.init_obs();

    let cfg = ScalingConfig::default();
    let ranks = [4usize, 8, 16, 32, 64, 128, 256, 512, 1024];
    let points = weak_scaling(&cfg, &ranks);

    // Fit-free analytic overlay with the paper's functional form.
    let analytic = AnalyticEfficiency {
        alpha: 0.02,
        beta: 0.12,
    };

    let mut table = Table::new(&[
        "Ranks (P)",
        "Atoms",
        "t/MD step (s, simulated)",
        "Efficiency",
        "Analytic model",
    ]);
    for p in &points {
        table.row(&[
            p.ranks.to_string(),
            p.atoms.to_string(),
            format!("{:.3}", p.sim_seconds),
            format!("{:.4}", p.efficiency),
            format!("{:.4}", analytic.weak(cfg.atoms_per_rank as f64, p.ranks)),
        ]);
    }
    println!("{}", table.render());
    let last = points.last().unwrap();
    println!(
        "efficiency at P = 1024: {:.4} (paper: {:.4})",
        last.efficiency,
        paper::WEAK_EFF_1024
    );
    println!("shape check: efficiency stays > 0.9 and decays slowly (log P).");
    args.finish_obs();
}
