//! Fig. 3: strong-scaling parallel efficiency for 5,120- and 10,240-atom
//! PbTiO3 systems (constant total problem, rank sweep).
//!
//! `--no-overlap` runs the paper's "disable nowait" ablation (blocking
//! halo exchanges), and `--ranks 64,128,256` overrides both sweeps. With
//! `--record`, modeled per-step times are published as
//! `scaling.modeled_step_s.a{atoms}.p{P}` gauges for the compare gate.

use dcmesh_bench::{paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_core::scaling::{strong_scaling, AnalyticEfficiency, ScalingConfig};

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 3 reproduction — strong-scaling parallel efficiency");
    println!("(simulated ranks; compute modeled, communication modeled; see DESIGN.md)\n");
    if args.no_overlap {
        println!("halo/compute overlap DISABLED (--no-overlap ablation)\n");
    }
    args.init_obs();

    let cfg = ScalingConfig {
        overlap: !args.no_overlap,
        ..ScalingConfig::default()
    };
    let analytic = AnalyticEfficiency {
        alpha: 0.6,
        beta: 1.2,
    };

    for (atoms, default_ranks, paper_eff, paper_at) in [
        (
            5120usize,
            vec![64usize, 128, 256],
            paper::STRONG_EFF_5120_AT_256,
            256usize,
        ),
        (
            10240,
            vec![128, 256, 512],
            paper::STRONG_EFF_10240_AT_512,
            512,
        ),
    ] {
        let ranks = args.ranks.clone().unwrap_or(default_ranks);
        println!("--- {atoms}-atom PbTiO3 ---");
        let points = strong_scaling(&cfg, atoms, &ranks);
        let mut table = Table::new(&[
            "Ranks (P)",
            "Atoms/rank",
            "t/MD step (s, simulated)",
            "Efficiency",
            "Comm wait (s)",
            "Overlap",
            "Analytic model",
        ]);
        for p in &points {
            table.row(&[
                p.ranks.to_string(),
                (atoms / p.ranks).to_string(),
                format!("{:.3}", p.sim_seconds),
                format!("{:.4}", p.efficiency),
                format!("{:.2e}", p.comm_wait_s),
                format!("{:.3}", p.overlap_ratio),
                format!(
                    "{:.4}",
                    analytic.strong(atoms as f64, p.ranks)
                        / analytic.strong(atoms as f64, ranks[0])
                ),
            ]);
            dcmesh_obs::metrics::gauge_set(
                &format!("scaling.modeled_step_s.a{atoms}.p{}", p.ranks),
                p.sim_seconds,
            );
        }
        println!("{}", table.render());
        let last = points.last().unwrap();
        println!(
            "efficiency at P = {}: {:.4} (paper at P = {paper_at}: {paper_eff:.4})\n",
            last.ranks, last.efficiency
        );
    }
    println!("shape check: strong scaling degrades faster than weak (P^(1/3), P log P terms),");
    println!("and the larger system holds efficiency better at the same P.");
    args.finish_obs();
}
