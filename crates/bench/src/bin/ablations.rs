//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. orbital block size in the blocked stencil (paper Alg. 4),
//! 2. loops vs BLAS nonlocal correction across problem sizes (§III-D),
//! 3. LDC buffer width: embedding accuracy vs cost (paper §II),
//! 4. load imbalance vs weak-scaling efficiency (Fig. 2 sensitivity),
//! 5. parallel dispatch cost: spawn-per-call threads vs the persistent
//!    `dcmesh-pool` executor (the PR that killed spawn-per-call).
//!
//! Run: `cargo run --release -p dcmesh-bench --bin ablations`

use std::time::Instant;

use dcmesh_bench::BenchArgs;
use dcmesh_core::metrics::Table;
use dcmesh_core::scaling::{weak_scaling, ScalingConfig};
use dcmesh_grid::{Mesh3, WfAos};
use dcmesh_lfd::kinetic::{Axis, KineticPropagator, StepFraction};
use dcmesh_lfd::nonlocal::{GemmPath, NonlocalCorrection};
use dcmesh_tddft::dcscf::{run_dc_scf, DcScfConfig};
use dcmesh_tddft::{AtomSet, Species};

fn main() {
    // The sweeps use fixed workloads; BenchArgs only carries the
    // observability flags (`--trace PATH`, `--report`) here.
    let args = BenchArgs::parse();
    args.init_obs();
    block_size_sweep();
    gemm_path_sweep();
    buffer_width_sweep();
    imbalance_sweep();
    pool_dispatch_sweep();
    args.finish_obs();
}

fn block_size_sweep() {
    println!("=== ablation 1: orbital block size (Algorithm 4) ===");
    let mesh = Mesh3::new(30, 30, 30, 0.42, 0.42, 0.42);
    let norb = 32;
    let reps = 60;
    let mut init = WfAos::<f64>::zeros(mesh.clone(), norb);
    init.randomize(1);
    let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);
    let mut table = Table::new(&["block_size", "time (ms)", "relative"]);
    let mut base = 0.0;
    for block in [1usize, 2, 4, 8, 16, 32] {
        let mut psi = init.to_soa();
        let t0 = Instant::now();
        for _ in 0..reps {
            prop.apply_axis_alg4(&mut psi, Axis::X, StepFraction::Full, block);
        }
        let dt = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        if block == 1 {
            base = dt;
        }
        table.row(&[
            block.to_string(),
            format!("{dt:.3}"),
            format!("{:.2}x", base / dt),
        ]);
    }
    println!("{}", table.render());
    println!("(block = norb reproduces Algorithm 3; the paper's Alg. 4 gains depend on\n the carry-buffer pressure our exact-unitary pairwise kernel avoids)\n");
}

fn gemm_path_sweep() {
    println!("=== ablation 2: nonlocal correction, loops vs BLAS (SIII-D) ===");
    let mut table = Table::new(&[
        "mesh",
        "norb",
        "state (MB)",
        "loops (ms)",
        "BLAS (ms)",
        "BLAS speedup",
    ]);
    for (n, norb) in [(16usize, 12usize), (24, 20), (32, 28), (40, 40)] {
        let mesh = Mesh3::cubic(n, 0.42);
        let mut psi0 = WfAos::<f64>::zeros(mesh.clone(), norb);
        psi0.randomize(2);
        let nl = NonlocalCorrection::new(psi0.to_matrix(), norb * 3 / 4, 0.08, 0.04, mesh.dv());
        let reps = (30_000_000 / (mesh.len() * norb)).max(2);
        let mut m = psi0.to_matrix();
        let t0 = Instant::now();
        for _ in 0..reps {
            nl.nlp_prop(&mut m, GemmPath::Loops);
        }
        let t_loops = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let mut s = psi0.to_soa();
        let t0 = Instant::now();
        for _ in 0..reps {
            nl.nlp_prop_soa(&mut s);
        }
        let t_blas = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        table.row(&[
            format!("{n}^3"),
            norb.to_string(),
            format!("{:.1}", (mesh.len() * norb * 16) as f64 / 1e6),
            format!("{t_loops:.2}"),
            format!("{t_blas:.2}"),
            format!("{:.2}x", t_loops / t_blas),
        ]);
    }
    println!("{}", table.render());
    println!("(the BLAS advantage grows once the state outgrows cache — the paper's point)\n");
}

fn buffer_width_sweep() {
    println!("=== ablation 3: LDC buffer width (embedding accuracy vs cost) ===");
    let global = Mesh3::new(16, 8, 8, 0.55, 0.55, 0.55);
    let mut atoms = AtomSet::new(vec![Species::hydrogen()]);
    atoms.push(0, [4.0 * 0.55, 4.0 * 0.55, 4.0 * 0.55]);
    atoms.push(0, [12.0 * 0.55, 4.0 * 0.55, 4.0 * 0.55]);
    // Single-domain reference.
    let reference = run_dc_scf(
        &global,
        &atoms,
        &DcScfConfig {
            parts: [1, 1, 1],
            buffer: 0,
            norb_per_domain: 4,
            scf_iters: 8,
            ..Default::default()
        },
    )
    .global_density;
    let mut table = Table::new(&[
        "buffer (pts)",
        "local mesh",
        "density err (L2)",
        "time (ms)",
    ]);
    for buffer in [0usize, 1, 2, 3] {
        let cfg = DcScfConfig {
            parts: [2, 1, 1],
            buffer,
            norb_per_domain: 2,
            scf_iters: 8,
            ..Default::default()
        };
        let t0 = Instant::now();
        let dc = run_dc_scf(&global, &atoms, &cfg);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let err: f64 = dc
            .global_density
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let side = 8 + 2 * buffer;
        table.row(&[
            buffer.to_string(),
            format!("{side}x{}x{}", 8 + 2 * buffer, 8 + 2 * buffer),
            format!("{err:.4}"),
            format!("{dt:.0}"),
        ]);
    }
    println!("{}", table.render());
    println!("(thicker buffers embed better but cost (s+2b)^3/s^3 more work — the\n strong-scaling alpha term of §IV-A)\n");
}

fn imbalance_sweep() {
    println!("=== ablation 4: load imbalance vs weak-scaling efficiency ===");
    let mut table = Table::new(&["imbalance", "eff @ P=64", "eff @ P=256"]);
    for imb in [0.0, 0.02, 0.035, 0.07] {
        let cfg = ScalingConfig {
            n_qd: 20,
            imbalance: imb,
            global_solve_serial: 0.0004,
            ..ScalingConfig::default()
        };
        let pts = weak_scaling(&cfg, &[4, 64, 256]);
        table.row(&[
            format!("{:.1}%", imb * 100.0),
            format!("{:.4}", pts[1].efficiency),
            format!("{:.4}", pts[2].efficiency),
        ]);
    }
    println!("{}", table.render());
    println!("(the Fig. 2 plateau is set almost entirely by per-domain load spread)\n");
}

fn pool_dispatch_sweep() {
    println!("=== ablation 5: dispatch cost, spawn-per-call vs persistent pool ===");
    // Empty team bodies over a 64-team grid: everything measured here is
    // pure dispatch overhead — thread spawn/join for the old strategy,
    // atomics + one condvar broadcast for the persistent executor.
    let teams = 64usize;
    let reps = 2000usize;
    let mut data = vec![0u8; teams];
    let mut table = Table::new(&[
        "threads",
        "spawn-per-call (us)",
        "persistent pool (us)",
        "reduction",
    ]);
    let mut best: Option<(usize, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        for _ in 0..reps {
            dcmesh_bench::spawn_per_call_distribute_mut(&mut data, teams, threads, |_, _| {});
        }
        let t_spawn = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        let pool = dcmesh_pool::ThreadPool::new(threads);
        let t0 = Instant::now();
        for _ in 0..reps {
            pool.for_each_chunk_mut(&mut data, teams, |_, _| {});
        }
        let t_pool = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        table.row(&[
            threads.to_string(),
            format!("{t_spawn:.2}"),
            format!("{t_pool:.2}"),
            format!("{:.1}x", t_spawn / t_pool),
        ]);
        if best.is_none_or(|(_, b)| t_spawn / t_pool > b) {
            best = Some((threads, t_spawn / t_pool));
        }
        dcmesh_obs::metrics::gauge_set(&format!("ablation.dispatch_us.pool.t{threads}"), t_pool);
        dcmesh_obs::metrics::gauge_set(&format!("ablation.dispatch_us.spawn.t{threads}"), t_spawn);
    }
    println!("{}", table.render());
    if let Some((threads, ratio)) = best {
        println!(
            "(persistent executor cuts per-call dispatch cost {ratio:.1}x at {threads} threads;\n workers park on a condvar between launches instead of being respawned)"
        );
    }
}
