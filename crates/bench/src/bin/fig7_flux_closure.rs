//! Fig. 7: flux-closure polar structure in PbTiO3 and its laser-induced
//! switching — the application study of paper §V.
//!
//! Builds a strained PbTiO3 slab with a four-quadrant flux-closure vortex,
//! runs the coupled DC-MESH simulation under a femtosecond pulse, and
//! reports the polarization vector field (ASCII + CSV) and the
//! toroidal-moment time series that tracks the topological switching.

use dcmesh_bench::BenchArgs;
use dcmesh_core::{config_fingerprint, DcMeshConfig, DcMeshSim};
use dcmesh_lfd::LaserPulse;
use dcmesh_qxmd::pbtio3::{PbTiO3Cell, Supercell};
use dcmesh_qxmd::polarization::{LkDynamics, PolarizationField};
use dcmesh_telemetry::{FlightRecorder, RecorderConfig};

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 7 reproduction — flux-closure domain and laser-induced switching\n");
    args.init_obs();

    // --- The static flux-closure structure (the Fig. 7 rendering). ---
    let mut sc = Supercell::build(&PbTiO3Cell::cubic(), [12, 1, 12]);
    sc.imprint_flux_closure(0.3, 1.0);
    let field = PolarizationField::from_supercell(&sc, 0);
    println!("flux-closure polarization field (12x12 cells, x-z plane):\n");
    println!("{}", field.render_ascii());
    println!(
        "toroidal moment G_y = {:.4} (a.u.)",
        field.toroidal_moment()
    );
    println!(
        "mean |P| = {:.4}, net P = {:?}\n",
        field.mean_magnitude(),
        field.mean()
    );

    // CSV artifact for plotting.
    let csv_path = "fig7_flux_closure_field.csv";
    std::fs::write(csv_path, field.to_csv()).expect("write CSV");
    println!("wrote {csv_path} (ix,iz,x,z,px,pz)\n");

    // --- Laser-driven dynamics through the full DC-MESH stack. ---
    let cfg = DcMeshConfig {
        supercell_dims: [8, 1, 8],
        domains_x: 2,
        domain_mesh_points: 8,
        norb: 4,
        lumo: 2,
        dt_qd: 0.02,
        n_qd: 40,
        dt_md: dcmesh_math::phys::femtoseconds_to_au(0.25),
        build: dcmesh_lfd::BuildKind::GpuCublasPinned,
        laser: Some(LaserPulse {
            e0: 1.2,
            omega: 0.8,
            duration: 8.0,
        }),
        flux_closure_amplitude: Some(0.3),
        scf_initial_state: false,
        ehrenfest_feedback: false,
        seed: 7,
    };
    // `--restore PATH` resumes a prior run's trajectory bitwise;
    // `--checkpoint PATH` (+ `--checkpoint-every N`) snapshots this one.
    let mut sim = match &args.restore {
        Some(path) => {
            let sim = DcMeshSim::restore_from_checkpoint(cfg, path)
                .unwrap_or_else(|e| panic!("cannot restore from {}: {e}", path.display()));
            println!(
                "restored checkpoint {} at MD step {}",
                path.display(),
                sim.md_steps()
            );
            sim
        }
        None => DcMeshSim::new(cfg),
    };
    let mut recorder = args
        .telemetry
        .then(|| FlightRecorder::new(RecorderConfig::default()));
    let total_steps = 12;
    println!(
        "running coupled DC-MESH: {total_steps} MD steps x 40 QD steps, fs pulse on a vortex..."
    );
    println!("step  t(fs)    excited   G_y        <Pz>      hops");
    while sim.md_steps() < total_steps {
        let r = sim.md_step();
        if let Some(rec) = &mut recorder {
            rec.observe(&sim, &r);
        }
        println!(
            "{:>4}  {:>6.3}  {:>8.4}  {:>9.5}  {:>8.5}  {:>4}",
            sim.md_steps(),
            r.time_fs,
            r.excited_population,
            r.toroidal_moment,
            r.mean_polarization[1],
            r.hops
        );
        if let Some(path) = &args.checkpoint {
            let every = args.checkpoint_every.max(1);
            if sim.md_steps().is_multiple_of(every) {
                sim.save_checkpoint(path)
                    .unwrap_or_else(|e| panic!("cannot checkpoint to {}: {e}", path.display()));
                println!("      checkpointed -> {}", path.display());
            }
        }
    }

    // --- The switching mechanism in isolation (LK + excitation). ---
    println!("\nswitching mechanism (LK dynamics, paper's light-induced barrier softening):");
    println!("protocol: relax vortex to equilibrium -> sub-coercive bias pulse -> free relaxation");
    let n = 8;
    let p0 = 0.1;
    let ec = 2.0 * 0.5 * p0 / (3.0 * 3.0f64.sqrt());
    let make_relaxed = || {
        let mut s = Supercell::build(&PbTiO3Cell::cubic(), [n, 1, n]);
        s.imprint_flux_closure(0.3, 1.0);
        let f = PolarizationField::from_supercell(&s, 0);
        let mut lk = LkDynamics::new(f, 0.5, p0);
        lk.run(0.01, 4000, |_| ([0.0, 0.0], 0.0));
        lk
    };
    for (label, n_exc) in [("dark (n_exc = 0)", 0.0), ("excited (n_exc = 0.8)", 0.8)] {
        let mut lk = make_relaxed();
        let g0 = lk.field.toroidal_moment();
        lk.run(0.01, 500, |_| ([0.0, -0.5 * ec], n_exc)); // the "laser window"
        let g_pulse = lk.field.toroidal_moment();
        lk.run(0.01, 4000, |_| ([0.0, 0.0], 0.0)); // recovery
        let g1 = lk.field.toroidal_moment();
        println!(
            "  {label:<22} G_y: {g0:+.3} -> {g_pulse:+.3} (pulse) -> {g1:+.3}   vortex {}",
            if g1.abs() < 0.2 * g0.abs() {
                "SWITCHED to mono-domain"
            } else {
                "recovered (topologically protected)"
            }
        );
    }
    println!("\nshape check: the same sub-coercive pulse leaves the dark vortex intact but");
    println!("switches the photo-excited one — the paper's ultralow-power switching pathway.");

    args.finish_obs_with(Some(config_fingerprint(sim.config())), recorder.as_ref());
}
