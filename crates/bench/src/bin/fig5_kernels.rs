//! Fig. 5: DP runtime of the compute-intensive kernels — electron
//! time-propagation (Eq. (6)), nonlocal propagation (Eq. (7)), and energy
//! calculation — across the build ladder.

use std::time::Instant;

use dcmesh_bench::{fmt_s, fmt_x, paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_lfd::{BuildKind, LfdConfig, LfdEngine};

struct KernelRow {
    build: BuildKind,
    electron: f64,
    nonlocal: f64,
    transfer: f64,
    energy: f64,
    modeled: bool,
}

fn run(args: &BenchArgs, build: BuildKind) -> KernelRow {
    let cfg = LfdConfig {
        mesh: args.mesh(),
        norb: args.norb(),
        lumo: (args.norb() * 3 / 4).max(1),
        dt: 0.04,
        n_qd: args.n_qd(),
        block_size: (args.norb() / 2).max(1),
        build,
        delta_sci: 0.08,
        laser: None,
        seed: 7,
    };
    let v_loc = vec![0.0; cfg.mesh.len()];
    let mut engine = LfdEngine::<f64>::new(cfg, v_loc);
    let t = engine.run_md_step();
    // Energy-calculation kernel (calc_energy()): time scissor_energies over
    // the same number of calls per MD step as nlp_prop (2 per QD step).
    let calls = 2 * args.n_qd();
    let e0 = Instant::now();
    for _ in 0..calls {
        let _ = engine.scissor_energies();
    }
    let mut energy = e0.elapsed().as_secs_f64();
    if build.uses_device() {
        // Model the energy kernel like the nonlocal GEMM it is.
        energy = t.nonlocal * 0.45; // one GEMM of the two in nlp_prop
    }
    KernelRow {
        build,
        electron: t.electron,
        nonlocal: t.nonlocal,
        transfer: t.transfer,
        energy,
        modeled: t.modeled,
    }
}

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 5 reproduction — DP kernel runtimes across builds");
    println!("{}\n", args.describe());
    args.init_obs();

    let builds = [
        BuildKind::CpuBlas,
        BuildKind::GpuBlas,
        BuildKind::GpuCublas,
        BuildKind::GpuCublasPinned,
    ];
    let rows: Vec<KernelRow> = builds.iter().map(|&b| run(&args, b)).collect();

    let mut table = Table::new(&[
        "Build",
        "Electron prop (s)",
        "Nonlocal prop (s)",
        "Transfer (s)",
        "Energy calc (s)",
        "Source",
    ]);
    for r in &rows {
        table.row(&[
            r.build.label().to_string(),
            fmt_s(r.electron),
            fmt_s(r.nonlocal),
            fmt_s(r.transfer),
            fmt_s(r.energy),
            if r.modeled { "modeled" } else { "measured" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    if let Some(events) = args.finish_obs() {
        // Cross-check: the host-track phase totals in the trace must agree
        // with the legacy KernelTimings view (both are derived from the
        // same per-step slices, so any mismatch means lost events).
        let kin = dcmesh_bench::host_phase_seconds(&events, "lfd.kinetic");
        let pot = dcmesh_bench::host_phase_seconds(&events, "lfd.potential");
        let nonl = dcmesh_bench::host_phase_seconds(&events, "lfd.nonlocal");
        let elec_legacy: f64 = rows.iter().map(|r| r.electron).sum();
        let nonl_legacy: f64 = rows.iter().map(|r| r.nonlocal).sum();
        let agree = |a: f64, b: f64| (a - b).abs() <= 0.01 * a.abs().max(b.abs()).max(1e-12);
        println!(
            "trace vs KernelTimings: electron {} vs {} ({}), nonlocal {} vs {} ({})",
            fmt_s(kin + pot),
            fmt_s(elec_legacy),
            if agree(kin + pot, elec_legacy) {
                "agree"
            } else {
                "MISMATCH"
            },
            fmt_s(nonl),
            fmt_s(nonl_legacy),
            if agree(nonl, nonl_legacy) {
                "agree"
            } else {
                "MISMATCH"
            },
        );
    }

    let base = &rows[0];
    let best = rows.last().unwrap();
    println!(
        "speedups CPU+BLAS -> GPU+cuBLAS+pinned: electron {}, nonlocal {}, energy {}",
        fmt_x(base.electron / best.electron),
        fmt_x(base.nonlocal / best.nonlocal),
        fmt_x(base.energy / best.energy),
    );
    println!(
        "paper: electron {}x, nonlocal {}x, energy {}x",
        paper::FIG5_SPEEDUPS[0],
        paper::FIG5_SPEEDUPS[1],
        paper::FIG5_SPEEDUPS[2]
    );
}
