//! Fig. 4: single-node throughput of DC-MESH — CPU-only (EPYC 7543P) vs
//! CPU + A100, 4 ranks x 40-atom PbTiO3 per rank.

use dcmesh_bench::{paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_core::scaling::{single_node_throughput, ScalingConfig};

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 4 reproduction — single-node throughput (ranks completing / second)");
    println!("(both columns from the calibrated roofline models; see DESIGN.md)\n");
    args.init_obs();
    let cfg = ScalingConfig::default();
    let (cpu, gpu) = single_node_throughput(&cfg);
    let mut table = Table::new(&["Configuration", "Throughput (ranks/s)", "Relative"]);
    table.row(&[
        "CPU only (AMD 7543P)".into(),
        format!("{cpu:.5}"),
        "1.00x".into(),
    ]);
    table.row(&[
        "CPU + NVIDIA A100".into(),
        format!("{gpu:.5}"),
        format!("{:.1}x", gpu / cpu),
    ]);
    println!("{}", table.render());
    println!(
        "speedup: {:.1}x (paper: {:.0}x) — the GPU accelerates the LFD share; the\nremaining CPU-resident QXMD work bounds the node-level gain (Amdahl).",
        gpu / cpu,
        paper::FIG4_SPEEDUP
    );
    args.finish_obs();
}
