//! Regression gate: diff two RunRecords and exit nonzero on regression.
//!
//! ```text
//! compare [--latency-ratio X] [--p95-ratio X] [--phase-ratio X]
//!         [--noise-floor-s S] [--max-energy-drift X] [--modeled-ratio X]
//!         [--allow-config-change] BASELINE.json CANDIDATE.json
//! ```
//!
//! Checks, in order: schema compatibility (hard error), config
//! fingerprint, log₂-histogram p50/p95 latency ratios (`--latency-ratio`
//! / `--p95-ratio` — the serve gate leans on the tail), per-phase wall-time
//! ratios, modeled scaling step-time gauges (`--modeled-ratio`, exact
//! simulated clocks so 1.0 is a meaningful bound — the overlap-ablation
//! gate uses it), and the candidate's invariant summary against absolute
//! thresholds. Exit code 0 = no regression, 1 = regressions listed on
//! stdout, 2 = usage or unreadable/incomparable records.

use std::path::PathBuf;
use std::process::ExitCode;

use dcmesh_telemetry::{compare, CompareConfig, RunRecord};

fn usage() -> ! {
    eprintln!(
        "usage: compare [--latency-ratio X] [--p95-ratio X] [--phase-ratio X] \
         [--noise-floor-s S] [--max-energy-drift X] [--modeled-ratio X] \
         [--allow-config-change] BASELINE.json CANDIDATE.json"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut cfg = CompareConfig::default();
    let mut paths: Vec<PathBuf> = Vec::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next_f64 = |flag: &str| -> f64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} requires a number");
                usage()
            })
        };
        match a.as_str() {
            "--latency-ratio" => cfg.latency_ratio = next_f64("--latency-ratio"),
            "--p95-ratio" => cfg.latency_tail_ratio = next_f64("--p95-ratio"),
            "--phase-ratio" => cfg.phase_ratio = next_f64("--phase-ratio"),
            "--noise-floor-s" => cfg.noise_floor_s = next_f64("--noise-floor-s"),
            "--max-energy-drift" => cfg.max_energy_drift = next_f64("--max-energy-drift"),
            "--modeled-ratio" => cfg.modeled_step_ratio = next_f64("--modeled-ratio"),
            "--allow-config-change" => cfg.require_same_config = false,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                usage()
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        usage()
    };

    let load = |path: &PathBuf| -> RunRecord {
        RunRecord::read(path).unwrap_or_else(|e| {
            eprintln!("cannot load RunRecord: {e}");
            std::process::exit(2)
        })
    };
    let baseline = load(baseline_path);
    let candidate = load(candidate_path);

    println!(
        "comparing {} ({} @ {}) against baseline {} ({} @ {})",
        candidate_path.display(),
        candidate.bin,
        candidate.git.commit,
        baseline_path.display(),
        baseline.bin,
        baseline.git.commit,
    );

    match compare(&baseline, &candidate, &cfg) {
        Err(e) => {
            eprintln!("records are not comparable: {e}");
            ExitCode::from(2)
        }
        Ok(regressions) if regressions.is_empty() => {
            println!("OK: no regressions");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            println!("{} regression(s):", regressions.len());
            for r in &regressions {
                println!("  REGRESSION {r}");
            }
            ExitCode::FAILURE
        }
    }
}
