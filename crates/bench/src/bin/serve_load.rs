//! Saturation study of the `dcmesh-serve` job service: offer a fixed batch
//! of jobs at each concurrency level and report throughput plus queue/run
//! latency quantiles.
//!
//! Arrivals are open-loop (`--arrival-ms`, counter-based RNG; 0 = burst),
//! so a saturated service shows up as queueing delay and — past the queue
//! bound — typed rejections, not as a politely slowed-down workload.
//! Jobs use [`dcmesh_serve::PoolShare::Inline`], pinning each job's
//! kernels to its scheduler thread: throughput then scales with
//! `--concurrency` until the worker count reaches the machine's cores
//! (pool saturation), which is the curve EXPERIMENTS.md tabulates.
//!
//! With `--record`, the per-sweep throughput lands as
//! `serve.throughput_jobs_per_s.c{C}` gauges and the service's
//! `serve.queue_seconds` / `serve.run_seconds` histograms ride along in
//! the RunRecord, so the `compare` bin's `--p95-ratio` gate can hold the
//! tail-latency line.

use std::time::Duration;

use dcmesh_bench::BenchArgs;
use dcmesh_core::metrics::Table;
use dcmesh_serve::{run_load, LoadConfig, PoolShare};

fn main() {
    let args = BenchArgs::parse_with_default(0.1);
    println!("serve_load — batched job-service saturation study");
    args.init_obs();

    let jobs = args.jobs.unwrap_or(16);
    let sweep = args.concurrency.clone().unwrap_or_else(|| vec![1, 2, 4]);
    let steps_per_job = ((30.0 * args.scale).round() as u64).max(2);
    let deadline = args.deadline_ms.map(Duration::from_millis);
    let mean_arrival = Duration::from_secs_f64(args.arrival_ms.unwrap_or(0.0) / 1e3);
    println!(
        "{} jobs x {} MD steps per job, deadline {:?}, mean arrival {:?}, pool {} threads\n",
        jobs,
        steps_per_job,
        deadline,
        mean_arrival,
        dcmesh_pool::configured_threads()
    );

    let mut table = Table::new(&[
        "Concurrency",
        "Completed",
        "Rejected",
        "Deadline",
        "Throughput (jobs/s)",
        "Queue p50 (s)",
        "Queue p95 (s)",
        "Run p50 (s)",
        "Run p95 (s)",
    ]);
    let mut saturation = 0.0f64;
    let mut digest = None;
    for &c in &sweep {
        let report = run_load(&LoadConfig {
            jobs,
            concurrency: c,
            queue_capacity: jobs.max(1),
            steps_per_job,
            n_qd: 5,
            seed: 42,
            mean_arrival,
            deadline,
            pool_share: PoolShare::Inline,
        });
        table.row(&[
            c.to_string(),
            report.completed.to_string(),
            report.rejected.to_string(),
            report.deadline_exceeded.to_string(),
            format!("{:.2}", report.throughput_jobs_per_s),
            format!("{:.4}", report.queue_p50_s),
            format!("{:.4}", report.queue_p95_s),
            format!("{:.4}", report.run_p50_s),
            format!("{:.4}", report.run_p95_s),
        ]);
        dcmesh_obs::metrics::gauge_set(
            &format!("serve.throughput_jobs_per_s.c{c}"),
            report.throughput_jobs_per_s,
        );
        dcmesh_obs::metrics::gauge_set(&format!("serve.run_p95_s.c{c}"), report.run_p95_s);
        saturation = saturation.max(report.throughput_jobs_per_s);
        // The physics digest must not depend on the concurrency level (same
        // jobs, same seeds) as long as nothing was shed or cut short.
        if report.completed == jobs {
            match digest {
                None => digest = Some(report.digest),
                Some(d) => assert_eq!(
                    d, report.digest,
                    "completed-job digest drifted across concurrency levels"
                ),
            }
        }
    }
    println!("{}", table.render());
    if let Some(d) = digest {
        println!("physics digest over completed jobs: {d:016x} (concurrency-invariant)");
    }
    println!("saturation throughput: {saturation:.2} jobs/s");
    dcmesh_obs::metrics::gauge_set("serve.saturation_jobs_per_s", saturation);
    args.finish_obs();
}
