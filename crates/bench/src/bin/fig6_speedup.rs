//! Fig. 6: cumulative speedup of the total DC-MESH LFD code over the
//! non-BLAS CPU baseline, through the optimization ladder.

use dcmesh_bench::{fmt_s, fmt_x, paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_lfd::{BuildKind, LfdConfig, LfdEngine};

fn total_time(args: &BenchArgs, build: BuildKind) -> (f64, bool) {
    let cfg = LfdConfig {
        mesh: args.mesh(),
        norb: args.norb(),
        lumo: (args.norb() * 3 / 4).max(1),
        dt: 0.04,
        n_qd: args.n_qd(),
        block_size: (args.norb() / 2).max(1),
        build,
        delta_sci: 0.08,
        laser: None,
        seed: 11,
    };
    let v_loc = vec![0.0; cfg.mesh.len()];
    let mut engine = LfdEngine::<f64>::new(cfg, v_loc);
    let t = engine.run_md_step();
    (t.total, t.modeled)
}

fn main() {
    let args = BenchArgs::parse();
    println!("Fig. 6 reproduction — cumulative speedup over the baseline DC-MESH code");
    println!("{}\n", args.describe());

    let ladder = [
        (BuildKind::CpuLoops, "baseline"),
        (BuildKind::CpuBlas, "+ BLASification (CPU)"),
        (BuildKind::GpuCublas, "+ GPU offload + cuBLAS"),
        (BuildKind::GpuCublasPinned, "+ pinned memory / streams"),
    ];
    let times: Vec<(f64, bool)> = ladder.iter().map(|(b, _)| total_time(&args, *b)).collect();
    let t_base = times[0].0;

    let mut table = Table::new(&["Stage", "Total (s)", "Cumulative speedup", "Source"]);
    for ((_, label), (t, modeled)) in ladder.iter().zip(&times) {
        table.row(&[
            label.to_string(),
            fmt_s(*t),
            fmt_x(t_base / t),
            if *modeled { "modeled" } else { "measured" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let cpu_blas = t_base / times[1].0;
    let gpu_over_blas = times[1].0 / times[2].0;
    let pinned_gain = (times[2].0 - times[3].0) / times[3].0;
    let total = t_base / times[3].0;
    println!("decomposition of the ladder (this run vs paper):");
    println!(
        "  BLAS on CPU:        {} (paper {}x)",
        fmt_x(cpu_blas),
        paper::FIG6_CPU_BLAS
    );
    println!(
        "  GPU over CPU BLAS:  {} (paper {}x)",
        fmt_x(gpu_over_blas),
        paper::FIG6_GPU_OVER_BLAS
    );
    println!(
        "  pinned-memory gain: {:.1}% (paper {:.1}%)",
        pinned_gain * 100.0,
        paper::FIG6_PINNED_GAIN * 100.0
    );
    println!(
        "  TOTAL:              {} (paper {}x)",
        fmt_x(total),
        paper::FIG6_TOTAL
    );
}
