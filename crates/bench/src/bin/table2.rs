//! Table II: runtime of the LFD subprogram across build variants and
//! floating-point precisions (paper §IV-C). Each build really executes the
//! full QD loop (electron propagation + nonlocal correction) through the
//! [`dcmesh_lfd::LfdEngine`]; CPU builds are measured, GPU builds modeled.

use dcmesh_bench::{fmt_s, paper, BenchArgs};
use dcmesh_core::metrics::Table;
use dcmesh_lfd::{BuildKind, KernelTimings, LfdConfig, LfdEngine};
use dcmesh_math::Real;

fn run_build<R: Real>(args: &BenchArgs, build: BuildKind) -> KernelTimings {
    let cfg = LfdConfig {
        mesh: args.mesh(),
        norb: args.norb(),
        lumo: (args.norb() * 3 / 4).max(1),
        dt: 0.04,
        n_qd: args.n_qd(),
        block_size: (args.norb() / 2).max(1),
        build,
        delta_sci: 0.08,
        laser: None,
        seed: 2024,
    };
    let v_loc = vec![0.0; cfg.mesh.len()];
    let mut engine = LfdEngine::<R>::new(cfg, v_loc);
    engine.run_md_step()
}

fn main() {
    let args = BenchArgs::parse();
    println!("Table II reproduction — LFD build-variant ladder, SP vs DP");
    println!("{}", args.describe());
    println!("(each row runs the full QD loop: nonlocal half-step / electron propagation / nonlocal half-step)\n");
    args.init_obs();

    let mut table = Table::new(&[
        "Build",
        "Elec SP (s)",
        "Elec DP (s)",
        "Nonlocal SP (s)",
        "Nonlocal DP (s)",
        "Xfer SP (s)",
        "Xfer DP (s)",
        "Total SP (s)",
        "Total DP (s)",
        "Source",
    ]);
    let mut totals_dp = Vec::new();
    for build in BuildKind::all() {
        let sp = run_build::<f32>(&args, build);
        let dp = run_build::<f64>(&args, build);
        totals_dp.push(dp.total);
        table.row(&[
            build.label().to_string(),
            fmt_s(sp.electron),
            fmt_s(dp.electron),
            fmt_s(sp.nonlocal),
            fmt_s(dp.nonlocal),
            fmt_s(sp.transfer),
            fmt_s(dp.transfer),
            fmt_s(sp.total),
            fmt_s(dp.total),
            if sp.modeled { "modeled" } else { "measured" }.to_string(),
        ]);
    }
    println!("{}", table.render());
    args.finish_obs();

    println!("paper Table II totals for the full-size workload (seconds):");
    let mut ptable = Table::new(&["Build", "SP", "DP"]);
    for (name, sp, dp) in paper::TABLE2_TOTAL {
        ptable.row(&[name.to_string(), fmt_s(sp), fmt_s(dp)]);
    }
    println!("{}", ptable.render());

    // Shape checks the paper highlights.
    let ladder_monotone = totals_dp.windows(2).all(|w| w[1] < w[0]);
    println!("ladder strictly improves at every stage: {ladder_monotone}");
    println!(
        "cuBLAS-build SP gain over DP: measured shape should echo the paper's ~30-40% reduction."
    );
}
