//! Criterion microbenchmarks of the paper's hot kernels:
//! the `kin_prop()` optimization ladder (Table I), the nonlocal correction
//! in loop vs BLAS form (Table II / §III-D), and `pot_prop()`.
//!
//! These complement the table/figure binaries with statistically rigorous
//! per-kernel timings on a fixed sub-scale workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcmesh_grid::{Mesh3, WfAos};
use dcmesh_lfd::kinetic::{Axis, KineticPropagator, StepFraction};
use dcmesh_lfd::nonlocal::{GemmPath, NonlocalCorrection};
use dcmesh_lfd::PotentialPropagator;

fn bench_mesh() -> Mesh3 {
    Mesh3::new(24, 24, 24, 0.42, 0.42, 0.42)
}

const NORB: usize = 16;

fn bench_kin_prop(c: &mut Criterion) {
    let mesh = bench_mesh();
    let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);
    let mut init = WfAos::<f64>::zeros(mesh.clone(), NORB);
    init.randomize(1);
    let mut group = c.benchmark_group("kin_prop_x_direction");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("alg1_aos_baseline", NORB), |b| {
        let mut psi = init.clone();
        b.iter(|| prop.apply_axis_alg1(&mut psi, Axis::X, StepFraction::Full));
    });
    group.bench_function(BenchmarkId::new("alg3_soa_interchange", NORB), |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.apply_axis_alg3(&mut psi, Axis::X, StepFraction::Full));
    });
    group.bench_function(BenchmarkId::new("alg4_blocked", NORB), |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.apply_axis_alg4(&mut psi, Axis::X, StepFraction::Full, 8));
    });
    group.bench_function(BenchmarkId::new("alg5_teams", NORB), |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.apply_axis_alg5(&mut psi, Axis::X, StepFraction::Full, 8, None));
    });
    group.finish();
}

fn bench_nonlocal(c: &mut Criterion) {
    let mesh = bench_mesh();
    let mut psi0 = WfAos::<f64>::zeros(mesh.clone(), NORB);
    psi0.randomize(2);
    let nl = NonlocalCorrection::new(psi0.to_matrix(), NORB * 3 / 4, 0.08, 0.04, mesh.dv());
    let mut group = c.benchmark_group("nonlocal_correction");
    group.sample_size(20);

    group.bench_function("nlp_prop_loops", |b| {
        let mut state = psi0.to_matrix();
        b.iter(|| nl.nlp_prop(&mut state, GemmPath::Loops));
    });
    group.bench_function("nlp_prop_blas", |b| {
        let mut state = psi0.to_matrix();
        b.iter(|| nl.nlp_prop(&mut state, GemmPath::Blas));
    });
    group.bench_function("nlp_prop_soa_zero_copy", |b| {
        let mut state = psi0.to_soa();
        b.iter(|| nl.nlp_prop_soa(&mut state));
    });
    group.bench_function("remap_occ_blas", |b| {
        let state = psi0.to_soa();
        let occ = vec![2.0; NORB];
        b.iter(|| nl.remap_occ_soa(&state, &occ));
    });
    group.finish();
}

fn bench_pot_prop(c: &mut Criterion) {
    let mesh = bench_mesh();
    let v: Vec<f64> = (0..mesh.len()).map(|i| (i as f64 * 0.01).sin()).collect();
    let prop = PotentialPropagator::new(mesh.clone(), &v, 0.02);
    let mut init = WfAos::<f64>::zeros(mesh.clone(), NORB);
    init.randomize(3);
    let mut psi = init.to_soa();
    c.bench_function("pot_prop", |b| {
        b.iter(|| prop.apply(&mut psi, None));
    });
}

fn bench_obs_overhead(c: &mut Criterion) {
    // The acceptance bar for the observability layer: with the collector
    // disabled (the default), the instrumented kinetic stencil must sit
    // within noise of the uninstrumented seed — the only added work on the
    // disabled path is one relaxed atomic load per launch/span.
    let mesh = bench_mesh();
    let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);
    let mut init = WfAos::<f64>::zeros(mesh.clone(), NORB);
    init.randomize(4);
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);

    dcmesh_obs::reset();
    group.bench_function("kin_stencil_collector_disabled", |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.apply_axis_alg5(&mut psi, Axis::X, StepFraction::Full, 8, None));
    });
    group.bench_function("span_guard_disabled", |b| {
        b.iter(|| {
            let _s = dcmesh_obs::span!("bench.noop");
        });
    });
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    // The acceptance bar for the persistent executor: dispatching an empty
    // 64-team grid must be >= 10x cheaper than the spawn-per-call strategy
    // it replaced. Fixed at 4 threads so the comparison is meaningful on
    // any host (the old strategy spawns 4 threads per call; the pool parks
    // 3 workers on a condvar and reuses them).
    let teams = 64usize;
    let threads = 4usize;
    let mut data = vec![0u8; teams];
    let pool = dcmesh_pool::ThreadPool::new(threads);
    let mut group = c.benchmark_group("pool_overhead");
    group.sample_size(20);

    group.bench_function("spawn_per_call_empty_64_teams", |b| {
        b.iter(|| {
            dcmesh_bench::spawn_per_call_distribute_mut(&mut data, teams, threads, |_, _| {});
        });
    });
    group.bench_function("persistent_pool_empty_64_teams", |b| {
        b.iter(|| pool.for_each_chunk_mut(&mut data, teams, |_, _| {}));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kin_prop,
    bench_nonlocal,
    bench_pot_prop,
    bench_obs_overhead,
    bench_pool_overhead
);
criterion_main!(benches);
