//! Criterion microbenchmarks of the substrate layers: the from-scratch
//! complex GEMM (BLASification backend), the multigrid Hartree solver
//! (global O(N) solver), FFTs, the simulated-MPI collectives, and the
//! classical force field.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcmesh_comm::{NetworkModel, World};
use dcmesh_math::fft::{fft, Direction};
use dcmesh_math::gemm::{gemm, gemm_blocked, gemm_naive, Op};
use dcmesh_math::multigrid::{MgParams, Multigrid};
use dcmesh_math::{Complex, Matrix};
use dcmesh_qxmd::forcefield::{PerovskiteFF, SimBox};
use dcmesh_qxmd::md::ForceProvider;
use dcmesh_qxmd::pbtio3::{PbTiO3Cell, Supercell};

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Matrix<f64> {
    let mut x = seed;
    Matrix::from_fn(rows, cols, |_, _| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let i = (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        Complex::new(r, i)
    })
}

fn bench_gemm(c: &mut Criterion) {
    let n = 96;
    let a = random_matrix(1, n, n);
    let b = random_matrix(2, n, n);
    let mut group = c.benchmark_group("complex_gemm_96");
    group.sample_size(20);
    group.bench_function("naive", |bch| {
        let mut out = Matrix::zeros(n, n);
        bch.iter(|| {
            gemm_naive(
                Complex::one(),
                &a,
                Op::None,
                &b,
                Op::None,
                Complex::zero(),
                &mut out,
            )
        });
    });
    group.bench_function("blocked", |bch| {
        let mut out = Matrix::zeros(n, n);
        bch.iter(|| {
            gemm_blocked(
                Complex::one(),
                &a,
                Op::None,
                &b,
                Op::None,
                Complex::zero(),
                &mut out,
            )
        });
    });
    group.bench_function("parallel", |bch| {
        let mut out = Matrix::zeros(n, n);
        bch.iter(|| {
            gemm(
                Complex::one(),
                &a,
                Op::None,
                &b,
                Op::None,
                Complex::zero(),
                &mut out,
            )
        });
    });
    group.finish();
}

fn bench_multigrid(c: &mut Criterion) {
    let n = 32;
    let mg = Multigrid::new(
        n,
        n,
        n,
        8.0,
        8.0,
        8.0,
        MgParams {
            max_cycles: 10,
            ..Default::default()
        },
    );
    let mut f = vec![0.0; n * n * n];
    for (i, v) in f.iter_mut().enumerate() {
        *v = ((i % 17) as f64 - 8.0) / 8.0;
    }
    let mean = f.iter().sum::<f64>() / f.len() as f64;
    for v in f.iter_mut() {
        *v -= mean;
    }
    c.bench_function("multigrid_poisson_32cubed", |b| {
        b.iter(|| mg.solve(&f));
    });
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [64usize, 70] {
        // 70 = the paper's mesh line length (Bluestein path).
        let signal: Vec<Complex<f64>> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut work = signal.clone();
                fft(&mut work, Direction::Forward);
                work
            });
        });
    }
    group.finish();
}

fn bench_comm_allreduce(c: &mut Criterion) {
    c.bench_function("simulated_mpi_allreduce_16ranks", |b| {
        b.iter(|| {
            World::run(16, NetworkModel::slingshot11(), |r| {
                let mut v = vec![r.id() as f64; 256];
                r.allreduce_sum(&mut v);
                v[0]
            })
        });
    });
}

fn bench_forcefield(c: &mut Criterion) {
    let sc = Supercell::build(&PbTiO3Cell::cubic(), [3, 3, 3]);
    let ff = PerovskiteFF::pbtio3(SimBox {
        lengths: sc.box_lengths,
    });
    c.bench_function("perovskite_ff_135_atoms", |b| {
        let mut atoms = sc.atoms.clone();
        b.iter(|| {
            atoms.clear_forces();
            ff.compute(&mut atoms)
        });
    });
}

criterion_group!(
    benches,
    bench_gemm,
    bench_multigrid,
    bench_fft,
    bench_comm_allreduce,
    bench_forcefield
);
criterion_main!(benches);
