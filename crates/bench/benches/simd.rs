//! Criterion microbenchmarks of the split-complex SIMD layer: the packed
//! AVX2 GEMM against the scalar blocked reference at the paper-relevant
//! nonlocal shape (Table II: the overlap `S = dv * Psi0^H Psi` is a tall
//! skinny `(norb, nu, ngrid)` contraction), and the kinetic stencil sweep
//! under the scalar vs AVX2 backend.
//!
//! Backend selection uses the process-global override; criterion runs the
//! benchmark functions serially, so flipping it between groups is safe.
//! The override is always cleared before a function returns.

use criterion::{criterion_group, criterion_main, Criterion};
use dcmesh_grid::{Mesh3, WfAos};
use dcmesh_lfd::kinetic::{Axis, KineticPropagator, StepFraction};
use dcmesh_math::gemm::{gemm_blocked, gemm_with_backend, Matrix, Op};
use dcmesh_math::simd::{self, Backend};
use dcmesh_math::C64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Table II nonlocal shape, mesh scaled 1/10 so one rep stays in the ms
/// range: full norb and nu, contraction depth `k` = grid points.
const M: usize = 64;
const N: usize = 16;
const K: usize = 35280;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn bench_simd_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let a = random_matrix(&mut rng, M, K);
    let b = random_matrix(&mut rng, K, N);
    let alpha = C64::new(0.7, -0.1);

    let mut group = c.benchmark_group("simd_gemm");
    group.sample_size(20);

    group.bench_function("scalar_blocked_m64_n16_k35280", |bch| {
        let mut cm = Matrix::zeros(M, N);
        bch.iter(|| gemm_blocked(alpha, &a, Op::None, &b, Op::None, C64::zero(), &mut cm));
    });
    group.bench_function("scalar_panels_m64_n16_k35280", |bch| {
        let mut cm = Matrix::zeros(M, N);
        bch.iter(|| {
            gemm_with_backend(
                Backend::Scalar,
                alpha,
                &a,
                Op::None,
                &b,
                Op::None,
                C64::zero(),
                &mut cm,
            );
        });
    });
    group.bench_function("avx2_packed_default_tiles", |bch| {
        let mut cm = Matrix::zeros(M, N);
        bch.iter(|| {
            gemm_with_backend(
                Backend::Avx2,
                alpha,
                &a,
                Op::None,
                &b,
                Op::None,
                C64::zero(),
                &mut cm,
            );
        });
    });
    // Autotuned: search (or warm-load) tiles for this shape class, install
    // them into the registry, and run the same packed kernel.
    let tiles = dcmesh_tune::gemm_tiles(M, N, K);
    let tuned_id = format!(
        "avx2_packed_tuned_mc{}_kc{}_nc{}",
        tiles.mc, tiles.kc, tiles.nc
    );
    group.bench_function(tuned_id.as_str(), |bch| {
        let mut cm = Matrix::zeros(M, N);
        bch.iter(|| {
            gemm_with_backend(
                Backend::Avx2,
                alpha,
                &a,
                Op::None,
                &b,
                Op::None,
                C64::zero(),
                &mut cm,
            );
        });
    });
    group.finish();
}

fn bench_simd_stencil(c: &mut Criterion) {
    let mesh = Mesh3::new(24, 24, 24, 0.42, 0.42, 0.42);
    let norb = 16;
    let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);
    let mut init = WfAos::<f64>::zeros(mesh.clone(), norb);
    init.randomize(5);

    let mut group = c.benchmark_group("simd_stencil");
    group.sample_size(20);

    simd::set_backend(Backend::Scalar);
    group.bench_function("sweep_x_scalar_norb16", |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.apply_axis_alg5(&mut psi, Axis::X, StepFraction::Full, 8, None));
    });
    simd::set_backend(Backend::Avx2);
    group.bench_function("sweep_x_avx2_norb16", |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.apply_axis_alg5(&mut psi, Axis::X, StepFraction::Full, 8, None));
    });
    // Full Strang step (all three axes), both backends — the Table I shape
    // of work one QD step performs.
    simd::set_backend(Backend::Scalar);
    group.bench_function("strang_step_scalar_norb16", |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.step_optimized(&mut psi, 8, None));
    });
    simd::set_backend(Backend::Avx2);
    group.bench_function("strang_step_avx2_norb16", |b| {
        let mut psi = init.to_soa();
        b.iter(|| prop.step_optimized(&mut psi, 8, None));
    });
    simd::clear_backend_override();
    group.finish();
}

criterion_group!(benches, bench_simd_gemm, bench_simd_stencil);
criterion_main!(benches);
