//! Auxiliary damped wave equation for the scalar potential `phi_alpha`.
//!
//! Paper Eq. (2) footnote: "We solve Maxwell's equation for A and an
//! auxiliary partial differential equation [27, 28] for phi". Following the
//! Car–Parrinello-style dynamics of those references, the scalar potential
//! is evolved with a damped wave equation whose fixed point is the Poisson
//! equation:
//!
//! ```text
//! d2phi/dt2 = cs^2 (lap phi + 4 pi rho) - gamma dphi/dt
//! ```
//!
//! This keeps the potential update local (a stencil per step — GPU
//! friendly) instead of requiring a global solve inside the QD loop, which
//! is exactly why the paper's LFD kernel stays data-parallel.

use dcmesh_grid::Mesh3;

/// Damped-wave scalar-potential integrator on a domain mesh (periodic).
#[derive(Clone, Debug)]
pub struct ScalarPotential {
    mesh: Mesh3,
    phi: Vec<f64>,
    phi_prev: Vec<f64>,
    /// Wave speed (a.u.); sets how fast phi relaxes to the Poisson solution.
    pub cs: f64,
    /// Damping rate (a.u.).
    pub gamma: f64,
    /// Time step (a.u.).
    pub dt: f64,
}

impl ScalarPotential {
    /// Create a quiescent potential. Stability requires
    /// `cs * dt < min(dx,dy,dz) / sqrt(3)`.
    pub fn new(mesh: Mesh3, cs: f64, gamma: f64, dt: f64) -> Self {
        let hmin = mesh.dx.min(mesh.dy).min(mesh.dz);
        assert!(
            cs * dt < hmin / 3f64.sqrt(),
            "scalar-potential CFL violated: cs dt = {} vs {}",
            cs * dt,
            hmin / 3f64.sqrt()
        );
        let n = mesh.len();
        Self {
            mesh,
            phi: vec![0.0; n],
            phi_prev: vec![0.0; n],
            cs,
            gamma,
            dt,
        }
    }

    /// Current potential field.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// One damped leapfrog step driven by the charge density `rho`
    /// (mean-removed internally for periodic compatibility).
    pub fn step(&mut self, rho: &[f64]) {
        let m = &self.mesh;
        assert_eq!(rho.len(), m.len());
        let rho_mean = rho.iter().sum::<f64>() / rho.len() as f64;
        let (dt, cs2) = (self.dt, self.cs * self.cs);
        let damp = self.gamma * dt * 0.5;
        let cx = cs2 * dt * dt / (m.dx * m.dx);
        let cy = cs2 * dt * dt / (m.dy * m.dy);
        let cz = cs2 * dt * dt / (m.dz * m.dz);
        let mut next = vec![0.0; m.len()];
        let wrap = |p: isize, n: usize| -> usize {
            let n = n as isize;
            (((p % n) + n) % n) as usize
        };
        for i in 0..m.nx {
            let im = wrap(i as isize - 1, m.nx);
            let ip = wrap(i as isize + 1, m.nx);
            for j in 0..m.ny {
                let jm = wrap(j as isize - 1, m.ny);
                let jp = wrap(j as isize + 1, m.ny);
                for k in 0..m.nz {
                    let km = wrap(k as isize - 1, m.nz);
                    let kp = wrap(k as isize + 1, m.nz);
                    let c = m.idx(i, j, k);
                    let lap = cx
                        * (self.phi[m.idx(im, j, k)] + self.phi[m.idx(ip, j, k)]
                            - 2.0 * self.phi[c])
                        + cy * (self.phi[m.idx(i, jm, k)] + self.phi[m.idx(i, jp, k)]
                            - 2.0 * self.phi[c])
                        + cz * (self.phi[m.idx(i, j, km)] + self.phi[m.idx(i, j, kp)]
                            - 2.0 * self.phi[c]);
                    let src = cs2 * dt * dt * 4.0 * std::f64::consts::PI * (rho[c] - rho_mean);
                    // Damped Verlet update.
                    next[c] = ((2.0 * self.phi[c] - (1.0 - damp) * self.phi_prev[c]) + lap + src)
                        / (1.0 + damp);
                }
            }
        }
        self.phi_prev = std::mem::take(&mut self.phi);
        self.phi = next;
    }

    /// Relax toward the static Poisson solution by stepping with a fixed
    /// density until the increment stalls; returns the number of steps.
    pub fn relax(&mut self, rho: &[f64], max_steps: usize, tol: f64) -> usize {
        for s in 0..max_steps {
            let before = self.phi.clone();
            self.step(rho);
            let delta: f64 = self
                .phi
                .iter()
                .zip(&before)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if delta < tol {
                return s + 1;
            }
        }
        max_steps
    }

    /// Residual of the Poisson equation `-lap phi - 4 pi rho` (mean-free).
    pub fn poisson_residual(&self, rho: &[f64]) -> f64 {
        let m = &self.mesh;
        let rho_mean = rho.iter().sum::<f64>() / rho.len() as f64;
        let wrap = |p: isize, n: usize| -> usize {
            let n = n as isize;
            (((p % n) + n) % n) as usize
        };
        let mut acc = 0.0;
        for i in 0..m.nx {
            for j in 0..m.ny {
                for k in 0..m.nz {
                    let c = m.idx(i, j, k);
                    let lap = (self.phi[m.idx(wrap(i as isize - 1, m.nx), j, k)]
                        + self.phi[m.idx(wrap(i as isize + 1, m.nx), j, k)]
                        - 2.0 * self.phi[c])
                        / (m.dx * m.dx)
                        + (self.phi[m.idx(i, wrap(j as isize - 1, m.ny), k)]
                            + self.phi[m.idx(i, wrap(j as isize + 1, m.ny), k)]
                            - 2.0 * self.phi[c])
                            / (m.dy * m.dy)
                        + (self.phi[m.idx(i, j, wrap(k as isize - 1, m.nz))]
                            + self.phi[m.idx(i, j, wrap(k as isize + 1, m.nz))]
                            - 2.0 * self.phi[c])
                            / (m.dz * m.dz);
                    let r = -lap - 4.0 * std::f64::consts::PI * (rho[c] - rho_mean);
                    acc += r * r;
                }
            }
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cosine_rho(mesh: &Mesh3) -> Vec<f64> {
        let l = mesh.lengths();
        let mut rho = vec![0.0; mesh.len()];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            rho[mesh.idx(i, j, k)] = (2.0 * std::f64::consts::PI * p[0] / l[0]).cos();
        }
        rho
    }

    #[test]
    fn relaxes_to_poisson_solution() {
        let mesh = Mesh3::cubic(12, 0.5);
        let rho = cosine_rho(&mesh);
        let mut sp = ScalarPotential::new(mesh.clone(), 0.5, 1.2, 0.4);
        let r0 = sp.poisson_residual(&rho);
        sp.relax(&rho, 4000, 1e-10);
        let r1 = sp.poisson_residual(&rho);
        assert!(r1 < r0 * 1e-3, "residual {r0} -> {r1}");
    }

    #[test]
    fn matches_multigrid_fixed_point() {
        let mesh = Mesh3::cubic(8, 0.5);
        let rho = cosine_rho(&mesh);
        let mut sp = ScalarPotential::new(mesh.clone(), 0.4, 1.0, 0.4);
        sp.relax(&rho, 6000, 1e-12);
        let l = mesh.lengths();
        let mg = dcmesh_math::multigrid::Multigrid::new(
            mesh.nx,
            mesh.ny,
            mesh.nz,
            l[0],
            l[1],
            l[2],
            dcmesh_math::multigrid::MgParams::default(),
        );
        let f: Vec<f64> = rho
            .iter()
            .map(|&r| 4.0 * std::f64::consts::PI * r)
            .collect();
        let want = mg.solve(&f).phi;
        // Compare mean-free fields.
        let mean_sp = sp.phi().iter().sum::<f64>() / sp.phi().len() as f64;
        let mut max_diff = 0.0f64;
        let mut max_ref = 0.0f64;
        for (a, b) in sp.phi().iter().zip(&want) {
            max_diff = max_diff.max(((a - mean_sp) - b).abs());
            max_ref = max_ref.max(b.abs());
        }
        assert!(max_diff / max_ref < 0.02, "rel diff {}", max_diff / max_ref);
    }

    #[test]
    fn zero_density_stays_quiescent() {
        let mesh = Mesh3::cubic(6, 0.5);
        let mut sp = ScalarPotential::new(mesh.clone(), 0.5, 1.0, 0.3);
        let rho = vec![0.0; mesh.len()];
        for _ in 0..20 {
            sp.step(&rho);
        }
        assert!(sp.phi().iter().all(|&p| p.abs() < 1e-15));
    }

    #[test]
    fn uniform_density_is_compatibility_null() {
        // A uniform rho has no mean-free part: phi must stay zero.
        let mesh = Mesh3::cubic(6, 0.5);
        let mut sp = ScalarPotential::new(mesh.clone(), 0.5, 1.0, 0.3);
        let rho = vec![3.7; mesh.len()];
        for _ in 0..20 {
            sp.step(&rho);
        }
        assert!(sp.phi().iter().all(|&p| p.abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn cfl_violation_panics() {
        ScalarPotential::new(Mesh3::cubic(6, 0.2), 2.0, 1.0, 1.0);
    }
}
