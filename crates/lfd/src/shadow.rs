//! Shadow dynamics: device-resident wavefunctions, occupation-only handshake.
//!
//! Paper §II: "we adopt a shadow dynamics approach, in which a GPU-resident
//! proxy is solved to effectively describe the action of LFD on QXMD. In
//! this way, LFD-QXMD handshaking is reduced to minimal, i.e., electronic
//! occupation numbers, which are negligible compared to the large memory
//! footprint of many KS wave functions."
//!
//! [`ShadowState`] enforces that contract: the two wavefunction matrices
//! `Psi(t)` and `Psi(0)` are registered device-resident for the state's
//! whole lifetime (RAII, like `OMPallocator`), and the only host<->device
//! traffic it exposes is the occupation vector.

use dcmesh_device::{Device, StreamId, TransferKind};
use dcmesh_math::Real;

/// Device residency + handshake accounting for one DC domain's LFD state.
#[derive(Debug)]
pub struct ShadowState<R> {
    device: Device,
    /// Bytes of Psi(t) + Psi(0) kept device-resident.
    psi_bytes: u64,
    /// Host-side occupation numbers (the only handshake payload).
    pub occupations: Vec<R>,
    transfer_kind: TransferKind,
    handshakes: u64,
}

impl<R: Real> ShadowState<R> {
    /// Register `Psi(t)` and `Psi(0)` (`ngrid x norb` complex each) as
    /// device-resident and initialize occupations.
    pub fn new(device: &Device, ngrid: usize, norb: usize, occupations: Vec<R>) -> Self {
        assert_eq!(occupations.len(), norb);
        let csize = 2 * std::mem::size_of::<R>() as u64;
        let psi_bytes = 2 * (ngrid * norb) as u64 * csize;
        device.enter_data(psi_bytes);
        Self {
            device: device.clone(),
            psi_bytes,
            occupations,
            transfer_kind: TransferKind::Pageable,
            handshakes: 0,
        }
    }

    /// Use pinned host memory for the handshake transfers.
    pub fn pinned(mut self) -> Self {
        self.transfer_kind = TransferKind::Pinned;
        self
    }

    /// Bytes of one handshake payload (the occupation vector).
    pub fn handshake_bytes(&self) -> u64 {
        (self.occupations.len() * std::mem::size_of::<R>()) as u64
    }

    /// Ratio of resident wavefunction bytes to one handshake payload —
    /// the data-transfer saving shadow dynamics buys.
    pub fn residency_ratio(&self) -> f64 {
        self.psi_bytes as f64 / self.handshake_bytes().max(1) as f64
    }

    /// Push occupations host -> device (QXMD -> LFD direction).
    pub fn upload_occupations(&mut self) {
        self.device
            .transfer_h2d(StreamId(0), self.handshake_bytes(), self.transfer_kind);
        self.handshakes += 1;
    }

    /// Pull occupations device -> host (LFD -> QXMD direction), applying
    /// the new values produced by `remap_occ`.
    pub fn download_occupations(&mut self, new_occ: &[R]) {
        assert_eq!(new_occ.len(), self.occupations.len());
        self.device
            .transfer_d2h(StreamId(0), self.handshake_bytes(), self.transfer_kind);
        self.occupations.copy_from_slice(new_occ);
        self.handshakes += 1;
    }

    /// Number of handshakes performed.
    pub fn handshakes(&self) -> u64 {
        self.handshakes
    }

    /// The device this state lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl<R> Drop for ShadowState<R> {
    fn drop(&mut self) {
        self.device.exit_data(self.psi_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_registered_for_lifetime() {
        let dev = Device::a100();
        {
            let s: ShadowState<f64> = ShadowState::new(&dev, 1000, 8, vec![2.0; 8]);
            assert_eq!(dev.stats().resident_bytes, 2 * 1000 * 8 * 16);
            let _ = s;
        }
        assert_eq!(dev.stats().resident_bytes, 0);
    }

    #[test]
    fn handshake_is_tiny_compared_to_wavefunctions() {
        let dev = Device::a100();
        // The paper's production domain: 70x70x72 mesh, 288 orbitals.
        let ngrid = 70 * 70 * 72;
        let s: ShadowState<f64> = ShadowState::new(&dev, ngrid, 288, vec![2.0; 288]);
        // Psi arrays are > 1M times larger than the occupation payload.
        assert!(s.residency_ratio() > 1.0e6, "ratio {}", s.residency_ratio());
    }

    #[test]
    fn handshakes_move_only_occupation_bytes() {
        let dev = Device::a100();
        let mut s: ShadowState<f64> = ShadowState::new(&dev, 10000, 16, vec![2.0; 16]);
        s.upload_occupations();
        s.download_occupations(&[1.5; 16]);
        let stats = dev.stats();
        assert_eq!(stats.h2d_bytes, 16 * 8);
        assert_eq!(stats.d2h_bytes, 16 * 8);
        assert_eq!(s.handshakes(), 2);
        assert!(s.occupations.iter().all(|&f| f == 1.5));
    }

    #[test]
    fn pinned_handshake_does_not_block_host() {
        let dev = Device::a100();
        let mut s: ShadowState<f64> = ShadowState::new(&dev, 10000, 16, vec![2.0; 16]).pinned();
        s.upload_occupations();
        assert_eq!(dev.host_clock(), 0.0);
    }
}
