//! `pot_prop()` — the point-local phase propagator `exp(-i dt v_loc(r, t))`.
//!
//! In the shadow-dynamics refactoring (paper Eq. (5)) the local Hamiltonian
//! `h_loc` collects the local pseudopotential, Hartree, local XC and the
//! light coupling; its propagator is a pure per-point phase, embarrassingly
//! parallel and perfectly suited to the device (it is part of the "electron
//! propagation" timing of Table II together with the kinetic kernel).
//!
//! Light coupling: within a DC domain the vector potential is sampled at the
//! domain center `X(alpha)` (Eq. (2)); we apply the corresponding
//! length-gauge dipole term `E(t) . (r - r_c)` with `E = -(1/c) dA/dt`
//! (DESIGN.md substitution table).

use dcmesh_device::{teams_distribute_mut, Device, KernelWork, LaunchPolicy, Precision, StreamId};
use dcmesh_grid::{Mesh3, WfSoa};
use dcmesh_math::simd;
use dcmesh_math::{Complex, Real};

/// Precomputed per-point propagator phases for one local potential snapshot.
#[derive(Clone, Debug)]
pub struct PotentialPropagator<R> {
    mesh: Mesh3,
    /// `exp(-i dt v_loc(r))` per mesh point.
    phases: Vec<Complex<R>>,
    dt: R,
}

impl<R: Real> PotentialPropagator<R> {
    /// Build phases for a static local potential `v_loc` (Hartree units)
    /// and time step `dt`.
    pub fn new(mesh: Mesh3, v_loc: &[f64], dt: R) -> Self {
        assert_eq!(v_loc.len(), mesh.len());
        let phases = v_loc
            .iter()
            .map(|&v| Complex::cis(-dt * R::from_f64(v)))
            .collect();
        Self { mesh, phases, dt }
    }

    /// Rebuild phases adding a uniform electric field `e_field` (length
    /// gauge, dipole about the mesh center): `v(r) = v_loc(r) + E . (r-rc)`.
    pub fn with_field(mesh: Mesh3, v_loc: &[f64], e_field: [f64; 3], dt: R) -> Self {
        assert_eq!(v_loc.len(), mesh.len());
        let rc = mesh.center();
        let mut phases = Vec::with_capacity(mesh.len());
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let dip = e_field[0] * (p[0] - rc[0])
                + e_field[1] * (p[1] - rc[1])
                + e_field[2] * (p[2] - rc[2]);
            let v = v_loc[mesh.idx(i, j, k)] + dip;
            phases.push(Complex::cis(-dt * R::from_f64(v)));
        }
        Self { mesh, phases, dt }
    }

    /// The time step the phases encode.
    pub fn dt(&self) -> R {
        self.dt
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh3 {
        &self.mesh
    }

    /// Apply the phase to every orbital at every point (SoA layout), with
    /// teams parallelism over x-slabs; optionally launched on `device`.
    pub fn apply(&self, psi: &mut WfSoa<R>, device: Option<(&Device, LaunchPolicy)>) {
        assert_eq!(psi.mesh().len(), self.mesh.len(), "mesh mismatch");
        let norb = psi.norb();
        let work = self.work(norb);
        let phases = &self.phases;
        let nx = self.mesh.nx;
        let data = psi.data_mut();
        let mut run = || {
            teams_distribute_mut(data, nx, |team, chunk| {
                let points_per_slab = chunk.len() / norb;
                let base_point = team * points_per_slab;
                for (pt, amps) in chunk.chunks_exact_mut(norb).enumerate() {
                    // One phase per point, broadcast over the orbital run —
                    // the vectorized split-complex scale kernel.
                    simd::scale(amps, phases[base_point + pt]);
                }
            });
        };
        match device {
            Some((dev, policy)) => {
                dev.launch_named("lfd.potential", StreamId(0), policy, work, run);
            }
            None => run(),
        }
    }

    /// Roofline work of one application.
    fn work(&self, norb: usize) -> KernelWork {
        let elems = (self.mesh.len() * norb) as u64;
        let csize = 2 * std::mem::size_of::<R>() as u64;
        let precision = if std::mem::size_of::<R>() == 4 {
            Precision::Sp
        } else {
            Precision::Dp
        };
        KernelWork {
            bytes: 2 * elems * csize + self.mesh.len() as u64 * csize,
            flops: 6 * elems,
            precision: Some(precision),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_grid::WfAos;

    fn test_soa(mesh: &Mesh3, norb: usize) -> WfSoa<f64> {
        let mut wf = WfAos::zeros(mesh.clone(), norb);
        wf.randomize(21);
        wf.to_soa()
    }

    #[test]
    fn phase_preserves_norm_exactly() {
        let mesh = Mesh3::cubic(8, 0.5);
        let v: Vec<f64> = (0..mesh.len())
            .map(|i| (i as f64 * 0.01).sin() * 3.0)
            .collect();
        let prop = PotentialPropagator::new(mesh.clone(), &v, 0.05);
        let mut wf = test_soa(&mesh, 3);
        let aos0 = wf.to_aos();
        for _ in 0..50 {
            prop.apply(&mut wf, None);
        }
        let aos = wf.to_aos();
        for n in 0..3 {
            assert!((aos.orbital_norm(n) - aos0.orbital_norm(n)).abs() < 1e-12);
        }
    }

    #[test]
    fn density_unchanged_by_local_phase() {
        // |psi|^2 is invariant under a local phase — pot_prop alone cannot
        // move charge.
        let mesh = Mesh3::cubic(6, 0.5);
        let v: Vec<f64> = (0..mesh.len()).map(|i| i as f64 * 0.02).collect();
        let prop = PotentialPropagator::new(mesh.clone(), &v, 0.1);
        let mut wf = test_soa(&mesh, 2);
        let rho0 = wf.to_aos().density(&[2.0, 2.0]);
        prop.apply(&mut wf, None);
        let rho1 = wf.to_aos().density(&[2.0, 2.0]);
        for (a, b) in rho0.iter().zip(&rho1) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn constant_potential_is_global_phase() {
        let mesh = Mesh3::cubic(5, 0.4);
        let v = vec![2.0; mesh.len()];
        let dt = 0.07;
        let prop = PotentialPropagator::new(mesh.clone(), &v, dt);
        let mut wf = test_soa(&mesh, 1);
        let before = wf.data().to_vec();
        prop.apply(&mut wf, None);
        let expect = Complex::cis(-dt * 2.0);
        for (a, b) in wf.data().iter().zip(&before) {
            assert!((*a - *b * expect).abs() < 1e-14);
        }
    }

    #[test]
    fn field_tilts_phase_linearly() {
        let mesh = Mesh3::new(9, 3, 3, 0.5, 0.5, 0.5);
        let v = vec![0.0; mesh.len()];
        let e = [0.2, 0.0, 0.0];
        let dt = 0.1;
        let prop = PotentialPropagator::with_field(mesh.clone(), &v, e, dt);
        let mut wf = WfAos::<f64>::zeros(mesh.clone(), 1);
        for z in wf.orbital_mut(0) {
            *z = Complex::one();
        }
        let mut soa = wf.to_soa();
        prop.apply(&mut soa, None);
        let out = soa.to_aos();
        // Phase difference between neighbouring x points = -dt * E_x * dx.
        let p0 = out.orbital(0)[mesh.idx(3, 1, 1)].arg();
        let p1 = out.orbital(0)[mesh.idx(4, 1, 1)].arg();
        let want = -dt * e[0] * mesh.dx;
        assert!(((p1 - p0) - want).abs() < 1e-12, "{} vs {want}", p1 - p0);
    }

    #[test]
    fn device_launch_counts_kernel() {
        let mesh = Mesh3::cubic(6, 0.5);
        let v = vec![1.0; mesh.len()];
        let prop = PotentialPropagator::new(mesh.clone(), &v, 0.02);
        let mut wf = test_soa(&mesh, 2);
        let dev = Device::a100();
        prop.apply(&mut wf, Some((&dev, LaunchPolicy::Sync)));
        assert_eq!(dev.stats().kernels_launched, 1);
        assert!(dev.host_clock() > 0.0);
    }
}
