//! Maxwell solver: the vector potential `A_X(alpha)(t)` driving each domain.
//!
//! The paper solves Maxwell's equations for the vector potential sampled at
//! each DC domain's position `X(alpha)` (Eq. (2)). In the multiscale scheme
//! light propagates on a much coarser grid than the electrons: we implement
//! a 1D FDTD wave equation along the propagation axis (one cell per domain
//! slab) with a soft source injecting the laser pulse, first-order Mur
//! absorbing boundaries, and a polarization-current feedback term from the
//! matter:
//!
//! ```text
//! d2A/dt2 = c^2 d2A/dx2 - 4 pi c J_p(x, t)
//! ```
//!
//! [`LaserPulse`] provides the standard sin^2-envelope pulse and the
//! length-gauge electric field `E = -(1/c) dA/dt` used by the potential
//! propagator.

use dcmesh_math::phys::SPEED_OF_LIGHT_AU;

/// A sin^2-envelope laser pulse (atomic units).
#[derive(Clone, Debug)]
pub struct LaserPulse {
    /// Peak electric field amplitude (a.u.).
    pub e0: f64,
    /// Carrier angular frequency (a.u., = photon energy in Hartree).
    pub omega: f64,
    /// Total pulse duration (a.u.).
    pub duration: f64,
}

impl LaserPulse {
    /// Pulse from peak intensity (W/cm^2), photon energy (eV), duration (fs).
    pub fn from_lab_units(intensity_w_cm2: f64, photon_ev: f64, duration_fs: f64) -> Self {
        Self {
            e0: dcmesh_math::phys::intensity_to_field_au(intensity_w_cm2),
            omega: dcmesh_math::phys::photon_ev_to_omega_au(photon_ev),
            duration: dcmesh_math::phys::femtoseconds_to_au(duration_fs),
        }
    }

    /// Envelope `sin^2(pi t / T)` inside the pulse, zero outside.
    pub fn envelope(&self, t: f64) -> f64 {
        if t <= 0.0 || t >= self.duration {
            0.0
        } else {
            (std::f64::consts::PI * t / self.duration).sin().powi(2)
        }
    }

    /// Electric field `E(t) = E0 sin^2(pi t/T) cos(w t)`.
    pub fn e_field(&self, t: f64) -> f64 {
        self.e0 * self.envelope(t) * (self.omega * t).cos()
    }

    /// Vector potential consistent with the *carrier* part of `E`:
    /// `A(t) = -(c E0 / w) sin^2(pi t/T) sin(w t)` (slowly varying envelope).
    pub fn vector_potential(&self, t: f64) -> f64 {
        -SPEED_OF_LIGHT_AU * self.e0 / self.omega * self.envelope(t) * (self.omega * t).sin()
    }

    /// Pulse fluence proxy `integral E^2 dt` (a.u.), for absorbed-energy
    /// normalizations in the application benchmarks.
    pub fn fluence(&self, steps: usize) -> f64 {
        let dt = self.duration / steps as f64;
        (0..steps)
            .map(|n| self.e_field((n as f64 + 0.5) * dt).powi(2))
            .sum::<f64>()
            * dt
    }
}

/// 1D FDTD propagation of the vector potential across the domain slabs.
#[derive(Clone, Debug)]
pub struct Maxwell1d {
    /// Cells along the propagation axis.
    n: usize,
    /// Cell size (Bohr).
    dx: f64,
    /// Time step (a.u.), must satisfy the Courant condition.
    dt: f64,
    /// Speed of light (a.u.).
    c: f64,
    a_prev: Vec<f64>,
    a: Vec<f64>,
    /// Polarization current deposited for the upcoming step.
    j: Vec<f64>,
    /// Source cell index for the injected pulse.
    source_cell: usize,
    /// Elapsed time (a.u.).
    pub time: f64,
}

impl Maxwell1d {
    /// Create a quiescent field on `n` cells of size `dx`, stepped with
    /// `dt`. Panics if the Courant condition `c dt <= dx` is violated.
    pub fn new(n: usize, dx: f64, dt: f64, source_cell: usize) -> Self {
        let c = SPEED_OF_LIGHT_AU;
        assert!(n >= 3, "need at least 3 cells");
        assert!(
            source_cell > 0 && source_cell < n - 1,
            "source must be interior (Mur boundaries overwrite edge cells)"
        );
        assert!(
            c * dt <= dx * (1.0 + 1e-12),
            "Courant violated: c dt = {} > dx = {dx}",
            c * dt
        );
        Self {
            n,
            dx,
            dt,
            c,
            a_prev: vec![0.0; n],
            a: vec![0.0; n],
            j: vec![0.0; n],
            source_cell,
            time: 0.0,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the field grid is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Deposit polarization current `j` into `cell` for the next step.
    pub fn deposit_current(&mut self, cell: usize, j: f64) {
        self.j[cell] += j;
    }

    /// Advance one FDTD step, injecting the pulse at the source cell.
    pub fn step(&mut self, pulse: &LaserPulse) {
        let (c, dt, dx) = (self.c, self.dt, self.dx);
        let c2dt2 = (c * dt / dx).powi(2);
        let mut a_next = vec![0.0; self.n];
        for (i, an) in a_next.iter_mut().enumerate().take(self.n - 1).skip(1) {
            let lap = self.a[i + 1] - 2.0 * self.a[i] + self.a[i - 1];
            *an = 2.0 * self.a[i] - self.a_prev[i] + c2dt2 * lap
                - 4.0 * std::f64::consts::PI * c * self.j[i] * dt * dt;
        }
        // Soft source: add the pulse's vector potential increment.
        let t_new = self.time + dt;
        a_next[self.source_cell] +=
            pulse.vector_potential(t_new) - pulse.vector_potential(self.time);
        // First-order Mur absorbing boundaries.
        let k = (c * dt - dx) / (c * dt + dx);
        a_next[0] = self.a[1] + k * (a_next[1] - self.a[0]);
        let n = self.n;
        a_next[n - 1] = self.a[n - 2] + k * (a_next[n - 2] - self.a[n - 1]);
        self.a_prev = std::mem::take(&mut self.a);
        self.a = a_next;
        self.j.iter_mut().for_each(|x| *x = 0.0);
        self.time = t_new;
    }

    /// Vector potential sampled at a physical position (linear
    /// interpolation, clamped to the grid).
    pub fn sample(&self, x: f64) -> f64 {
        let xf = (x / self.dx).clamp(0.0, (self.n - 1) as f64);
        let i0 = xf.floor() as usize;
        let i1 = (i0 + 1).min(self.n - 1);
        let w = xf - i0 as f64;
        self.a[i0] * (1.0 - w) + self.a[i1] * w
    }

    /// Electric field at a cell: `E = -(1/c) dA/dt` by backward difference.
    pub fn e_field_at(&self, cell: usize) -> f64 {
        -(self.a[cell] - self.a_prev[cell]) / (self.c * self.dt)
    }

    /// Field energy proxy `sum (dA/dt / c)^2 + (dA/dx)^2` (a.u., unnormalized).
    pub fn energy(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.n {
            let at = (self.a[i] - self.a_prev[i]) / (self.c * self.dt);
            e += at * at;
            if i + 1 < self.n {
                let ax = (self.a[i + 1] - self.a[i]) / self.dx;
                e += ax * ax;
            }
        }
        e * self.dx
    }

    /// Maximum stable time step for this grid.
    pub fn max_dt(dx: f64) -> f64 {
        dx / SPEED_OF_LIGHT_AU
    }

    /// Snapshot the mutable field state for a checkpoint. The static
    /// parameters (`n`, `dx`, `dt`, `source_cell`) come back from the
    /// simulation configuration on restore.
    pub fn export_state(&self) -> MaxwellState {
        MaxwellState {
            a_prev: self.a_prev.clone(),
            a: self.a.clone(),
            j: self.j.clone(),
            time: self.time,
        }
    }

    /// Restore field state captured by [`Maxwell1d::export_state`]. Panics
    /// if the snapshot's grid size does not match this solver.
    pub fn import_state(&mut self, state: MaxwellState) {
        assert_eq!(state.a.len(), self.n, "Maxwell grid size mismatch");
        assert_eq!(state.a_prev.len(), self.n, "Maxwell grid size mismatch");
        assert_eq!(state.j.len(), self.n, "Maxwell grid size mismatch");
        self.a_prev = state.a_prev;
        self.a = state.a;
        self.j = state.j;
        self.time = state.time;
    }
}

/// The mutable state of a [`Maxwell1d`], as captured by
/// [`Maxwell1d::export_state`]: the two vector-potential time levels, any
/// deposited-but-unconsumed polarization current, and the elapsed time.
#[derive(Clone, Debug, PartialEq)]
pub struct MaxwellState {
    /// Vector potential at the previous time level.
    pub a_prev: Vec<f64>,
    /// Vector potential at the current time level.
    pub a: Vec<f64>,
    /// Polarization current deposited for the upcoming step.
    pub j: Vec<f64>,
    /// Elapsed time (a.u.).
    pub time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pulse() -> LaserPulse {
        LaserPulse {
            e0: 0.01,
            omega: 0.057,
            duration: 400.0,
        } // ~800 nm, ~10 fs
    }

    #[test]
    fn envelope_bounds_and_zeroes() {
        let p = test_pulse();
        assert_eq!(p.envelope(-1.0), 0.0);
        assert_eq!(p.envelope(p.duration + 1.0), 0.0);
        assert!((p.envelope(p.duration / 2.0) - 1.0).abs() < 1e-12);
        for t in [10.0, 100.0, 399.0] {
            assert!(p.envelope(t) >= 0.0 && p.envelope(t) <= 1.0);
        }
    }

    #[test]
    fn field_peak_matches_e0() {
        let p = test_pulse();
        let mut max = 0.0f64;
        for n in 0..4000 {
            max = max.max(p.e_field(n as f64 * 0.1).abs());
        }
        assert!(max <= p.e0 * (1.0 + 1e-9));
        assert!(max > 0.9 * p.e0);
    }

    #[test]
    fn lab_unit_conversion() {
        let p = LaserPulse::from_lab_units(3.509_445e16, 27.211_386, 1.0);
        assert!((p.e0 - 1.0).abs() < 1e-6);
        assert!((p.omega - 1.0).abs() < 1e-6);
        assert!((p.duration - 41.34).abs() < 0.01);
    }

    #[test]
    fn pulse_travels_at_light_speed() {
        let dx = 10.0;
        let dt = Maxwell1d::max_dt(dx) * 0.9;
        let n = 400;
        let mut m = Maxwell1d::new(n, dx, dt, 20);
        let p = LaserPulse {
            e0: 0.01,
            omega: 1.0,
            duration: 10.0,
        };
        // Run to a time where light from the source has reached cell ~245
        // but cannot yet have reached cell 330.
        let t_run = (200 - 20) as f64 * dx / SPEED_OF_LIGHT_AU + 5.0;
        let steps = (t_run / dt) as usize;
        for _ in 0..steps {
            m.step(&p);
        }
        let arrived: f64 = (190..210).map(|i| m.a[i].abs()).fold(0.0, f64::max);
        let beyond: f64 = (330..350).map(|i| m.a[i].abs()).fold(0.0, f64::max);
        assert!(arrived > 1e-8, "wave never arrived: {arrived}");
        assert!(
            beyond < arrived * 0.01 + 1e-12,
            "wave outran light: {beyond} vs {arrived}"
        );
    }

    #[test]
    fn mur_boundaries_absorb() {
        let dx = 5.0;
        let dt = Maxwell1d::max_dt(dx); // exact Courant: Mur is perfect
        let mut m = Maxwell1d::new(100, dx, dt, 50);
        let p = LaserPulse {
            e0: 0.02,
            omega: 0.5,
            duration: 10.0,
        };
        let mut peak = 0.0f64;
        for _ in 0..2000 {
            m.step(&p);
            peak = peak.max(m.energy());
        }
        assert!(peak > 0.0);
        assert!(
            m.energy() < peak * 1e-3,
            "energy not absorbed: {} vs peak {peak}",
            m.energy()
        );
    }

    #[test]
    fn sampling_interpolates() {
        let mut m = Maxwell1d::new(10, 2.0, Maxwell1d::max_dt(2.0) * 0.5, 1);
        m.a[3] = 1.0;
        m.a[4] = 3.0;
        assert!((m.sample(6.0) - 1.0).abs() < 1e-12); // exactly cell 3
        assert!((m.sample(7.0) - 2.0).abs() < 1e-12); // halfway
        assert!((m.sample(-5.0) - m.a[0]).abs() < 1e-12); // clamped
        assert!((m.sample(1e9) - m.a[9]).abs() < 1e-12);
    }

    #[test]
    fn current_feedback_radiates() {
        let dx = 5.0;
        let dt = Maxwell1d::max_dt(dx) * 0.9;
        let mut m = Maxwell1d::new(60, dx, dt, 1);
        let silent = LaserPulse {
            e0: 0.0,
            omega: 1.0,
            duration: 1.0,
        };
        for s in 0..50 {
            // Oscillating dipole current at cell 30.
            m.deposit_current(30, 1e-3 * (0.5 * s as f64 * dt).sin());
            m.step(&silent);
        }
        assert!(m.energy() > 0.0, "current produced no field");
    }

    #[test]
    #[should_panic(expected = "Courant")]
    fn courant_violation_panics() {
        Maxwell1d::new(10, 1.0, 1.0, 1);
    }
}
