//! `kin_prop()` — split-operator kinetic propagation of the KS wavefunctions,
//! in every optimization stage the paper benchmarks (Table I).
//!
//! Physics: per Suzuki–Trotter, `exp(-i dt T)` factorizes by Cartesian axis;
//! along one axis the tridiagonal finite-difference kinetic operator is
//! split into even/odd 2x2 blocks whose exponentials are *exact* 2x2
//! unitaries (space-splitting method, paper ref. [28]). One directional
//! application is the three-pass sweep `E(dt/2) O(dt) E(dt/2)`; a full 3D
//! step is the Strang sequence `X(dt/2) Y(dt/2) Z(dt) Y(dt/2) X(dt/2)`.
//! Every pass is an in-place 3-point-stencil-shaped sweep — the loop nest
//! the paper's Algorithms 1-5 restructure.
//!
//! The optimization stages map to the paper as:
//!
//! | paper | here | what changes |
//! |---|---|---|
//! | Algorithm 1 | [`KineticPropagator::apply_axis_alg1`] | AoS layout, orbital-outermost loops, full-mesh `wrk` scratch written then copied back |
//! | Algorithm 3 | [`KineticPropagator::apply_axis_alg3`] | SoA layout, plane-outermost loops, in-place pair update (no `wrk`) |
//! | Algorithm 4 | [`KineticPropagator::apply_axis_alg4`] | + orbital cache blocking |
//! | Algorithm 5 | [`KineticPropagator::apply_axis_alg5`] | + `teams distribute` hierarchical parallelism over disjoint slabs, optional device launch with `nowait` |
//!
//! The exact-unitary pairwise update makes the in-place sweep safe without
//! the paper's `psi_old` carry buffer; eliminating that buffer is precisely
//! the memory-reuse optimization §III-A describes.

use dcmesh_device::{
    teams_distribute_mut, Device, KernelWork, LaunchPolicy, NowaitScope, Precision,
};
use dcmesh_grid::{Mesh3, WfAos, WfSoa};
use dcmesh_math::simd;
use dcmesh_math::tridiag::exp_2x2_symmetric;
use dcmesh_math::{Complex, Real};
use dcmesh_pool::SlicePtr;

/// Cartesian sweep direction `d` of the paper's `kin_prop(…, d, …)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Sweep couples neighbouring x indices.
    X,
    /// Sweep couples neighbouring y indices.
    Y,
    /// Sweep couples neighbouring z indices.
    Z,
}

/// Time-step fraction `p` of the paper's `kin_prop(…, p, …)`:
/// half steps open/close the Strang sequence.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StepFraction {
    /// `dt / 2`.
    Half,
    /// `dt`.
    Full,
}

impl StepFraction {
    fn scale<R: Real>(self) -> R {
        match self {
            StepFraction::Half => R::HALF,
            StepFraction::Full => R::ONE,
        }
    }
}

/// One even- or odd-parity pass of the split exponential.
#[derive(Copy, Clone, Debug)]
struct Pass<R> {
    /// First index of the first pair (0 = even pass, 1 = odd pass).
    start: usize,
    /// 2x2 diagonal coefficient.
    d: Complex<R>,
    /// 2x2 off-diagonal coefficient.
    o: Complex<R>,
    /// Phase applied to unpaired boundary points.
    lone: Complex<R>,
}

/// The three passes (even-half, odd-full, even-half) of one directional step.
type PassSet<R> = [Pass<R>; 3];

/// Precomputed kinetic propagator for one mesh and QD time step.
#[derive(Clone, Debug)]
pub struct KineticPropagator<R> {
    mesh: Mesh3,
    /// Electron mass (atomic units).
    pub mass: R,
    /// QD time step `Delta_QD` (atomic units).
    pub dt: R,
    /// Pass tables indexed `[axis][fraction]`.
    passes: [[PassSet<R>; 2]; 3],
}

impl<R: Real> KineticPropagator<R> {
    /// Build coefficient tables for `mesh` and time step `dt`.
    pub fn new(mesh: Mesh3, dt: R, mass: R) -> Self {
        let spacing = [mesh.dx, mesh.dy, mesh.dz];
        let mut passes = [[[Pass {
            start: 0,
            d: Complex::zero(),
            o: Complex::zero(),
            lone: Complex::zero(),
        }; 3]; 2]; 3];
        for (ax, pax) in passes.iter_mut().enumerate() {
            let h = R::from_f64(spacing[ax]);
            let diag = R::ONE / (mass * h * h);
            let off = -(diag * R::HALF);
            for (fi, frac) in [StepFraction::Half, StepFraction::Full].iter().enumerate() {
                let theta = dt * frac.scale::<R>();
                pax[fi] = build_passes(theta, diag, off);
            }
        }
        Self {
            mesh,
            mass,
            dt,
            passes,
        }
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh3 {
        &self.mesh
    }

    fn pass_set(&self, axis: Axis, frac: StepFraction) -> &PassSet<R> {
        let ai = match axis {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        };
        let fi = match frac {
            StepFraction::Half => 0,
            StepFraction::Full => 1,
        };
        &self.passes[ai][fi]
    }

    fn axis_extent(&self, axis: Axis) -> usize {
        match axis {
            Axis::X => self.mesh.nx,
            Axis::Y => self.mesh.ny,
            Axis::Z => self.mesh.nz,
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1: AoS baseline with a full-mesh scratch array.
    // ------------------------------------------------------------------

    /// Paper Algorithm 1: orbital-outermost loops over the AoS layout,
    /// with each pass computed into a whole-mesh `wrk` buffer and copied
    /// back — the baseline whose memory traffic the later stages remove.
    pub fn apply_axis_alg1(&self, psi: &mut WfAos<R>, axis: Axis, frac: StepFraction) {
        assert_eq!(psi.mesh().len(), self.mesh.len(), "mesh mismatch");
        let passes = *self.pass_set(axis, frac);
        let m = self.mesh.clone();
        let g = m.len();
        let n_axis = self.axis_extent(axis);
        let mut wrk = vec![Complex::<R>::zero(); g];
        for n in 0..psi.norb() {
            for pass in &passes {
                let orb = psi.orbital_mut(n);
                // Compute every point's new value into wrk, then copy back
                // (the paper's explicitly wasteful baseline).
                wrk.copy_from_slice(orb);
                // Head lone point for odd passes.
                if pass.start == 1 {
                    for_each_on_plane(&m, axis, |idx_of| {
                        let c = idx_of(0);
                        wrk[c] = orb[c] * pass.lone;
                    });
                }
                let mut i = pass.start;
                while i + 1 < n_axis {
                    let ii = i;
                    for_each_on_plane(&m, axis, |idx_of| {
                        let a = idx_of(ii);
                        let b = idx_of(ii + 1);
                        let u = orb[a];
                        let v = orb[b];
                        wrk[a] = pass.d * u + pass.o * v;
                        wrk[b] = pass.o * u + pass.d * v;
                    });
                    i += 2;
                }
                if i < n_axis {
                    let ii = i;
                    for_each_on_plane(&m, axis, |idx_of| {
                        let c = idx_of(ii);
                        wrk[c] = orb[c] * pass.lone;
                    });
                }
                orb.copy_from_slice(&wrk);
            }
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 3: SoA, plane-outermost, in-place.
    // ------------------------------------------------------------------

    /// Paper Algorithm 3: loop interchange so the orbital index is fastest
    /// (SoA layout), updating in place with no scratch mesh.
    pub fn apply_axis_alg3(&self, psi: &mut WfSoa<R>, axis: Axis, frac: StepFraction) {
        self.apply_axis_alg4(psi, axis, frac, psi.norb().max(1));
    }

    // ------------------------------------------------------------------
    // Algorithm 4: + orbital blocking.
    // ------------------------------------------------------------------

    /// Paper Algorithm 4: Algorithm 3 plus cache blocking over the orbital
    /// index (`block_size` orbitals at a time stay register/cache resident).
    pub fn apply_axis_alg4(
        &self,
        psi: &mut WfSoa<R>,
        axis: Axis,
        frac: StepFraction,
        block_size: usize,
    ) {
        assert_eq!(psi.mesh().len(), self.mesh.len(), "mesh mismatch");
        assert!(block_size >= 1);
        let passes = *self.pass_set(axis, frac);
        let norb = psi.norb();
        let m = self.mesh.clone();
        let n_axis = self.axis_extent(axis);
        // Offset between pair partners in the flat SoA array.
        let stride = axis_soa_stride(&m, axis, norb);
        let data = psi.data_mut();
        for pass in &passes {
            for_each_plane_base(&m, axis, norb, |base_of| {
                if pass.start == 1 {
                    let b0 = base_of(0);
                    for nb in (0..norb).step_by(block_size) {
                        let hi = (nb + block_size).min(norb);
                        simd::scale(&mut data[b0 + nb..b0 + hi], pass.lone);
                    }
                }
                let mut i = pass.start;
                while i + 1 < n_axis {
                    let a = base_of(i);
                    let b = a + stride;
                    // The partner runs never overlap (stride >= norb), so
                    // splitting at `b` yields two disjoint views for the
                    // vectorized pair rotation.
                    let (head, tail) = data.split_at_mut(b);
                    for nb in (0..norb).step_by(block_size) {
                        let hi = (nb + block_size).min(norb);
                        simd::pair_update(
                            &mut head[a + nb..a + hi],
                            &mut tail[nb..hi],
                            pass.d,
                            pass.o,
                        );
                    }
                    i += 2;
                }
                if i < n_axis {
                    let c = base_of(i);
                    simd::scale(&mut data[c..c + norb], pass.lone);
                }
            });
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 5: hierarchical teams offload.
    // ------------------------------------------------------------------

    /// Paper Algorithm 5: the blocked SoA kernel distributed over teams
    /// (disjoint slabs of the SoA array — data-race free by construction)
    /// with the inner orbital loop as the `parallel for simd` level. When a
    /// [`Device`] is supplied the pass is launched through the offload
    /// runtime: `policy = Async` reproduces `nowait`, `Sync` the ablation
    /// of Table I's last row.
    pub fn apply_axis_alg5(
        &self,
        psi: &mut WfSoa<R>,
        axis: Axis,
        frac: StepFraction,
        block_size: usize,
        device: Option<(&Device, LaunchPolicy)>,
    ) {
        assert_eq!(psi.mesh().len(), self.mesh.len(), "mesh mismatch");
        let passes = *self.pass_set(axis, frac);
        let norb = psi.norb();
        let m = self.mesh.clone();
        let work = self.pass_work(norb);
        let data = psi.data_mut();
        for (pi, pass) in passes.iter().enumerate() {
            let mut run = || match axis {
                Axis::X => sweep_x_teams(data, &m, norb, pass, block_size),
                Axis::Y => sweep_yz_teams(data, &m, norb, pass, block_size, Axis::Y),
                Axis::Z => sweep_yz_teams(data, &m, norb, pass, block_size, Axis::Z),
            };
            // All passes of one directional step are data-dependent, so
            // they share stream 0 (they serialize on the device); `nowait`
            // only removes the host-side launch gaps between them.
            let _ = pi;
            match device {
                Some((dev, policy)) => {
                    dev.launch_named("lfd.kinetic", dcmesh_device::StreamId(0), policy, work, run);
                }
                None => run(),
            }
        }
    }

    /// Paper Algorithm 5 under genuinely deferred `nowait` launches: enqueue
    /// `reps` repetitions of the directional step's three passes on stream 0
    /// of the scope's device and return immediately. The host thread runs
    /// ahead (it can issue the next launches, transfers, or field work)
    /// while the lane thread executes the sweeps — the real host/"device"
    /// overlap behind Table I's `nowait` row. Settled at scope exit or
    /// [`Device::synchronize`].
    pub fn apply_axis_alg5_nowait<'scope>(
        &'scope self,
        psi: &'scope mut WfSoa<R>,
        axis: Axis,
        frac: StepFraction,
        block_size: usize,
        reps: usize,
        scope: &'scope NowaitScope<'scope, '_>,
    ) {
        assert_eq!(psi.mesh().len(), self.mesh.len(), "mesh mismatch");
        let norb = psi.norb();
        let ptr = SlicePtr::new(psi.data_mut());
        for _ in 0..reps {
            self.enqueue_axis_passes(ptr, norb, axis, frac, block_size, scope);
        }
    }

    /// Full Strang kinetic step with every pass deferred (`nowait`) onto the
    /// scope's device — the deferred counterpart of [`Self::step_optimized`]
    /// with `LaunchPolicy::Async`. Bitwise-identical results: the passes run
    /// in the same order on the same kernels, just on the lane thread.
    pub fn step_nowait<'scope>(
        &'scope self,
        psi: &'scope mut WfSoa<R>,
        block_size: usize,
        scope: &'scope NowaitScope<'scope, '_>,
    ) {
        assert_eq!(psi.mesh().len(), self.mesh.len(), "mesh mismatch");
        let norb = psi.norb();
        let ptr = SlicePtr::new(psi.data_mut());
        let seq = [
            (Axis::X, StepFraction::Half),
            (Axis::Y, StepFraction::Half),
            (Axis::Z, StepFraction::Full),
            (Axis::Y, StepFraction::Half),
            (Axis::X, StepFraction::Half),
        ];
        for (axis, frac) in seq {
            self.enqueue_axis_passes(ptr, norb, axis, frac, block_size, scope);
        }
    }

    /// Enqueue the three passes of one directional step as deferred bodies
    /// on stream 0 of `scope`'s device.
    ///
    /// # Safety argument
    ///
    /// `ptr` aliases wavefunction storage the caller has mutably borrowed
    /// for `'scope` (see the public signatures above). Every body lands on
    /// the *same* stream lane, which runs them FIFO on a single thread, so
    /// no two bodies touch the data concurrently — and the host cannot
    /// touch it either while the `'scope` borrow is live. The scope settles
    /// all bodies before `'scope` ends, so the pointer never dangles.
    fn enqueue_axis_passes<'scope>(
        &'scope self,
        ptr: SlicePtr<Complex<R>>,
        norb: usize,
        axis: Axis,
        frac: StepFraction,
        block_size: usize,
        scope: &'scope NowaitScope<'scope, '_>,
    ) {
        let passes = self.pass_set(axis, frac);
        let work = self.pass_work(norb);
        let m = &self.mesh;
        for pass in passes {
            let pass = *pass;
            scope.launch_named(
                "lfd.kinetic",
                dcmesh_device::StreamId(0),
                LaunchPolicy::Async,
                work,
                move || {
                    // SAFETY: FIFO-serial lane execution; see above.
                    let data = unsafe { ptr.as_mut_slice() };
                    match axis {
                        Axis::X => sweep_x_teams(data, m, norb, &pass, block_size),
                        Axis::Y => sweep_yz_teams(data, m, norb, &pass, block_size, Axis::Y),
                        Axis::Z => sweep_yz_teams(data, m, norb, &pass, block_size, Axis::Z),
                    }
                },
            );
        }
    }

    /// Bytes + flops of one pass over the whole wavefunction set (feeds the
    /// device roofline model).
    fn pass_work(&self, norb: usize) -> KernelWork {
        let elems = (self.mesh.len() * norb) as u64;
        let csize = 2 * std::mem::size_of::<R>() as u64;
        let precision = if std::mem::size_of::<R>() == 4 {
            Precision::Sp
        } else {
            Precision::Dp
        };
        KernelWork {
            bytes: 2 * elems * csize, // read + write every amplitude
            flops: 16 * elems,        // 2 complex mul + 1 add per amplitude
            precision: Some(precision),
        }
    }

    // ------------------------------------------------------------------
    // Full 3D steps.
    // ------------------------------------------------------------------

    /// Full Strang kinetic step `X(dt/2) Y(dt/2) Z(dt) Y(dt/2) X(dt/2)`
    /// using the baseline Algorithm 1 kernels.
    pub fn step_alg1(&self, psi: &mut WfAos<R>) {
        self.apply_axis_alg1(psi, Axis::X, StepFraction::Half);
        self.apply_axis_alg1(psi, Axis::Y, StepFraction::Half);
        self.apply_axis_alg1(psi, Axis::Z, StepFraction::Full);
        self.apply_axis_alg1(psi, Axis::Y, StepFraction::Half);
        self.apply_axis_alg1(psi, Axis::X, StepFraction::Half);
    }

    /// Full Strang kinetic step using the optimized SoA kernels
    /// (`block_size = norb` reproduces Algorithm 3; smaller blocks
    /// Algorithm 4; `device`/`teams` Algorithm 5).
    pub fn step_optimized(
        &self,
        psi: &mut WfSoa<R>,
        block_size: usize,
        device: Option<(&Device, LaunchPolicy)>,
    ) {
        let seq = [
            (Axis::X, StepFraction::Half),
            (Axis::Y, StepFraction::Half),
            (Axis::Z, StepFraction::Full),
            (Axis::Y, StepFraction::Half),
            (Axis::X, StepFraction::Half),
        ];
        for (axis, frac) in seq {
            self.apply_axis_alg5(psi, axis, frac, block_size, device);
        }
    }
}

/// Build the `E(theta/2) O(theta) E(theta/2)` pass set for one axis step.
fn build_passes<R: Real>(theta: R, diag: R, off: R) -> PassSet<R> {
    let half_diag = diag * R::HALF;
    let make = |angle: R, start: usize| -> Pass<R> {
        let (d, o) = exp_2x2_symmetric(angle, half_diag, off);
        Pass {
            start,
            d,
            o,
            lone: Complex::cis(-angle * half_diag),
        }
    };
    [
        make(theta * R::HALF, 0),
        make(theta, 1),
        make(theta * R::HALF, 0),
    ]
}

/// SoA flat-array offset between pair partners along `axis`.
fn axis_soa_stride(m: &Mesh3, axis: Axis, norb: usize) -> usize {
    match axis {
        Axis::X => m.ny * m.nz * norb,
        Axis::Y => m.nz * norb,
        Axis::Z => norb,
    }
}

/// Iterate the two non-axis indices; the callback receives a closure
/// mapping the axis index to the mesh linear index (AoS layouts).
fn for_each_on_plane(m: &Mesh3, axis: Axis, mut body: impl FnMut(&dyn Fn(usize) -> usize)) {
    match axis {
        Axis::X => {
            for j in 0..m.ny {
                for k in 0..m.nz {
                    body(&|i| m.idx(i, j, k));
                }
            }
        }
        Axis::Y => {
            for i in 0..m.nx {
                for k in 0..m.nz {
                    body(&|j| m.idx(i, j, k));
                }
            }
        }
        Axis::Z => {
            for i in 0..m.nx {
                for j in 0..m.ny {
                    body(&|k| m.idx(i, j, k));
                }
            }
        }
    }
}

/// Iterate the two non-axis indices; the callback receives a closure mapping
/// the axis index to the SoA flat base offset (start of the orbital run).
fn for_each_plane_base(
    m: &Mesh3,
    axis: Axis,
    norb: usize,
    mut body: impl FnMut(&dyn Fn(usize) -> usize),
) {
    match axis {
        Axis::X => {
            for j in 0..m.ny {
                for k in 0..m.nz {
                    body(&|i| m.idx(i, j, k) * norb);
                }
            }
        }
        Axis::Y => {
            for i in 0..m.nx {
                for k in 0..m.nz {
                    body(&|j| m.idx(i, j, k) * norb);
                }
            }
        }
        Axis::Z => {
            for i in 0..m.nx {
                for j in 0..m.ny {
                    body(&|k| m.idx(i, j, k) * norb);
                }
            }
        }
    }
}

/// Teams sweep for the X axis: chunks are aligned *pairs of x-slabs*
/// (each slab = `ny*nz*norb` contiguous SoA elements), so every team owns
/// its pair outright.
// AUDIT: no_panic
fn sweep_x_teams<R: Real>(
    data: &mut [Complex<R>],
    m: &Mesh3,
    norb: usize,
    pass: &Pass<R>,
    block_size: usize,
) {
    let slab = m.ny * m.nz * norb;
    let nx = m.nx;
    let s = pass.start;
    // Head lone point (odd pass).
    if s == 1 {
        apply_lone(&mut data[..slab], pass.lone); // AUDIT: waiver(slab <= data.len() = nx*slab)
    }
    let paired_slabs = (nx - s) / 2 * 2;
    let body_range = s * slab..(s + paired_slabs) * slab;
    let tail_start = s + paired_slabs;
    // Disjoint pairs: one team per pair of slabs.
    let body = &mut data[body_range]; // AUDIT: waiver(range capped at nx*slab = data.len())
    let n_teams = paired_slabs / 2;
    teams_distribute_mut(body, n_teams, |_, chunk| {
        debug_assert_eq!(chunk.len(), 2 * slab);
        let (lo, hi) = chunk.split_at_mut(slab);
        for base in (0..slab).step_by(norb) {
            for nb in (0..norb).step_by(block_size) {
                let end = (nb + block_size).min(norb);
                simd::pair_update(
                    &mut lo[base + nb..base + end], // AUDIT: waiver(base + end <= slab = lo.len())
                    &mut hi[base + nb..base + end], // AUDIT: waiver(base + end <= slab = hi.len())
                    pass.d,
                    pass.o,
                );
            }
        }
    });
    // Tail lone point.
    if tail_start < nx {
        apply_lone(
            &mut data[tail_start * slab..(tail_start + 1) * slab], // AUDIT: waiver(tail_start < nx)
            pass.lone,
        );
    }
}

/// Teams sweep for the Y or Z axis: one team per x-slab; the coupled pairs
/// live entirely inside a slab.
// AUDIT: no_panic
fn sweep_yz_teams<R: Real>(
    data: &mut [Complex<R>],
    m: &Mesh3,
    norb: usize,
    pass: &Pass<R>,
    block_size: usize,
    axis: Axis,
) {
    let slab = m.ny * m.nz * norb;
    let (n_axis, stride, n_other) = match axis {
        Axis::Y => (m.ny, m.nz * norb, m.nz),
        Axis::Z => (m.nz, norb, m.ny),
        Axis::X => unreachable!("X handled by sweep_x_teams"), // AUDIT: waiver(caller dispatches X to sweep_x_teams)
    };
    teams_distribute_mut(data, m.nx, |_, chunk| {
        debug_assert_eq!(chunk.len(), slab);
        for other in 0..n_other {
            // Base of the 1D line within this slab for the fixed other index.
            let line0 = match axis {
                Axis::Y => other * norb,        // other = k
                Axis::Z => other * m.nz * norb, // other = j
                Axis::X => unreachable!(), // AUDIT: waiver(caller dispatches X to sweep_x_teams)
            };
            if pass.start == 1 {
                apply_lone(&mut chunk[line0..line0 + norb], pass.lone); // AUDIT: waiver(line0 + norb <= slab)
            }
            let mut i = pass.start;
            while i + 1 < n_axis {
                let a = line0 + i * stride;
                let b = a + stride;
                // stride >= norb, so the partner runs are disjoint.
                let (head, tail) = chunk.split_at_mut(b);
                for nb in (0..norb).step_by(block_size) {
                    let end = (nb + block_size).min(norb);
                    simd::pair_update(
                        &mut head[a + nb..a + end], // AUDIT: waiver(a + end <= b = head.len())
                        &mut tail[nb..end], // AUDIT: waiver(end <= norb <= stride <= tail.len())
                        pass.d,
                        pass.o,
                    );
                }
                i += 2;
            }
            if i < n_axis {
                let c = line0 + i * stride;
                apply_lone(&mut chunk[c..c + norb], pass.lone); // AUDIT: waiver(c + norb <= slab)
            }
        }
    });
}

// AUDIT: no_panic
#[inline(always)]
fn apply_lone<R: Real>(zs: &mut [Complex<R>], lone: Complex<R>) {
    simd::scale(zs, lone);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_math::tridiag::{kinetic_step_1d, KineticTridiag};
    use dcmesh_math::C64;

    fn test_wf(mesh: &Mesh3, norb: usize, seed: u64) -> WfAos<f64> {
        let mut wf = WfAos::zeros(mesh.clone(), norb);
        wf.randomize(seed);
        wf
    }

    fn norms(wf: &WfAos<f64>) -> Vec<f64> {
        (0..wf.norb()).map(|n| wf.orbital_norm(n)).collect()
    }

    #[test]
    fn alg1_conserves_norm() {
        let mesh = Mesh3::new(8, 6, 7, 0.5, 0.5, 0.5);
        let prop = KineticPropagator::new(mesh.clone(), 0.05, 1.0);
        let mut wf = test_wf(&mesh, 3, 1);
        let before = norms(&wf);
        for _ in 0..20 {
            prop.step_alg1(&mut wf);
        }
        for (a, b) in before.iter().zip(norms(&wf)) {
            assert!((a - b).abs() < 1e-12, "norm drift {a} -> {b}");
        }
    }

    #[test]
    fn all_algorithms_agree() {
        let mesh = Mesh3::new(9, 6, 5, 0.4, 0.5, 0.6);
        let prop = KineticPropagator::new(mesh.clone(), 0.03, 1.0);
        let wf0 = test_wf(&mesh, 4, 2);

        let mut aos = wf0.clone();
        prop.step_alg1(&mut aos);

        let mut soa3 = wf0.to_soa();
        prop.apply_axis_alg3(&mut soa3, Axis::X, StepFraction::Half);
        prop.apply_axis_alg3(&mut soa3, Axis::Y, StepFraction::Half);
        prop.apply_axis_alg3(&mut soa3, Axis::Z, StepFraction::Full);
        prop.apply_axis_alg3(&mut soa3, Axis::Y, StepFraction::Half);
        prop.apply_axis_alg3(&mut soa3, Axis::X, StepFraction::Half);
        assert!(aos.max_abs_diff(&soa3.to_aos()) < 1e-13, "alg3 != alg1");

        let mut soa4 = wf0.to_soa();
        prop.step_optimized(&mut soa4, 2, None);
        assert!(aos.max_abs_diff(&soa4.to_aos()) < 1e-13, "alg4 != alg1");

        let mut soa5 = wf0.to_soa();
        let dev = Device::a100();
        prop.step_optimized(&mut soa5, 2, Some((&dev, LaunchPolicy::Async)));
        assert!(aos.max_abs_diff(&soa5.to_aos()) < 1e-13, "alg5 != alg1");
        assert!(dev.stats().kernels_launched > 0);
    }

    #[test]
    fn agrees_with_1d_reference_along_each_axis() {
        // A mesh that is effectively 1D along the tested axis must match the
        // reference 1D split propagator from dcmesh-math.
        for axis in [Axis::X, Axis::Y, Axis::Z] {
            let (nx, ny, nz) = match axis {
                Axis::X => (16, 1, 1),
                Axis::Y => (1, 16, 1),
                Axis::Z => (1, 1, 16),
            };
            let mesh = Mesh3::new(nx, ny, nz, 0.5, 0.5, 0.5);
            let prop = KineticPropagator::new(mesh.clone(), 0.04, 1.0);
            let mut wf = test_wf(&mesh, 1, 3);
            let mut line: Vec<C64> = wf.orbital(0).to_vec();
            // One full directional step dt on the 3D code.
            let mut soa = wf.to_soa();
            prop.apply_axis_alg3(&mut soa, axis, StepFraction::Full);
            wf = soa.to_aos();
            // Reference: 1D kinetic step.
            let t = KineticTridiag::new(16, 1.0, 0.5);
            kinetic_step_1d(&mut line, 0.04, &t);
            for (i, want) in line.iter().enumerate() {
                let got = wf.orbital(0)[i];
                assert!((got - *want).abs() < 1e-13, "axis {axis:?} i={i}");
            }
        }
    }

    #[test]
    fn blocking_sizes_are_equivalent() {
        let mesh = Mesh3::new(6, 6, 6, 0.5, 0.5, 0.5);
        let prop = KineticPropagator::new(mesh.clone(), 0.02, 1.0);
        let wf0 = test_wf(&mesh, 7, 4); // norb not divisible by block
        let mut a = wf0.to_soa();
        prop.apply_axis_alg4(&mut a, Axis::Y, StepFraction::Full, 7);
        for block in [1usize, 2, 3, 4, 16] {
            let mut b = wf0.to_soa();
            prop.apply_axis_alg4(&mut b, Axis::Y, StepFraction::Full, block);
            assert!(a.max_abs_diff(&b) < 1e-15, "block {block}");
        }
    }

    #[test]
    fn odd_extent_boundary_points_keep_norm() {
        // nx = 7 (odd): both parities create lone boundary points.
        let mesh = Mesh3::new(7, 4, 4, 0.5, 0.5, 0.5);
        let prop = KineticPropagator::new(mesh.clone(), 0.05, 1.0);
        let mut wf = test_wf(&mesh, 2, 5).to_soa();
        for _ in 0..10 {
            prop.step_optimized(&mut wf, 2, None);
        }
        let aos = wf.to_aos();
        for n in 0..2 {
            assert!((aos.orbital_norm(n) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn device_async_makespan_beats_sync() {
        let mesh = Mesh3::new(16, 16, 16, 0.4, 0.4, 0.4);
        let prop = KineticPropagator::new(mesh.clone(), 0.02, 1.0);
        let wf0 = test_wf(&mesh, 8, 6);

        let dev_sync = Device::a100();
        let mut a = wf0.to_soa();
        for _ in 0..5 {
            prop.step_optimized(&mut a, 8, Some((&dev_sync, LaunchPolicy::Sync)));
        }
        let t_sync = dev_sync.synchronize();

        let dev_async = Device::a100();
        let mut b = wf0.to_soa();
        for _ in 0..5 {
            prop.step_optimized(&mut b, 8, Some((&dev_async, LaunchPolicy::Async)));
        }
        let t_async = dev_async.synchronize();
        assert!(t_async < t_sync, "async {t_async} !< sync {t_sync}");
        // Results identical regardless of policy.
        assert!(a.max_abs_diff(&b) == 0.0);
    }

    #[test]
    fn nowait_deferred_step_is_bitwise_equal_to_inline() {
        let mesh = Mesh3::new(9, 6, 5, 0.4, 0.5, 0.6);
        let prop = KineticPropagator::new(mesh.clone(), 0.03, 1.0);
        let wf0 = test_wf(&mesh, 4, 2);

        let mut aos = wf0.clone();
        prop.step_alg1(&mut aos);

        let mut inline = wf0.to_soa();
        prop.step_optimized(&mut inline, 2, None);

        // Same step, but every pass enqueued as a deferred body on the
        // device's stream-0 lane and settled at scope exit.
        let dev = Device::a100();
        let mut deferred = wf0.to_soa();
        dev.nowait_scope(|scope| prop.step_nowait(&mut deferred, 2, scope));

        assert!(inline.max_abs_diff(&deferred) == 0.0, "deferred != inline");
        assert!(
            aos.max_abs_diff(&deferred.to_aos()) < 1e-13,
            "deferred != alg1"
        );
        // 5 directional steps x 3 passes, all actually launched.
        assert_eq!(dev.stats().kernels_launched, 15);
    }

    #[test]
    fn nowait_repeated_axis_matches_inline_pipeline() {
        // The Table I pattern: many repetitions of one directional update
        // enqueued under a single borrow, host running ahead of the lane.
        let mesh = Mesh3::new(8, 6, 7, 0.5, 0.5, 0.5);
        let prop = KineticPropagator::new(mesh.clone(), 0.05, 1.0);
        let wf0 = test_wf(&mesh, 3, 7);

        let mut inline = wf0.to_soa();
        for _ in 0..10 {
            prop.apply_axis_alg5(&mut inline, Axis::Y, StepFraction::Half, 2, None);
        }

        let dev = Device::a100();
        let mut deferred = wf0.to_soa();
        dev.nowait_scope(|scope| {
            prop.apply_axis_alg5_nowait(&mut deferred, Axis::Y, StepFraction::Half, 2, 10, scope);
        });

        assert!(inline.max_abs_diff(&deferred) == 0.0, "deferred != inline");
        assert_eq!(dev.stats().kernels_launched, 30);
    }

    #[test]
    fn energy_conserved_by_free_propagation() {
        let mesh = Mesh3::new(12, 12, 12, 0.5, 0.5, 0.5);
        let prop = KineticPropagator::new(mesh.clone(), 0.02, 1.0);
        let mut wf = test_wf(&mesh, 2, 8).to_soa();
        let kinetic_energy = |w: &WfSoa<f64>| -> f64 {
            let aos = w.to_aos();
            let t = dcmesh_tddft::Hamiltonian::with_potential(mesh.clone(), vec![0.0; mesh.len()]);
            (0..2).map(|n| t.expectation(aos.orbital(n), false)).sum()
        };
        let e0 = kinetic_energy(&wf);
        for _ in 0..100 {
            prop.step_optimized(&mut wf, 2, None);
        }
        let e1 = kinetic_energy(&wf);
        assert!((e1 - e0).abs() / e0.abs() < 2e-2, "E {e0} -> {e1}");
    }

    #[test]
    fn single_precision_build_works() {
        let mesh = Mesh3::new(8, 8, 8, 0.5, 0.5, 0.5);
        let prop = KineticPropagator::new(mesh.clone(), 0.02f32, 1.0f32);
        let mut wf: WfSoa<f32> = {
            let mut aos = WfAos::<f32>::zeros(mesh.clone(), 2);
            aos.randomize(9);
            aos.to_soa()
        };
        for _ in 0..20 {
            prop.step_optimized(&mut wf, 2, None);
        }
        let aos = wf.to_aos();
        for n in 0..2 {
            assert!((aos.orbital_norm(n) - 1.0).abs() < 1e-4);
        }
    }
}
