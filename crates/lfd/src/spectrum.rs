//! Linear-response absorption spectra from real-time propagation —
//! the standard delta-kick protocol of real-time TDDFT (paper refs
//! [9, 23, 24]: Octopus and SALMON compute optical spectra exactly this
//! way, and it is the canonical validation of any RT-TDDFT propagator).
//!
//! Protocol: boost every occupied orbital with a uniform momentum kick
//! `psi -> exp(i k x) psi`, propagate field-free, record the time-dependent
//! dipole moment `mu(t)`, and Fourier transform:
//!
//! ```text
//! S(w)  ~  w * Im integral dt e^{i w t} e^{-g t} [mu(t) - mu(0)]
//! ```
//!
//! Peaks of `S(w)` sit at the excitation energies — for a harmonic well
//! exactly at the oscillator frequency, which the tests verify.

use dcmesh_grid::{Mesh3, WfAos, WfSoa};
use dcmesh_math::{Complex, C64};

use crate::kinetic::KineticPropagator;
use crate::potential::PotentialPropagator;

/// Electric-dipole moment of the electron density along `axis`, relative
/// to the mesh center: `mu = -integral rho(r) (r - r_c) dV` (electron
/// charge = -1 in atomic units).
pub fn dipole_moment(wf: &WfAos<f64>, occupations: &[f64], axis: usize) -> f64 {
    let mesh = wf.mesh().clone();
    let rho = wf.density(occupations);
    let c = mesh.center();
    let dv = mesh.dv();
    let mut mu = 0.0;
    for (i, j, k) in mesh.iter_points() {
        let p = mesh.position(i, j, k);
        mu -= rho[mesh.idx(i, j, k)] * (p[axis] - c[axis]);
    }
    mu * dv
}

/// Apply the delta kick `psi -> exp(i k x_axis) psi` to every orbital
/// (a uniform momentum boost — the impulsive limit of an E-field pulse).
pub fn delta_kick(wf: &mut WfAos<f64>, kick: f64, axis: usize) {
    let mesh = wf.mesh().clone();
    for n in 0..wf.norb() {
        let orb = wf.orbital_mut(n);
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            orb[mesh.idx(i, j, k)] *= C64::cis(kick * p[axis]);
        }
    }
}

/// Result of a spectrum run.
#[derive(Clone, Debug)]
pub struct Spectrum {
    /// Angular frequencies (Hartree).
    pub omega: Vec<f64>,
    /// Absorption strength (arbitrary units, >= 0 at true resonances).
    pub strength: Vec<f64>,
    /// The recorded dipole time series.
    pub dipole: Vec<f64>,
    /// Time step between dipole samples (a.u.).
    pub dt: f64,
}

impl Spectrum {
    /// The frequency of the strongest absorption peak.
    pub fn dominant_peak(&self) -> f64 {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, &s) in self.strength.iter().enumerate() {
            if s > best.1 {
                best = (i, s);
            }
        }
        self.omega[best.0]
    }
}

/// Fourier-transform a dipole series into an absorption spectrum with
/// exponential damping `gamma` (spectral broadening) and `nomega` bins up
/// to `omega_max`.
pub fn spectrum_from_dipole(
    dipole: &[f64],
    dt: f64,
    gamma: f64,
    omega_max: f64,
    nomega: usize,
) -> Spectrum {
    assert!(dipole.len() > 2);
    let mu0 = dipole[0];
    let mut omega = Vec::with_capacity(nomega);
    let mut strength = Vec::with_capacity(nomega);
    for iw in 0..nomega {
        let w = omega_max * (iw as f64 + 0.5) / nomega as f64;
        let mut acc = Complex::<f64>::zero();
        for (n, &mu) in dipole.iter().enumerate() {
            let t = n as f64 * dt;
            let damped = (mu - mu0) * (-gamma * t).exp();
            acc += Complex::cis(w * t).scale(damped);
        }
        omega.push(w);
        strength.push(w * acc.im.abs() * dt);
    }
    Spectrum {
        omega,
        strength,
        dipole: dipole.to_vec(),
        dt,
    }
}

/// Run the full delta-kick protocol: kick the given (ground-state) orbitals
/// along `axis`, propagate `steps` QD steps in the static `v_loc`, record
/// the dipole, and return the spectrum.
#[allow(clippy::too_many_arguments)]
pub fn delta_kick_spectrum(
    mesh: &Mesh3,
    v_loc: &[f64],
    mut orbitals: WfAos<f64>,
    occupations: &[f64],
    kick: f64,
    dt: f64,
    steps: usize,
    axis: usize,
) -> Spectrum {
    assert_eq!(v_loc.len(), mesh.len());
    delta_kick(&mut orbitals, kick, axis);
    let kin = KineticPropagator::new(mesh.clone(), dt, 1.0);
    let pot_half = PotentialPropagator::new(mesh.clone(), v_loc, dt * 0.5);
    let mut soa: WfSoa<f64> = orbitals.to_soa();
    let block = soa.norb().max(1);
    let mut dipole = Vec::with_capacity(steps + 1);
    dipole.push(dipole_moment(&soa.to_aos(), occupations, axis));
    for _ in 0..steps {
        pot_half.apply(&mut soa, None);
        kin.step_optimized(&mut soa, block, None);
        pot_half.apply(&mut soa, None);
        dipole.push(dipole_moment(&soa.to_aos(), occupations, axis));
    }
    // Resolution: gamma ~ few / T_total; omega_max covers several gaps.
    let t_total = steps as f64 * dt;
    let gamma = 4.0 / t_total;
    spectrum_from_dipole(&dipole, dt, gamma, 4.0, 400)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_tddft::{eigensolver, Hamiltonian};

    fn harmonic_setup(omega0: f64) -> (Mesh3, Vec<f64>, WfAos<f64>) {
        let mesh = Mesh3::cubic(11, 0.45);
        let c = mesh.center();
        let mut v = vec![0.0; mesh.len()];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
            v[mesh.idx(i, j, k)] = 0.5 * omega0 * omega0 * r2;
        }
        let h = Hamiltonian::with_potential(mesh.clone(), v.clone());
        let eig = eigensolver::lowest_states(&h, 1, 300, 21);
        (mesh, v, eig.orbitals)
    }

    #[test]
    fn ground_state_dipole_is_zero() {
        let (_, _, orbitals) = harmonic_setup(1.0);
        for axis in 0..3 {
            let mu = dipole_moment(&orbitals, &[2.0], axis);
            // Zero up to the iterative eigensolver's residual asymmetry.
            assert!(mu.abs() < 0.02, "axis {axis}: mu {mu}");
        }
    }

    #[test]
    fn kick_conserves_norm_and_density() {
        let (_, _, mut orbitals) = harmonic_setup(1.0);
        let rho0 = orbitals.density(&[2.0]);
        delta_kick(&mut orbitals, 0.1, 0);
        assert!((orbitals.orbital_norm(0) - 1.0).abs() < 1e-12);
        let rho1 = orbitals.density(&[2.0]);
        for (a, b) in rho0.iter().zip(&rho1) {
            assert!((a - b).abs() < 1e-12, "kick moved density instantaneously");
        }
    }

    #[test]
    fn harmonic_well_absorbs_at_its_frequency() {
        // The dipole-allowed transition of a harmonic well sits exactly at
        // omega0 (Kohn's theorem for the single-mode kick).
        let omega0 = 1.0;
        let (mesh, v, orbitals) = harmonic_setup(omega0);
        let spec = delta_kick_spectrum(&mesh, &v, orbitals, &[2.0], 0.05, 0.05, 1200, 0);
        let peak = spec.dominant_peak();
        // Finite mesh + discrete Laplacian shift the frequency slightly.
        assert!(
            (peak - omega0).abs() < 0.12,
            "spectrum peak {peak} (want ~{omega0})"
        );
    }

    #[test]
    fn dipole_oscillates_after_kick() {
        let (mesh, v, orbitals) = harmonic_setup(1.0);
        let spec = delta_kick_spectrum(&mesh, &v, orbitals, &[2.0], 0.05, 0.05, 400, 0);
        let max = spec
            .dipole
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = spec.dipole.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max > 1e-3 && min < -1e-3,
            "dipole did not oscillate: [{min}, {max}]"
        );
        // Sign changes confirm oscillation rather than drift.
        let crossings = spec.dipole.windows(2).filter(|w| w[0] * w[1] < 0.0).count();
        assert!(crossings > 4, "only {crossings} zero crossings");
    }

    #[test]
    fn spectrum_is_linear_in_small_kicks() {
        let (mesh, v, orbitals) = harmonic_setup(1.0);
        let s1 = delta_kick_spectrum(&mesh, &v, orbitals.clone(), &[2.0], 0.02, 0.05, 300, 0);
        let s2 = delta_kick_spectrum(&mesh, &v, orbitals, &[2.0], 0.04, 0.05, 300, 0);
        // Peak-to-peak dipole amplitude doubles with the kick
        // (linear-response regime; peak-to-peak cancels the small residual
        // asymmetry of the iterative ground state).
        let ptp = |d: &[f64]| {
            d.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - d.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        let ratio = ptp(&s2.dipole) / ptp(&s1.dipole);
        assert!((ratio - 2.0).abs() < 0.25, "kick-linearity ratio {ratio}");
    }
}
