//! # dcmesh-lfd
//!
//! The Local Field Dynamics (LFD) subprogram — the paper's GPU-resident
//! real-time TDDFT propagator and the subject of all of its performance
//! engineering (§II-III):
//!
//! * [`kinetic`] — the split-operator kinetic stencil `kin_prop()` in every
//!   optimization stage the paper measures: Algorithm 1 (AoS baseline),
//!   Algorithm 3 (loop interchange + SoA + in-place update), Algorithm 4
//!   (orbital cache blocking), Algorithm 5 (hierarchical teams offload with
//!   optional `nowait`).
//! * [`potential`] — the point-local phase propagator
//!   `exp(-i dt v_loc(r,t))` including the laser coupling.
//! * [`nonlocal`] — the shadow-dynamics nonlocal correction of Eqs. (7)-(9):
//!   scissor-shifted rank-Norb projection, in loop form and "BLASified"
//!   GEMM form (`nlp_prop`, `calc_energy`, `remap_occ`, §III-D).
//! * [`maxwell`] — 1D FDTD vector-potential propagation across DC domains
//!   plus the analytic laser pulse; [`scalar`] — the auxiliary damped wave
//!   equation for the scalar potential (refs [27, 28]).
//! * [`shadow`] — device-resident wavefunction state whose only host
//!   handshake is occupation numbers (§II "shadow dynamics").
//! * [`engine`] — the multiple-time-scale QD loop (N_QD steps per MD step,
//!   Eq. (4)) assembled over all build variants of Table II.

pub mod engine;
pub mod kinetic;
pub mod maxwell;
pub mod nonlocal;
pub mod potential;
pub mod scalar;
pub mod shadow;
pub mod spectrum;

pub use engine::{BuildKind, KernelTimings, LfdConfig, LfdEngine};
pub use kinetic::{Axis, KineticPropagator, StepFraction};
pub use maxwell::{LaserPulse, Maxwell1d, MaxwellState};
pub use nonlocal::NonlocalCorrection;
pub use potential::PotentialPropagator;
pub use spectrum::{delta_kick_spectrum, Spectrum};
