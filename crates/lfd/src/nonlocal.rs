//! The shadow-dynamics nonlocal correction, "BLASified" per paper §III-D.
//!
//! Shadow dynamics (Eqs. (5)-(8)) replaces the expensive nonlocal operator
//! `v_nl` inside the QD loop by a scissor-shifted projection onto the t = 0
//! unoccupied subspace:
//!
//! ```text
//! (1 - i dt/2 v_nl) |psi(t)>  ~=  |psi(t)> - i (D_sci dt / 2) sum_{u >= LUMO} |psi_u(0)><psi_u(0)|psi(t)>
//! ```
//!
//! with the scissor shift `D_sci` (Eq. (8)) computed once per MD step from
//! HOMO/LUMO eigenvalues with and without the true nonlocal potential, then
//! amortized over N_QD = 100-1000 QD steps.
//!
//! In matrix form (Eq. (9)) the correction is two GEMMs on the
//! `Ngrid x Norb` wavefunction matrix: `O = Psi_u(0)^H Psi(t)` then
//! `Psi(t) += c Psi_u(0) O`. Three LFD functions share the pattern —
//! `nlp_prop()`, `calc_energy()`, `remap_occ()` — and all three are
//! implemented here in both loop form (the pre-BLAS build of Table II) and
//! GEMM form.

use dcmesh_device::{Device, KernelWork, LaunchPolicy, Precision, StreamId};
use dcmesh_math::gemm::{gemm, gemm_cfmas, Op};
use dcmesh_math::{Complex, Matrix, Real};

/// Which implementation the nonlocal kernels use (Table II rows).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// Naive nested loops (the "CPU OpenMP Parallel" non-BLAS build).
    Loops,
    /// Blocked, parallel GEMM (the "+BLAS" / cuBLAS-modeled builds).
    Blas,
}

/// Scissor-shifted nonlocal corrector bound to a t = 0 reference basis.
#[derive(Clone, Debug)]
pub struct NonlocalCorrection<R> {
    /// Full reference wavefunction matrix `Psi(0)` (`Ngrid x Norb`).
    psi0: Matrix<R>,
    /// Transposed reference `Psi(0)^T` (`Norb x Ngrid`) — the SoA layout,
    /// so SoA-resident propagation needs no layout conversion.
    psi0_t: Matrix<R>,
    /// Unoccupied reference block `Psi_u(0)` (`Ngrid x Nu`), precomputed so
    /// the per-QD-step GEMMs borrow it instead of re-materializing (or
    /// cloning the full `Psi(0)`) on every call.
    psi0u: Matrix<R>,
    /// Transposed unoccupied block (`Nu x Ngrid`).
    psi0u_t: Matrix<R>,
    /// Index of the first unoccupied reference column (LUMO).
    lumo: usize,
    /// Scissor shift `D_sci` (Hartree), Eq. (8).
    pub delta_sci: R,
    /// QD time step.
    pub dt: R,
    /// Mesh volume element (inner-product weight).
    pub dv: R,
}

impl<R: Real> NonlocalCorrection<R> {
    /// Create from the reference wavefunctions, the LUMO index, and the
    /// scissor shift computed by the QXMD side.
    pub fn new(psi0: Matrix<R>, lumo: usize, delta_sci: R, dt: R, dv: R) -> Self {
        assert!(lumo <= psi0.cols(), "LUMO index beyond reference basis");
        let psi0_t = Matrix::from_fn(psi0.cols(), psi0.rows(), |n, g| psi0[(g, n)]);
        let nu = psi0.cols() - lumo;
        let psi0u = Matrix::from_fn(psi0.rows(), nu, |g, u| psi0[(g, lumo + u)]);
        let psi0u_t = Matrix::from_fn(nu, psi0.rows(), |u, g| psi0[(g, lumo + u)]);
        Self {
            psi0,
            psi0_t,
            psi0u,
            psi0u_t,
            lumo,
            delta_sci,
            dt,
            dv,
        }
    }

    /// Number of grid points.
    pub fn ngrid(&self) -> usize {
        self.psi0.rows()
    }

    /// Number of reference orbitals.
    pub fn norb(&self) -> usize {
        self.psi0.cols()
    }

    /// Overlap `O = Psi_ref^H Psi(t) * dv` restricted to columns
    /// `[col0, cols)` of the reference set.
    fn overlap(&self, psi_t: &Matrix<R>, col0: usize, path: GemmPath) -> Matrix<R> {
        debug_assert!(
            col0 == 0 || col0 == self.lumo,
            "only full-basis or unoccupied-block overlaps are precomputed"
        );
        let nref = self.psi0.cols() - col0;
        let n = psi_t.cols();
        let mut o = Matrix::zeros(nref, n);
        match path {
            GemmPath::Blas => {
                let refblock = if col0 == 0 { &self.psi0 } else { &self.psi0u };
                gemm(
                    Complex::from_real(self.dv),
                    refblock,
                    Op::ConjTrans,
                    psi_t,
                    Op::None,
                    Complex::zero(),
                    &mut o,
                );
            }
            GemmPath::Loops => {
                // The paper's pre-BLAS formulation applies the projector
                // point by point: the grid loop is OUTERMOST, so every
                // mesh point touches one strided element of every reference
                // orbital — the poor-locality pattern BLASification removes.
                let g = self.psi0.rows();
                for r in 0..g {
                    for t in 0..n {
                        let pt = psi_t[(r, t)];
                        for u in 0..nref {
                            o[(u, t)] += self.psi0[(r, col0 + u)].conj() * pt;
                        }
                    }
                }
                for z in o.data_mut() {
                    *z = z.scale(self.dv);
                }
            }
        }
        o
    }

    /// `nlp_prop()`: apply the normalized nonlocal half-step of Eq. (6)/(7)
    /// in place. Each column is renormalized to unit norm afterwards,
    /// realizing the `1/|| ... ||` normalization of Eq. (6).
    pub fn nlp_prop(&self, psi_t: &mut Matrix<R>, path: GemmPath) {
        assert_eq!(psi_t.rows(), self.psi0.rows());
        let c = Complex::new(R::ZERO, -(self.delta_sci * self.dt * R::HALF));
        let o = self.overlap(psi_t, self.lumo, path);
        match path {
            GemmPath::Blas => {
                gemm(
                    c,
                    &self.psi0u,
                    Op::None,
                    &o,
                    Op::None,
                    Complex::one(),
                    psi_t,
                );
            }
            GemmPath::Loops => {
                // Point-by-point accumulation (grid loop outermost), the
                // mirror image of the overlap pass above.
                let g = self.psi0.rows();
                let nu = self.psi0.cols() - self.lumo;
                for r in 0..g {
                    for t in 0..psi_t.cols() {
                        let mut acc = Complex::zero();
                        for u in 0..nu {
                            acc += self.psi0[(r, self.lumo + u)] * o[(u, t)];
                        }
                        psi_t[(r, t)] += c * acc;
                    }
                }
            }
        }
        // Renormalize columns (unitarized propagator).
        let rows = psi_t.rows();
        for t in 0..psi_t.cols() {
            let col = psi_t.col_mut(t);
            let mut n2 = R::ZERO;
            for z in col.iter() {
                n2 += z.norm_sqr();
            }
            let norm = (n2 * self.dv).sqrt();
            if norm > R::ZERO {
                let inv = R::ONE / norm;
                for z in col.iter_mut() {
                    *z = z.scale(inv);
                }
            }
        }
        debug_assert_eq!(rows, self.psi0.rows());
    }

    /// `calc_energy()`: the scissor (nonlocal) energy correction per
    /// propagated orbital, `D_sci * sum_u |<psi_u(0)|psi_n(t)>|^2`.
    pub fn scissor_energies(&self, psi_t: &Matrix<R>, path: GemmPath) -> Vec<R> {
        let o = self.overlap(psi_t, self.lumo, path);
        (0..psi_t.cols())
            .map(|t| {
                let mut s = R::ZERO;
                for u in 0..o.rows() {
                    s += o[(u, t)].norm_sqr();
                }
                s * self.delta_sci
            })
            .collect()
    }

    /// `remap_occ()`: project the propagated orbitals back on the full
    /// adiabatic reference basis and redistribute the occupations:
    /// `f_s(t) = sum_n f_n(0) |<psi_s(0)|psi_n(t)>|^2`.
    pub fn remap_occ(&self, psi_t: &Matrix<R>, occ0: &[R], path: GemmPath) -> Vec<R> {
        assert_eq!(occ0.len(), psi_t.cols());
        let o = self.overlap(psi_t, 0, path);
        let mut f = vec![R::ZERO; self.psi0.cols()];
        for (s, fs) in f.iter_mut().enumerate() {
            for (n, f0) in occ0.iter().enumerate() {
                *fs += *f0 * o[(s, n)].norm_sqr();
            }
        }
        f
    }

    /// Roofline work of one `nlp_prop` (two GEMMs + renormalization), for
    /// the device timing model.
    pub fn nlp_work(&self, ncols: usize) -> KernelWork {
        let g = self.psi0.rows() as u64;
        let nu = (self.psi0.cols() - self.lumo) as u64;
        let n = ncols as u64;
        let cfmas = gemm_cfmas(nu as usize, n as usize, g as usize) as u64
            + gemm_cfmas(g as usize, n as usize, nu as usize) as u64;
        let csize = 2 * std::mem::size_of::<R>() as u64;
        let precision = if std::mem::size_of::<R>() == 4 {
            Precision::Sp
        } else {
            Precision::Dp
        };
        KernelWork {
            bytes: csize * (2 * g * n + 2 * g * nu + 2 * nu * n),
            flops: 8 * cfmas + 8 * g * n,
            precision: Some(precision),
        }
    }

    /// Run `nlp_prop` through the device offload runtime (the GPU builds of
    /// Table II), returning nothing extra — timing lands on the device.
    pub fn nlp_prop_on_device(&self, psi_t: &mut Matrix<R>, device: &Device, policy: LaunchPolicy) {
        let work = self.nlp_work(psi_t.cols());
        device.launch_named("lfd.nonlocal", StreamId(0), policy, work, || {
            self.nlp_prop(psi_t, GemmPath::Blas);
        });
    }

    // ------------------------------------------------------------------
    // SoA-layout entry points (the optimized engine keeps Psi in the SoA
    // layout of Algorithms 3-5; the SoA flat array *is* the column-major
    // transpose T = Psi^T with rows = Norb, cols = Ngrid).
    // ------------------------------------------------------------------

    /// Overlap in transposed form: `M = T * T0^H * dv`, an `Norb_t x Nref`
    /// matrix with `M[n][u] = <psi_ref_u(0) | psi_n(t)>`. Zero-copy: `t` is
    /// the raw SoA storage viewed as a `norb x ngrid` column-major matrix.
    fn overlap_soa(&self, t: &[Complex<R>], norb: usize, full_basis: bool) -> Matrix<R> {
        let t0 = if full_basis {
            &self.psi0_t
        } else {
            &self.psi0u_t
        };
        let ngrid = self.psi0.rows();
        let mut m = Matrix::zeros(norb, t0.rows());
        let mdims = (norb, t0.rows());
        dcmesh_math::gemm::gemm_colmajor(
            Complex::from_real(self.dv),
            t,
            (norb, ngrid),
            Op::None,
            t0.data(),
            (t0.rows(), t0.cols()),
            Op::ConjTrans,
            Complex::zero(),
            m.data_mut(),
            mdims,
        );
        m
    }

    /// `nlp_prop()` on an SoA-resident wavefunction set: identical math to
    /// [`NonlocalCorrection::nlp_prop`], two GEMMs on the transposed layout,
    /// operating in place on the SoA storage (no layout conversion — this
    /// is why the SoA data structure "BLASifies" for free).
    pub fn nlp_prop_soa(&self, soa: &mut dcmesh_grid::WfSoa<R>) {
        let norb = soa.norb();
        let ngrid = self.psi0.rows();
        assert_eq!(soa.data().len(), norb * ngrid, "SoA size mismatch");
        let c = Complex::new(R::ZERO, -(self.delta_sci * self.dt * R::HALF));
        let m = self.overlap_soa(soa.data(), norb, false);
        // T += c * M * T0u, in place on the SoA storage.
        let t0u_dims = (self.psi0u_t.rows(), self.psi0u_t.cols());
        dcmesh_math::gemm::gemm_colmajor(
            c,
            m.data(),
            (m.rows(), m.cols()),
            Op::None,
            self.psi0u_t.data(),
            t0u_dims,
            Op::None,
            Complex::one(),
            soa.data_mut(),
            (norb, ngrid),
        );
        // Renormalize each orbital (= each row of T) in two streaming
        // passes: accumulate all norms point-by-point (orbital runs are
        // contiguous in SoA), then scale — never a strided sweep.
        let data = soa.data_mut();
        let mut n2 = vec![R::ZERO; norb];
        for point in data.chunks_exact(norb) {
            for (acc, z) in n2.iter_mut().zip(point) {
                *acc += z.norm_sqr();
            }
        }
        let inv: Vec<R> = n2
            .iter()
            .map(|&s| {
                let norm = (s * self.dv).sqrt();
                if norm > R::ZERO {
                    R::ONE / norm
                } else {
                    R::ZERO
                }
            })
            .collect();
        for point in data.chunks_exact_mut(norb) {
            for (z, &iv) in point.iter_mut().zip(&inv) {
                *z = z.scale(iv);
            }
        }
    }

    /// SoA variant of [`NonlocalCorrection::scissor_energies`].
    pub fn scissor_energies_soa(&self, soa: &dcmesh_grid::WfSoa<R>) -> Vec<R> {
        let norb = soa.norb();
        let m = self.overlap_soa(soa.data(), norb, false);
        (0..norb)
            .map(|n| {
                let mut s = R::ZERO;
                for u in 0..m.cols() {
                    s += m[(n, u)].norm_sqr();
                }
                s * self.delta_sci
            })
            .collect()
    }

    /// SoA variant of [`NonlocalCorrection::remap_occ`].
    pub fn remap_occ_soa(&self, soa: &dcmesh_grid::WfSoa<R>, occ0: &[R]) -> Vec<R> {
        let norb = soa.norb();
        assert_eq!(occ0.len(), norb);
        let m = self.overlap_soa(soa.data(), norb, true);
        let mut f = vec![R::ZERO; self.psi0.cols()];
        for (s, fs) in f.iter_mut().enumerate() {
            for (n, f0) in occ0.iter().enumerate() {
                *fs += *f0 * m[(n, s)].norm_sqr();
            }
        }
        f
    }

    /// Device-launched SoA `nlp_prop`.
    pub fn nlp_prop_soa_on_device(
        &self,
        soa: &mut dcmesh_grid::WfSoa<R>,
        device: &Device,
        policy: LaunchPolicy,
    ) {
        let work = self.nlp_work(soa.norb());
        device.launch_named("lfd.nonlocal", StreamId(0), policy, work, || {
            self.nlp_prop_soa(soa);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_grid::{Mesh3, WfAos};
    use dcmesh_math::C64;

    /// Orthonormal (dv-weighted) reference set on a small mesh.
    fn reference(mesh: &Mesh3, norb: usize) -> Matrix<f64> {
        let mut wf = WfAos::<f64>::zeros(mesh.clone(), norb);
        wf.randomize(31);
        wf.to_matrix()
    }

    fn setup() -> (Mesh3, NonlocalCorrection<f64>) {
        let mesh = Mesh3::cubic(6, 0.5);
        let psi0 = reference(&mesh, 6);
        let nl = NonlocalCorrection::new(psi0, 3, 0.25, 0.02, mesh.dv());
        (mesh, nl)
    }

    #[test]
    fn loops_and_blas_agree() {
        let (_, nl) = setup();
        let mut a = nl.psi0.clone();
        let mut b = nl.psi0.clone();
        nl.nlp_prop(&mut a, GemmPath::Loops);
        nl.nlp_prop(&mut b, GemmPath::Blas);
        assert!(a.max_abs_diff(&b) < 1e-12);
        let ea = nl.scissor_energies(&a, GemmPath::Loops);
        let eb = nl.scissor_energies(&b, GemmPath::Blas);
        for (x, y) in ea.iter().zip(&eb) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn occupied_references_pass_through_unchanged() {
        // Occupied reference columns are orthogonal to the unoccupied
        // projector: nlp_prop must leave them exactly invariant (up to the
        // renormalization, which is then a no-op).
        let (_, nl) = setup();
        let occ_only = Matrix::from_fn(nl.ngrid(), 3, |r, c| nl.psi0[(r, c)]);
        let mut out = occ_only.clone();
        nl.nlp_prop(&mut out, GemmPath::Blas);
        assert!(out.max_abs_diff(&occ_only) < 1e-10);
    }

    #[test]
    fn unoccupied_reference_gets_scissor_energy() {
        let (_, nl) = setup();
        // psi = psi_u(0) for u = LUMO: scissor energy = D_sci exactly.
        let lumo_col = Matrix::from_fn(nl.ngrid(), 1, |r, _| nl.psi0[(r, 3)]);
        let e = nl.scissor_energies(&lumo_col, GemmPath::Blas);
        assert!((e[0] - 0.25).abs() < 1e-10, "scissor {e:?}");
    }

    #[test]
    fn nlp_prop_preserves_unit_norms() {
        let (mesh, nl) = setup();
        let mut psi = reference(&mesh, 6); // orthonormal start
        for _ in 0..25 {
            nl.nlp_prop(&mut psi, GemmPath::Blas);
        }
        let dv = mesh.dv();
        for t in 0..psi.cols() {
            let n2: f64 = psi.col(t).iter().map(|z| z.norm_sqr()).sum::<f64>() * dv;
            assert!((n2 - 1.0).abs() < 1e-12, "col {t} norm^2 {n2}");
        }
    }

    #[test]
    fn remap_occ_conserves_total_occupation_within_span() {
        let (_, nl) = setup();
        // Propagated orbitals that live inside span(Psi0): occupations must
        // redistribute but sum exactly.
        let occ0 = vec![2.0, 2.0, 1.0, 0.0, 0.0, 0.0];
        // Mix occupied states by a unitary pair rotation 0<->3.
        let mut psi = nl.psi0.clone();
        let c = (0.6f64).cos();
        let s = (0.6f64).sin();
        for r in 0..psi.rows() {
            let a = nl.psi0[(r, 0)];
            let b = nl.psi0[(r, 3)];
            psi[(r, 0)] = a.scale(c) + b.scale(s);
            psi[(r, 3)] = a.scale(-s) + b.scale(c);
        }
        let f = nl.remap_occ(&psi, &occ0, GemmPath::Blas);
        let total: f64 = f.iter().sum();
        assert!((total - 5.0).abs() < 1e-10, "total {total}");
        // State 3 (LUMO) picked up population from the rotated state 0.
        assert!(f[3] > 0.1, "f = {f:?}");
        // Identity mapping for untouched states.
        assert!((f[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn remap_identity_when_unpropagated() {
        let (_, nl) = setup();
        let occ0 = vec![2.0, 2.0, 2.0, 0.0, 0.0, 0.0];
        let f = nl.remap_occ(&nl.psi0.clone(), &occ0, GemmPath::Loops);
        for (a, b) in f.iter().zip(&occ0) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_scissor_shift_is_identity() {
        let (mesh, nl0) = setup();
        let nl = NonlocalCorrection::new(nl0.psi0.clone(), 3, 0.0, 0.02, mesh.dv());
        let mut psi = nl.psi0.clone();
        let before = psi.clone();
        nl.nlp_prop(&mut psi, GemmPath::Blas);
        assert!(psi.max_abs_diff(&before) < 1e-12);
    }

    #[test]
    fn correction_is_antihermitian_first_order() {
        // The first-order change -i c P |psi> has <psi|dpsi> purely
        // imaginary: norm is conserved to O(c^2) even before renormalizing.
        let (mesh, nl) = setup();
        let lumo_col = Matrix::from_fn(nl.ngrid(), 1, |r, _| nl.psi0[(r, 4)]);
        let o = nl.overlap(&lumo_col, nl.lumo, GemmPath::Blas);
        let c = C64::new(0.0, -(nl.delta_sci * nl.dt * 0.5));
        // <psi | c P psi> = c * sum_u |o_u|^2: purely imaginary.
        let mut ip = C64::zero();
        for u in 0..o.rows() {
            ip += c.scale(o[(u, 0)].norm_sqr());
        }
        assert!(ip.re.abs() < 1e-14);
        assert!(ip.im.abs() > 0.0);
        let _ = mesh;
    }

    #[test]
    fn soa_path_matches_matrix_path() {
        let mesh = Mesh3::cubic(5, 0.5);
        let mut wf = WfAos::<f64>::zeros(mesh.clone(), 5);
        wf.randomize(33);
        let nl = NonlocalCorrection::new(wf.to_matrix(), 2, 0.4, 0.03, mesh.dv());
        // A propagated state distinct from the reference.
        let mut state = WfAos::<f64>::zeros(mesh.clone(), 5);
        state.randomize(34);
        let mut mat = state.to_matrix();
        let mut soa = state.to_soa();
        nl.nlp_prop(&mut mat, GemmPath::Blas);
        nl.nlp_prop_soa(&mut soa);
        let back = soa.to_aos().to_matrix();
        assert!(
            mat.max_abs_diff(&back) < 1e-11,
            "diff {}",
            mat.max_abs_diff(&back)
        );
        // Energies and occupations agree too.
        let ea = nl.scissor_energies(&mat, GemmPath::Blas);
        let eb = nl.scissor_energies_soa(&soa);
        for (a, b) in ea.iter().zip(&eb) {
            assert!((a - b).abs() < 1e-11);
        }
        let occ0 = vec![2.0, 2.0, 0.0, 0.0, 0.0];
        let fa = nl.remap_occ(&mat, &occ0, GemmPath::Blas);
        let fb = nl.remap_occ_soa(&soa, &occ0);
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a - b).abs() < 1e-11);
        }
    }

    #[test]
    fn device_path_counts_gemm_flops() {
        let (_, nl) = setup();
        let mut psi = nl.psi0.clone();
        let dev = Device::a100();
        nl.nlp_prop_on_device(&mut psi, &dev, LaunchPolicy::Sync);
        let s = dev.stats();
        assert_eq!(s.kernels_launched, 1);
        assert!(s.kernel_busy > 0.0);
    }
}
