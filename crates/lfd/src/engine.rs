//! The LFD engine: multiple-time-scale QD loop over all build variants.
//!
//! One MD step runs `N_QD` quantum-dynamics steps (paper Eq. (4), with
//! `N_QD = 100-1000` in production). Each QD step applies the Eq. (6)
//! factorization:
//!
//! ```text
//! U(dt) = Nl(dt/2) . Pot(dt/2) . Kin(dt) . Pot(dt/2) . Nl(dt/2)
//! ```
//!
//! where `Nl` is the shadow-dynamics nonlocal correction, `Pot` the local
//! phase, `Kin` the split-operator stencil. The engine instruments the two
//! kernel families the paper times in Table II — "electron propagation"
//! (kinetic + potential) and "nonlocal correction" — for every build
//! variant from plain CPU loops to the pinned-memory device build.

use std::time::Instant;

use dcmesh_device::{Device, LaunchPolicy, TransferKind};
use dcmesh_grid::{Mesh3, WfAos, WfSoa};
use dcmesh_math::Real;

use crate::kinetic::{Axis, KineticPropagator, StepFraction};
use crate::maxwell::LaserPulse;
use crate::nonlocal::{GemmPath, NonlocalCorrection};
use crate::potential::PotentialPropagator;
use crate::shadow::ShadowState;

/// The build variants of Table II (plus the Fig. 5/6 ladder).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BuildKind {
    /// "CPU OpenMP Parallel": baseline loops, no BLAS, AoS kinetic.
    CpuLoops,
    /// "CPU OpenMP Parallel + BLAS": optimized SoA kinetic + GEMM nonlocal.
    CpuBlas,
    /// "GPU OpenMP Offload + BLAS": stencils on device, nonlocal on host
    /// BLAS — the wavefunctions round-trip over PCIe every QD step.
    GpuBlas,
    /// "GPU OpenMP Offload + cuBLAS": everything device-resident.
    GpuCublas,
    /// "+ pinned memory w/ CUDA streams": asynchronous `nowait` launches
    /// and pinned transfers.
    GpuCublasPinned,
}

impl BuildKind {
    /// All variants in the order Table II lists them.
    pub fn all() -> [BuildKind; 5] {
        [
            BuildKind::CpuLoops,
            BuildKind::CpuBlas,
            BuildKind::GpuBlas,
            BuildKind::GpuCublas,
            BuildKind::GpuCublasPinned,
        ]
    }

    /// Row label matching the paper's table.
    pub fn label(self) -> &'static str {
        match self {
            BuildKind::CpuLoops => "CPU OpenMP Parallel",
            BuildKind::CpuBlas => "CPU OpenMP Parallel + BLAS",
            BuildKind::GpuBlas => "GPU OpenMP Offload + BLAS",
            BuildKind::GpuCublas => "GPU OpenMP Offload + cuBLAS",
            BuildKind::GpuCublasPinned => {
                "GPU OpenMP Offload + cuBLAS (Pinned Memory w/ Cuda Streams)"
            }
        }
    }

    /// Whether this build runs through the device offload runtime.
    pub fn uses_device(self) -> bool {
        !matches!(self, BuildKind::CpuLoops | BuildKind::CpuBlas)
    }

    /// Launch policy: only the pinned/streams build uses `nowait`.
    fn policy(self) -> LaunchPolicy {
        match self {
            BuildKind::GpuCublasPinned => LaunchPolicy::Async,
            _ => LaunchPolicy::Sync,
        }
    }
}

/// Accumulated kernel timings for one measurement window.
///
/// Since the observability refactor these numbers are a thin view over
/// the phase slices an MD step records (see [`LfdEngine::run_md_step`]):
/// `electron = kinetic + potential`, and H2D/D2H time — previously folded
/// into `nonlocal`/`total` — is now reported separately as `transfer`.
#[derive(Copy, Clone, Debug, Default)]
pub struct KernelTimings {
    /// Electron propagation (kinetic + potential), seconds.
    pub electron: f64,
    /// Nonlocal correction (nlp_prop compute only), seconds.
    pub nonlocal: f64,
    /// H2D/D2H transfer time (coefficient uploads, PCIe round-trips,
    /// pinned handshakes), seconds.
    pub transfer: f64,
    /// Makespan of the whole window, seconds.
    pub total: f64,
    /// True when the numbers come from the device roofline model rather
    /// than wall-clock measurement.
    pub modeled: bool,
}

impl KernelTimings {
    /// Derive the legacy view from recorded phase slices.
    pub fn from_recorder(rec: &dcmesh_obs::StepRecorder, total: f64, modeled: bool) -> Self {
        Self {
            electron: rec.total_seconds(PHASE_KINETIC) + rec.total_seconds(PHASE_POTENTIAL),
            nonlocal: rec.total_seconds(PHASE_NONLOCAL),
            transfer: rec.total_seconds(PHASE_TRANSFER),
            total,
            modeled,
        }
    }
}

/// Host-track phase names the engine records each QD step.
pub const PHASE_KINETIC: &str = "lfd.kinetic";
/// See [`PHASE_KINETIC`].
pub const PHASE_POTENTIAL: &str = "lfd.potential";
/// See [`PHASE_KINETIC`].
pub const PHASE_NONLOCAL: &str = "lfd.nonlocal";
/// See [`PHASE_KINETIC`].
pub const PHASE_TRANSFER: &str = "lfd.transfer";

/// LFD engine configuration.
#[derive(Clone, Debug)]
pub struct LfdConfig {
    /// Domain mesh.
    pub mesh: Mesh3,
    /// Number of KS orbitals.
    pub norb: usize,
    /// Index of the LUMO (first unoccupied orbital).
    pub lumo: usize,
    /// QD time step (a.u.).
    pub dt: f64,
    /// QD steps per MD step (`N_QD`).
    pub n_qd: usize,
    /// Orbital block size for the blocked kernels. `0` asks the runtime
    /// autotuner to pick one at engine construction (cached on disk per
    /// orbital count, ISA, and thread count — see `dcmesh-tune`).
    pub block_size: usize,
    /// Which build variant to run.
    pub build: BuildKind,
    /// Scissor shift `D_sci` (Hartree).
    pub delta_sci: f64,
    /// Optional laser pulse (length-gauge coupling along x).
    pub laser: Option<LaserPulse>,
    /// RNG seed for synthetic initial states.
    pub seed: u64,
}

impl LfdConfig {
    /// The paper's single-rank benchmark workload: 64 orbitals on a
    /// 70x70x72 mesh, 1,000 QD steps (Tables I-II). `scale` < 1 shrinks the
    /// mesh and step count proportionally for quick runs.
    pub fn paper_benchmark(build: BuildKind, scale: f64) -> Self {
        let dim = |n: usize| ((n as f64 * scale).round() as usize).max(8);
        let mesh = Mesh3::new(dim(70), dim(70), dim(72), 0.42, 0.42, 0.42);
        Self {
            mesh,
            norb: ((64.0 * scale).round() as usize).max(4),
            lumo: ((48.0 * scale).round() as usize).max(2),
            dt: 0.04,
            n_qd: ((1000.0 * scale).round() as usize).max(10),
            block_size: 32,
            build,
            delta_sci: 0.08,
            laser: None,
            seed: 2024,
        }
    }
}

/// The per-domain LFD engine.
pub struct LfdEngine<R: Real> {
    cfg: LfdConfig,
    kin: KineticPropagator<R>,
    pot_half: PotentialPropagator<R>,
    v_loc: Vec<f64>,
    nl: NonlocalCorrection<R>,
    /// State in the baseline AoS layout (CpuLoops build only).
    psi_aos: Option<WfAos<R>>,
    /// State in the optimized SoA layout (all other builds).
    psi_soa: Option<WfSoa<R>>,
    device: Option<Device>,
    shadow: Option<ShadowState<R>>,
    /// Resolved orbital block size (`cfg.block_size`, or the autotuner's
    /// pick when the config said 0).
    block_size: usize,
    /// Simulation time (a.u.).
    pub time: f64,
    /// Occupations of the adiabatic reference states.
    pub occupations: Vec<R>,
    /// MD steps run so far; drives the fault plan's NaN-injection trigger.
    md_steps: u64,
}

impl<R: Real> std::fmt::Debug for LfdEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LfdEngine")
            .field("time", &self.time)
            .finish_non_exhaustive()
    }
}

impl<R: Real> LfdEngine<R> {
    /// Build the engine with a synthetic orthonormal initial state and a
    /// local potential `v_loc` (pass zeros for free propagation).
    pub fn new(cfg: LfdConfig, v_loc: Vec<f64>) -> Self {
        assert_eq!(v_loc.len(), cfg.mesh.len());
        assert!(cfg.lumo < cfg.norb, "need at least one unoccupied orbital");
        let mut init = WfAos::<R>::zeros(cfg.mesh.clone(), cfg.norb);
        init.randomize(cfg.seed);
        Self::with_initial_state(cfg, v_loc, init)
    }

    /// Build the engine from externally prepared (QXMD ground-state)
    /// orbitals; they define both `Psi(0)` and the initial `Psi(t)`.
    pub fn with_initial_state(cfg: LfdConfig, v_loc: Vec<f64>, init: WfAos<R>) -> Self {
        assert_eq!(init.norb(), cfg.norb);
        let dt = R::from_f64(cfg.dt);
        let kin = KineticPropagator::new(cfg.mesh.clone(), dt, R::ONE);
        let pot_half = PotentialPropagator::new(cfg.mesh.clone(), &v_loc, dt * R::HALF);
        let nl = NonlocalCorrection::new(
            init.to_matrix(),
            cfg.lumo,
            R::from_f64(cfg.delta_sci),
            dt,
            R::from_f64(cfg.mesh.dv()),
        );
        let mut occupations = vec![R::ZERO; cfg.norb];
        for f in occupations.iter_mut().take(cfg.lumo) {
            *f = R::TWO;
        }
        let device = cfg.build.uses_device().then(Device::a100);
        let shadow = device.as_ref().map(|d| {
            let s = ShadowState::new(d, cfg.mesh.len(), cfg.norb, occupations.clone());
            if cfg.build == BuildKind::GpuCublasPinned {
                s.pinned()
            } else {
                s
            }
        });
        let (psi_aos, psi_soa) = match cfg.build {
            BuildKind::CpuLoops => (Some(init), None),
            _ => (None, Some(init.to_soa())),
        };
        let block_size = if cfg.block_size == 0 {
            tuned_block_size(&cfg)
        } else {
            cfg.block_size
        };
        // Publish the tile/block choices the hot kernels will consult, so
        // every telemetry RunRecord carries them and `compare` can flag
        // tile-choice drift between runs. `DCMESH_TUNE=1` additionally
        // forces a (cached) search for the nonlocal GEMM shape class.
        dcmesh_obs::metrics::gauge_set("tune.stencil.block", block_size as f64);
        let nu = (cfg.norb - cfg.lumo).max(1);
        if std::env::var("DCMESH_TUNE").as_deref() == Ok("1") {
            dcmesh_tune::gemm_tiles(cfg.norb, nu, cfg.mesh.len());
        } else {
            dcmesh_tune::report_gemm_tiles(cfg.norb, nu, cfg.mesh.len());
        }
        Self {
            cfg,
            kin,
            pot_half,
            v_loc,
            nl,
            psi_aos,
            psi_soa,
            device,
            shadow,
            block_size,
            time: 0.0,
            occupations,
            md_steps: 0,
        }
    }

    /// The orbital block size the kinetic kernels actually use
    /// (resolved from the config, or autotuned when it asked for 0).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configuration.
    pub fn config(&self) -> &LfdConfig {
        &self.cfg
    }

    /// The device (if this build uses one).
    pub fn device(&self) -> Option<&Device> {
        self.device.as_ref()
    }

    /// Current state in the AoS layout (copies from SoA if needed).
    pub fn state_aos(&self) -> WfAos<R> {
        match (&self.psi_aos, &self.psi_soa) {
            (Some(a), _) => a.clone(),
            (_, Some(s)) => s.to_aos(),
            _ => unreachable!("engine always holds a state"),
        }
    }

    /// The raw wavefunction storage in this build's *native* layout (AoS
    /// for the baseline build, SoA otherwise). Checkpointing reads and
    /// writes through this so a restored engine of the same build gets a
    /// bitwise-identical state with no layout conversion.
    pub fn state_data(&self) -> &[dcmesh_math::Complex<R>] {
        match (&self.psi_aos, &self.psi_soa) {
            (Some(a), _) => a.data(),
            (_, Some(s)) => s.data(),
            _ => unreachable!("engine always holds a state"),
        }
    }

    /// Mutable access to the native-layout wavefunction storage
    /// (see [`LfdEngine::state_data`]).
    pub fn state_data_mut(&mut self) -> &mut [dcmesh_math::Complex<R>] {
        match (&mut self.psi_aos, &mut self.psi_soa) {
            (Some(a), _) => a.data_mut(),
            (_, Some(s)) => s.data_mut(),
            _ => unreachable!("engine always holds a state"),
        }
    }

    /// MD steps this engine has run.
    pub fn md_steps(&self) -> u64 {
        self.md_steps
    }

    /// Restore the step counter from a checkpoint (pairs with
    /// [`LfdEngine::md_steps`]).
    pub fn set_md_steps(&mut self, steps: u64) {
        self.md_steps = steps;
    }

    /// True when every wavefunction component and occupation is finite —
    /// the gate the resilient runner checks before trusting a step.
    pub fn state_is_finite(&self) -> bool {
        self.state_data()
            .iter()
            .all(|z| z.re.to_f64().is_finite() && z.im.to_f64().is_finite())
            && self.occupations.iter().all(|f| f.to_f64().is_finite())
    }

    /// Run one MD step = `N_QD` QD steps; returns kernel timings for the
    /// window (wall-clock for CPU builds, modeled for device builds).
    ///
    /// Each QD step records phase slices — [`PHASE_NONLOCAL`],
    /// [`PHASE_POTENTIAL`], [`PHASE_KINETIC`], [`PHASE_TRANSFER`] — into a
    /// [`dcmesh_obs::StepRecorder`]; the returned [`KernelTimings`] is a
    /// view over those slices, and the slices are forwarded to the global
    /// trace when the collector is enabled.
    pub fn run_md_step(&mut self) -> KernelTimings {
        let _step_span = dcmesh_obs::span!("lfd.md_step");
        let n_qd = self.cfg.n_qd;
        let build = self.cfg.build;
        let policy = build.policy();
        let mut rec = dcmesh_obs::StepRecorder::new();
        let wall0 = Instant::now();
        if let Some(dev) = &self.device {
            dev.reset_clock();
        }
        // Fault plan: plant a NaN in the kernel output at the configured
        // step (one-shot — a rollback replaying this step proceeds clean).
        if dcmesh_ckpt::fault::armed() && dcmesh_ckpt::fault::consume_nan_injection(self.md_steps) {
            if let Some(z) = self.state_data_mut().first_mut() {
                *z = dcmesh_math::Complex::new(R::from_f64(f64::NAN), R::ZERO);
            }
        }

        for q in 0..n_qd {
            // Laser phase table for this QD step, if a pulse is on.
            let pulse_field = self.cfg.laser.as_ref().map(|p| {
                let t_mid = self.time + 0.5 * self.cfg.dt;
                [p.e_field(t_mid), 0.0, 0.0]
            });
            if let Some(e) = pulse_field {
                self.pot_half = PotentialPropagator::with_field(
                    self.cfg.mesh.clone(),
                    &self.v_loc,
                    e,
                    R::from_f64(self.cfg.dt) * R::HALF,
                );
            }
            // Device builds refresh the per-step propagator coefficient
            // table (the time-dependent local phases) on the device: the
            // one transfer shadow dynamics cannot amortize. Pageable for
            // the plain GPU builds, pinned for the streams build (§III-E).
            if let Some(dev) = &self.device {
                let coeff_bytes =
                    (self.cfg.mesh.len() * std::mem::size_of::<dcmesh_math::Complex<R>>()) as u64;
                let kind = if build == BuildKind::GpuCublasPinned {
                    TransferKind::Pinned
                } else {
                    TransferKind::Pageable
                };
                let x0 = self.dev_xfer();
                dev.transfer_h2d(dcmesh_device::StreamId(0), coeff_bytes, kind);
                let dur = self.dev_xfer() - x0;
                rec.record_host_seconds(PHASE_TRANSFER, dur);
                rec.tag_bytes(coeff_bytes);
            }

            // --- nonlocal half step (leading) ---
            self.timed_phase(&mut rec, PHASE_NONLOCAL, |e, p| e.apply_nonlocal(p), policy);

            // --- electron propagation: Pot(dt/2) Kin(dt) Pot(dt/2) ---
            self.apply_electron_propagation(policy, &mut rec);

            // --- nonlocal half step (trailing) ---
            self.timed_phase(&mut rec, PHASE_NONLOCAL, |e, p| e.apply_nonlocal(p), policy);

            self.time += self.cfg.dt;
            let _ = q;
        }

        // Shadow handshake: occupations only. The remap projects onto the
        // finite adiabatic reference basis; population leaking outside the
        // tracked subspace is re-scaled back in (no-ionization constraint —
        // the DC domain's electron count is fixed by QXMD).
        let _hs_span = dcmesh_obs::span!("lfd.occ_handshake");
        let total_before = self.total_occupation();
        let mut new_occ = if let Some(soa) = &self.psi_soa {
            self.nl.remap_occ_soa(soa, &self.occupations)
        } else if let Some(aos) = &self.psi_aos {
            self.nl
                .remap_occ(&aos.to_matrix(), &self.occupations, GemmPath::Loops)
        } else {
            unreachable!("engine always holds a state")
        };
        let total_after: R = new_occ.iter().copied().sum();
        if total_after > R::ZERO {
            let scale = total_before / total_after;
            for f in &mut new_occ {
                *f *= scale;
            }
        }
        if let Some(sh) = &mut self.shadow {
            sh.download_occupations(&new_occ);
        }
        self.occupations = new_occ;
        // Non-finite detection: a NaN anywhere in the state poisons the
        // occupation remap, so the cheap total-occupation check catches it
        // without an O(N) sweep of the wavefunctions.
        if !total_after.to_f64().is_finite() {
            dcmesh_obs::metrics::counter_add("lfd.nonfinite_detected", 1);
        }
        self.md_steps += 1;

        drop(_hs_span);
        let total = match &self.device {
            Some(dev) => dev.synchronize(),
            None => wall0.elapsed().as_secs_f64(),
        };
        let timings = KernelTimings::from_recorder(&rec, total, build.uses_device());
        rec.flush();
        timings
    }

    /// Modeled kernel-busy seconds so far (0 for CPU builds).
    fn dev_busy(&self) -> f64 {
        self.device.as_ref().map_or(0.0, |d| d.stats().kernel_busy)
    }

    /// Modeled H2D/D2H transfer seconds so far (0 for CPU builds).
    fn dev_xfer(&self) -> f64 {
        self.device
            .as_ref()
            .map_or(0.0, |d| d.stats().transfer_time)
    }

    /// Run `f` and record its duration under `name`: modeled kernel-busy
    /// delta for device builds, wall clock for CPU builds. Any transfer
    /// time the body incurs (e.g. the GpuBlas PCIe round-trip) is recorded
    /// separately under [`PHASE_TRANSFER`].
    fn timed_phase(
        &mut self,
        rec: &mut dcmesh_obs::StepRecorder,
        name: &'static str,
        f: impl FnOnce(&mut Self, LaunchPolicy),
        policy: LaunchPolicy,
    ) {
        let modeled = self.cfg.build.uses_device();
        let t0 = Instant::now();
        let b0 = self.dev_busy();
        let x0 = self.dev_xfer();
        f(self, policy);
        let dur = if modeled {
            self.dev_busy() - b0
        } else {
            t0.elapsed().as_secs_f64()
        };
        rec.record_host_seconds(name, dur);
        if modeled {
            let xfer = self.dev_xfer() - x0;
            if xfer > 0.0 {
                rec.record_host_seconds(PHASE_TRANSFER, xfer);
            }
        }
    }

    fn apply_electron_propagation(
        &mut self,
        policy: LaunchPolicy,
        rec: &mut dcmesh_obs::StepRecorder,
    ) {
        match self.cfg.build {
            BuildKind::CpuLoops => {
                let psi = self.psi_aos.as_mut().expect("AoS state");
                // Baseline: potential phase applied via SoA conversion-free
                // AoS sweep (pointwise phase on each orbital).
                let t0 = Instant::now();
                apply_potential_aos(&self.pot_half, psi);
                rec.record_host_seconds(PHASE_POTENTIAL, t0.elapsed().as_secs_f64());
                let t1 = Instant::now();
                self.kin.step_alg1(psi);
                rec.record_host_seconds(PHASE_KINETIC, t1.elapsed().as_secs_f64());
                let t2 = Instant::now();
                apply_potential_aos(&self.pot_half, psi);
                rec.record_host_seconds(PHASE_POTENTIAL, t2.elapsed().as_secs_f64());
            }
            _ => {
                let modeled = self.cfg.build.uses_device();
                let dev_pair = self.device.as_ref().map(|d| (d, policy));
                let busy = |p: Option<(&Device, LaunchPolicy)>| {
                    p.map_or(0.0, |(d, _)| d.stats().kernel_busy)
                };
                let psi = self.psi_soa.as_mut().expect("SoA state");

                let t0 = Instant::now();
                let b0 = busy(dev_pair);
                self.pot_half.apply(psi, dev_pair);
                let d0 = if modeled {
                    busy(dev_pair) - b0
                } else {
                    t0.elapsed().as_secs_f64()
                };
                rec.record_host_seconds(PHASE_POTENTIAL, d0);

                let t1 = Instant::now();
                let b1 = busy(dev_pair);
                match dev_pair {
                    // Pinned/streams build: genuinely deferred `nowait`
                    // launches — bodies run on the stream lane while the
                    // host returns immediately; the scope settles them
                    // before the potential half-step touches psi.
                    Some((dev, LaunchPolicy::Async)) => dev.nowait_scope(|scope| {
                        self.kin.step_nowait(psi, self.block_size, scope);
                    }),
                    _ => self.kin.step_optimized(psi, self.block_size, dev_pair),
                }
                let d1 = if modeled {
                    busy(dev_pair) - b1
                } else {
                    t1.elapsed().as_secs_f64()
                };
                rec.record_host_seconds(PHASE_KINETIC, d1);

                let t2 = Instant::now();
                let b2 = busy(dev_pair);
                self.pot_half.apply(psi, dev_pair);
                let d2 = if modeled {
                    busy(dev_pair) - b2
                } else {
                    t2.elapsed().as_secs_f64()
                };
                rec.record_host_seconds(PHASE_POTENTIAL, d2);
            }
        }
    }

    fn apply_nonlocal(&mut self, policy: LaunchPolicy) {
        match self.cfg.build {
            BuildKind::CpuLoops => {
                let psi = self.psi_aos.as_mut().expect("AoS state");
                let mut m = psi.to_matrix();
                self.nl.nlp_prop(&mut m, GemmPath::Loops);
                *psi = WfAos::from_matrix(psi.mesh().clone(), m);
            }
            BuildKind::CpuBlas => {
                let psi = self.psi_soa.as_mut().expect("SoA state");
                self.nl.nlp_prop_soa(psi);
            }
            BuildKind::GpuBlas => {
                // Host BLAS forces the wavefunctions over PCIe both ways.
                let psi = self.psi_soa.as_mut().expect("SoA state");
                let dev = self.device.as_ref().expect("device");
                let bytes = std::mem::size_of_val(psi.data()) as u64;
                dev.transfer_d2h(dcmesh_device::StreamId(0), bytes, TransferKind::Pageable);
                self.nl.nlp_prop_soa(psi);
                dev.transfer_h2d(dcmesh_device::StreamId(0), bytes, TransferKind::Pageable);
            }
            BuildKind::GpuCublas | BuildKind::GpuCublasPinned => {
                let psi = self.psi_soa.as_mut().expect("SoA state");
                let dev = self.device.as_ref().expect("device");
                self.nl.nlp_prop_soa_on_device(psi, dev, policy);
            }
        }
    }

    /// `calc_energy()`: total electronic energy of each orbital right now —
    /// kinetic + local potential expectation plus the scissor (nonlocal)
    /// correction of Eq. (8). The expensive expectation runs at f64.
    pub fn band_energies(&self) -> Vec<f64> {
        let aos = self.state_aos();
        let h =
            dcmesh_tddft::Hamiltonian::with_potential(self.cfg.mesh.clone(), self.v_loc.clone());
        let scissor = self.scissor_energies();
        (0..self.cfg.norb)
            .map(|n| {
                let psi: Vec<dcmesh_math::C64> = aos.orbital(n).iter().map(|z| z.cast()).collect();
                h.expectation(&psi, false) + scissor[n].to_f64()
            })
            .collect()
    }

    /// Total electronic energy `sum_n f_n E_n` (Hartree) — the quantity a
    /// dark (field-free) run conserves and a laser pulse pumps up.
    pub fn total_energy(&self) -> f64 {
        self.band_energies()
            .iter()
            .zip(&self.occupations)
            .map(|(e, f)| e * f.to_f64())
            .sum()
    }

    /// Scissor (excited-state) energy of each orbital right now.
    pub fn scissor_energies(&self) -> Vec<R> {
        match (&self.psi_soa, &self.psi_aos) {
            (Some(s), _) => self.nl.scissor_energies_soa(s),
            (_, Some(a)) => self.nl.scissor_energies(&a.to_matrix(), GemmPath::Loops),
            _ => unreachable!(),
        }
    }

    /// Population excited above the LUMO (the light-induced excitation the
    /// application study tracks).
    pub fn excited_population(&self) -> R {
        self.occupations[self.cfg.lumo..].iter().copied().sum()
    }

    /// Total electron count (must be conserved).
    pub fn total_occupation(&self) -> R {
        self.occupations.iter().copied().sum()
    }

    /// Largest per-orbital deviation `| ||psi_n|| - 1 |` from unit L2 norm
    /// (volume element included). The propagators are unitary, so this is
    /// an invariant the flight recorder tracks: growth signals numerical
    /// trouble long before anything overflows. NaN amplitudes surface
    /// as a NaN error, which every threshold comparison treats as a
    /// violation.
    pub fn max_norm_error(&self) -> f64 {
        let aos = self.state_aos();
        (0..self.cfg.norb)
            .map(|n| {
                let nv = aos.orbital_norm(n).to_f64();
                if nv.is_finite() {
                    (nv - 1.0).abs()
                } else {
                    f64::NAN
                }
            })
            .fold(0.0, |acc, e| {
                // f64::max washes NaN out; keep it sticky instead.
                if acc.is_nan() || e.is_nan() {
                    f64::NAN
                } else {
                    acc.max(e)
                }
            })
    }

    /// The time-dependent electron density of the current state (f64),
    /// weighted by the current occupations — what Ehrenfest dynamics feeds
    /// back into the forces on the ions (paper Eq. (3): TDDFT "dictates
    /// interatomic interaction").
    pub fn density_f64(&self) -> Vec<f64> {
        let aos = self.state_aos();
        let occ_r: Vec<R> = self.occupations.clone();
        let rho_r = aos.density(&occ_r);
        rho_r.iter().map(|r| r.to_f64()).collect()
    }

    /// Reference to the shadow state (device builds).
    pub fn shadow(&self) -> Option<&ShadowState<R>> {
        self.shadow.as_ref()
    }
}

/// Autotune the orbital block size for this configuration's orbital count:
/// time one Strang-axis sweep per candidate on a shrunken copy of the mesh
/// (same norb, so the inner-loop trip count the blocking controls is
/// faithful) and take the fastest. The winner is cached on disk per
/// (norb, ISA, threads), so only the first engine construction ever pays
/// the search.
fn tuned_block_size(cfg: &LfdConfig) -> usize {
    let norb = cfg.norb;
    let mut candidates: Vec<usize> = [4usize, 8, 16, 32, 64]
        .into_iter()
        .filter(|&b| b < norb)
        .collect();
    candidates.push(norb);
    if candidates.len() == 1 {
        return norb;
    }
    let probe = Mesh3::new(
        cfg.mesh.nx.min(12),
        cfg.mesh.ny.min(12),
        cfg.mesh.nz.min(12),
        cfg.mesh.dx,
        cfg.mesh.dy,
        cfg.mesh.dz,
    );
    let prop = KineticPropagator::<f64>::new(probe.clone(), 0.02, 1.0);
    let mut wf = WfAos::<f64>::zeros(probe, norb);
    wf.randomize(1);
    let mut soa = wf.to_soa();
    dcmesh_tune::tuned_usize(&format!("stencil.block.norb{norb}"), &candidates, |block| {
        for (axis, frac) in [
            (Axis::X, StepFraction::Half),
            (Axis::Y, StepFraction::Half),
            (Axis::Z, StepFraction::Full),
        ] {
            prop.apply_axis_alg5(&mut soa, axis, frac, block, None);
        }
    })
}

/// Apply the potential phase to an AoS state (baseline path).
fn apply_potential_aos<R: Real>(pot: &PotentialPropagator<R>, psi: &mut WfAos<R>) {
    // Reuse the SoA kernel's phase table through a temporary SoA view would
    // defeat the baseline; do the straightforward per-orbital sweep.
    let mesh = psi.mesh().clone();
    let mut tmp = WfSoa::zeros(mesh, 1);
    for n in 0..psi.norb() {
        tmp.data_mut().copy_from_slice(psi.orbital(n));
        pot.apply(&mut tmp, None);
        psi.orbital_mut(n).copy_from_slice(tmp.data());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(build: BuildKind) -> LfdConfig {
        LfdConfig {
            mesh: Mesh3::new(8, 8, 8, 0.5, 0.5, 0.5),
            norb: 4,
            lumo: 2,
            dt: 0.02,
            n_qd: 5,
            block_size: 2,
            build,
            delta_sci: 0.1,
            laser: None,
            seed: 7,
        }
    }

    #[test]
    fn all_builds_produce_identical_states() {
        let v: Vec<f64> = (0..512).map(|i| (i as f64 * 0.013).sin() * 0.5).collect();
        let reference = {
            let mut e = LfdEngine::<f64>::new(small_cfg(BuildKind::CpuLoops), v.clone());
            e.run_md_step();
            e.state_aos()
        };
        for build in [
            BuildKind::CpuBlas,
            BuildKind::GpuBlas,
            BuildKind::GpuCublas,
            BuildKind::GpuCublasPinned,
        ] {
            let mut e = LfdEngine::<f64>::new(small_cfg(build), v.clone());
            e.run_md_step();
            let diff = reference.max_abs_diff(&e.state_aos());
            assert!(diff < 1e-10, "{build:?} diverged by {diff}");
        }
    }

    #[test]
    fn norm_and_occupation_conserved() {
        let v = vec![0.0; 512];
        let mut e = LfdEngine::<f64>::new(small_cfg(BuildKind::CpuBlas), v);
        let n0 = e.total_occupation();
        for _ in 0..3 {
            e.run_md_step();
        }
        assert!((e.total_occupation() - n0).abs() < 1e-9, "occupation drift");
        let aos = e.state_aos();
        for n in 0..4 {
            assert!((aos.orbital_norm(n) - 1.0).abs() < 1e-9);
        }
    }

    /// Harmonic-well eigenstate setup: initial orbitals are true eigenstates
    /// of the propagation Hamiltonian, so dark dynamics is stationary.
    fn eigenstate_setup(n_qd: usize) -> (LfdConfig, Vec<f64>, dcmesh_grid::WfAos<f64>, Vec<f64>) {
        let mesh = Mesh3::new(9, 9, 9, 0.5, 0.5, 0.5);
        let c = mesh.center();
        let mut v = vec![0.0; mesh.len()];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
            v[mesh.idx(i, j, k)] = 0.5 * r2;
        }
        let h = dcmesh_tddft::Hamiltonian::with_potential(mesh.clone(), v.clone());
        let eig = dcmesh_tddft::eigensolver::lowest_states(&h, 4, 300, 17);
        let cfg = LfdConfig {
            mesh,
            norb: 4,
            lumo: 1,
            dt: 0.02,
            n_qd,
            block_size: 2,
            build: BuildKind::CpuBlas,
            delta_sci: 0.0,
            laser: None,
            seed: 7,
        };
        (cfg, v, eig.orbitals, eig.values)
    }

    #[test]
    fn field_free_evolution_keeps_ground_state_occupations() {
        let (cfg, v, orbitals, _) = eigenstate_setup(40);
        let mut e = LfdEngine::<f64>::with_initial_state(cfg, v, orbitals);
        e.run_md_step();
        assert!((e.total_occupation() - 2.0).abs() < 1e-9);
        assert!(
            e.excited_population() < 0.02,
            "dark run excited {}",
            e.excited_population()
        );
    }

    #[test]
    fn laser_pulse_excites_electrons() {
        let (mut cfg, v, orbitals, vals) = eigenstate_setup(150);
        // Drive resonantly at the 0 -> 1 gap (the x-polarized p state).
        let gap = vals[1] - vals[0];
        cfg.laser = Some(LaserPulse {
            e0: 0.4,
            omega: gap,
            duration: 150.0 * cfg.dt,
        });
        let mut with_laser =
            LfdEngine::<f64>::with_initial_state(cfg.clone(), v.clone(), orbitals.clone());
        with_laser.run_md_step();
        let mut cfg_off = cfg;
        cfg_off.laser = None;
        let mut without = LfdEngine::<f64>::with_initial_state(cfg_off, v, orbitals);
        without.run_md_step();
        assert!(
            with_laser.excited_population() > 5.0 * without.excited_population().max(1e-6),
            "laser {} vs dark {}",
            with_laser.excited_population(),
            without.excited_population()
        );
    }

    #[test]
    fn dark_run_conserves_total_energy_and_laser_pumps_it() {
        let (cfg, v, orbitals, _) = eigenstate_setup(60);
        let mut dark =
            LfdEngine::<f64>::with_initial_state(cfg.clone(), v.clone(), orbitals.clone());
        let e0 = dark.total_energy();
        dark.run_md_step();
        let e1 = dark.total_energy();
        assert!(
            (e1 - e0).abs() < 2e-2 * e0.abs().max(1.0),
            "dark energy drift {e0} -> {e1}"
        );
        let mut cfg_lit = cfg;
        cfg_lit.laser = Some(LaserPulse {
            e0: 0.5,
            omega: 1.0,
            duration: 60.0 * 0.02,
        });
        let mut lit = LfdEngine::<f64>::with_initial_state(cfg_lit, v, orbitals);
        let l0 = lit.total_energy();
        lit.run_md_step();
        let l1 = lit.total_energy();
        assert!(
            l1 - l0 > 10.0 * (e1 - e0).abs(),
            "laser absorbed no energy: {l0} -> {l1} (dark drift {})",
            e1 - e0
        );
    }

    #[test]
    fn device_builds_report_modeled_timings() {
        let v = vec![0.0; 512];
        let mut e = LfdEngine::<f64>::new(small_cfg(BuildKind::GpuCublas), v);
        let t = e.run_md_step();
        assert!(t.modeled);
        assert!(t.electron > 0.0 && t.nonlocal > 0.0 && t.total > 0.0);
        let mut c = LfdEngine::<f64>::new(small_cfg(BuildKind::CpuBlas), vec![0.0; 512]);
        let tc = c.run_md_step();
        assert!(!tc.modeled);
    }

    #[test]
    fn gpu_blas_pays_pcie_transfers_cublas_does_not() {
        let v = vec![0.0; 512];
        let mut blas = LfdEngine::<f64>::new(small_cfg(BuildKind::GpuBlas), v.clone());
        blas.run_md_step();
        let xfer_blas = blas.device().unwrap().stats().h2d_bytes;
        let mut cublas = LfdEngine::<f64>::new(small_cfg(BuildKind::GpuCublas), v);
        cublas.run_md_step();
        let xfer_cublas = cublas.device().unwrap().stats().h2d_bytes;
        // Both builds refresh the per-step phase table; only the host-BLAS
        // build additionally round-trips the full wavefunction matrix. With
        // norb orbitals the extra traffic is ~2*norb the table size.
        assert!(
            xfer_blas > 3 * xfer_cublas.max(1),
            "blas {xfer_blas} vs cublas {xfer_cublas}"
        );
        let d2h_blas = blas.device().unwrap().stats().d2h_bytes;
        let d2h_cublas = cublas.device().unwrap().stats().d2h_bytes;
        assert!(
            d2h_blas > 100 * d2h_cublas.max(1),
            "d2h {d2h_blas} vs {d2h_cublas}"
        );
    }

    #[test]
    fn shadow_handshake_happens_once_per_md_step() {
        let v = vec![0.0; 512];
        let mut e = LfdEngine::<f64>::new(small_cfg(BuildKind::GpuCublasPinned), v);
        e.run_md_step();
        e.run_md_step();
        assert_eq!(e.shadow().unwrap().handshakes(), 2);
    }

    #[test]
    fn autotuned_block_size_matches_explicit_results() {
        // block_size = 0 resolves through the tuner (temp cache dir so the
        // test never touches the checked-in bench_results/) and must give
        // the same physics as any explicit legal block size.
        let dir = std::env::temp_dir().join(format!("dcmesh-lfd-tune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dcmesh_tune::set_cache_dir(&dir);
        let v: Vec<f64> = (0..512).map(|i| (i as f64 * 0.013).sin() * 0.5).collect();
        // norb = 6 gives the tuner a real choice ({4, 6}); norb = 4 would
        // short-circuit to the single legal candidate.
        let mut base = small_cfg(BuildKind::CpuBlas);
        base.norb = 6;
        base.lumo = 3;
        let mut explicit = LfdEngine::<f64>::new(base.clone(), v.clone());
        explicit.run_md_step();
        let mut cfg = base;
        cfg.block_size = 0;
        let mut tuned = LfdEngine::<f64>::new(cfg.clone(), v.clone());
        let chosen = tuned.block_size();
        assert!([4, 6].contains(&chosen), "tuned block {chosen}");
        tuned.run_md_step();
        let diff = explicit.state_aos().max_abs_diff(&tuned.state_aos());
        assert!(diff < 1e-12, "tuned block diverged by {diff}");
        // Second engine: warm start must reuse the persisted winner.
        let again = LfdEngine::<f64>::new(cfg, v);
        assert_eq!(again.block_size(), chosen, "warm tuner changed its pick");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn paper_benchmark_config_scales() {
        let cfg = LfdConfig::paper_benchmark(BuildKind::GpuCublas, 1.0);
        assert_eq!((cfg.mesh.nx, cfg.mesh.ny, cfg.mesh.nz), (70, 70, 72));
        assert_eq!(cfg.norb, 64);
        assert_eq!(cfg.n_qd, 1000);
        let small = LfdConfig::paper_benchmark(BuildKind::CpuLoops, 0.2);
        assert!(small.mesh.len() < cfg.mesh.len() / 50);
    }
}
