//! Golden-file snapshot of the RunRecord JSON layout.
//!
//! The record here is built from fully fixed parts (deterministic events,
//! hand-rolled metrics, placeholder git metadata), so its serialization
//! must be byte-identical across runs and machines. If the layout changes
//! *intentionally*, bump [`dcmesh_telemetry::SCHEMA_VERSION`] and rebless
//! with `UPDATE_GOLDEN=1 cargo test -p dcmesh-telemetry --test
//! golden_runrecord`.

use std::path::PathBuf;

use dcmesh_obs::metrics::{Histogram, MetricsSnapshot};
use dcmesh_obs::trace::{Event, EventKind, Track};
use dcmesh_telemetry::{GitMeta, InvariantSummary, RunRecord};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("runrecord.json")
}

fn fixed_record() -> RunRecord {
    // A miniature deterministic timeline: one md_step span pair and one
    // device slice, timestamps on the counter clock.
    let events = vec![
        Event::complete("sim.md_step", Track::Host, 0.0, 0.0)
            .with_ids(1, 0)
            .with_kind(EventKind::Begin),
        Event::complete("sim.lfd", Track::Device { stream: 0 }, 2.0, 5.0).with_bytes(4096),
        Event::complete("sim.md_step", Track::Host, 10.0, 0.0)
            .with_ids(1, 0)
            .with_kind(EventKind::End),
    ];
    let mut metrics = MetricsSnapshot::default();
    metrics.counters.insert("comm.messages".into(), 12);
    metrics.counters.insert("comm.send_bytes".into(), 65536);
    let mut h = Histogram::default();
    for _ in 0..7 {
        h.record(0.25);
    }
    h.record(0.5);
    metrics.histograms.insert("sim.md_step_seconds".into(), h);
    let invariants = InvariantSummary {
        samples: 8,
        initial_total_energy: -12.5,
        final_total_energy: -12.5000001,
        max_energy_drift: 8e-9,
        max_norm_error: 3e-10,
        max_population_error: 1e-12,
        max_occupation_drift: 2e-11,
    };
    RunRecord::from_parts(
        "fig5_kernels",
        "scale=0.25 mesh=20^3 norb=32",
        Some(0x1234_5678_9abc_def0),
        4,
        "nan@7".into(),
        GitMeta::unknown(),
        &events,
        &metrics,
        Some(invariants),
    )
}

#[test]
fn runrecord_json_matches_the_golden_snapshot() {
    let rendered = format!("{}\n", fixed_record().to_json());
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); rebless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "RunRecord serialization drifted from the golden snapshot; if the \
         change is intentional, bump SCHEMA_VERSION and rebless with \
         UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_snapshot_parses_back_to_an_equivalent_record() {
    let rec = fixed_record();
    let json = dcmesh_obs::json::Json::parse(
        &std::fs::read_to_string(golden_path()).expect("golden file present"),
    )
    .expect("golden file is valid JSON");
    let back = RunRecord::from_json(&json).expect("golden file parses as a RunRecord");
    assert_eq!(back.schema_version, rec.schema_version);
    assert_eq!(back.bin, rec.bin);
    assert_eq!(back.config_fingerprint, rec.config_fingerprint);
    assert_eq!(back.fault_plan, rec.fault_plan);
    assert_eq!(back.counters, rec.counters);
    assert_eq!(back.phases, rec.phases);
    assert_eq!(back.histograms, rec.histograms);
    assert_eq!(back.invariants, rec.invariants);
}
