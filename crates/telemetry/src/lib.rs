//! # dcmesh-telemetry
//!
//! The flight recorder: a structured-telemetry layer on top of
//! `dcmesh-obs` that turns a run of the coupled simulation (or a bench
//! driver) into machine-readable artifacts a later run can be compared
//! against.
//!
//! * [`recorder`] — [`FlightRecorder`]: samples per-MD-step physics
//!   invariants ([`dcmesh_core::SimInvariants`]) and performance series
//!   into a bounded ring buffer, flushed as JSONL.
//! * [`watchdog`] — [`Watchdog`]: configurable drift thresholds that warn
//!   when energy drift, norm error, or population leakage degrades
//!   *before* the state goes non-finite (the soft counterpart to
//!   `ResilientRunner`'s hard non-finite check).
//! * [`runner`] — [`TelemetryRunner`]: wires a recorder + watchdog into
//!   `ResilientRunner`'s step-observer hook, so watchdog warnings are
//!   ordered strictly before any rollback for the same step.
//! * [`record`] — [`RunRecord`]: a schema-versioned JSON summary of one
//!   run (config fingerprint, thread count, fault plan, git metadata,
//!   per-phase aggregates, metric snapshots with log₂ histogram buckets,
//!   invariant summary), written under `bench_results/`.
//! * [`compare`] — diff two RunRecords: log₂-histogram latency
//!   comparison, per-phase ratios, invariant-drift thresholds. The
//!   `dcmesh-bench` `compare` binary exits nonzero on any regression.
//! * [`aggregate`] — min/mean/max + load-imbalance views of per-rank
//!   telemetry gathered through `dcmesh-comm`, matching the paper's
//!   scaling-efficiency methodology.

pub mod aggregate;
pub mod compare;
pub mod record;
pub mod recorder;
pub mod runner;
pub mod sample;
pub mod watchdog;

pub use aggregate::{gather_stats, summarize, RankStat};
pub use compare::{compare, CompareConfig, Regression};
pub use record::{GitMeta, HistRecord, PhaseRecord, RunRecord, SCHEMA_VERSION};
pub use recorder::{FlightRecorder, RecorderConfig};
pub use runner::{TelemetryEvent, TelemetryRunner};
pub use sample::{InvariantSummary, StepSample};
pub use watchdog::{Watchdog, WatchdogThresholds, WatchdogWarning};
