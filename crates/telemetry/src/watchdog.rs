//! The invariant watchdog: soft drift thresholds that fire before the
//! state goes non-finite.

use dcmesh_core::SimInvariants;

/// Drift thresholds. Every comparison is written `!(value <= threshold)`
/// so a NaN invariant counts as a violation rather than slipping past.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogThresholds {
    /// Relative total-energy drift vs. the first sampled step.
    pub max_energy_drift: f64,
    /// Per-orbital wavefunction norm error.
    pub max_norm_error: f64,
    /// FSSH population-sum error.
    pub max_population_error: f64,
    /// Absolute total-occupation drift vs. the first sampled step.
    pub max_occupation_drift: f64,
}

impl Default for WatchdogThresholds {
    fn default() -> Self {
        Self {
            max_energy_drift: 0.05,
            max_norm_error: 1e-3,
            max_population_error: 1e-3,
            max_occupation_drift: 1e-6,
        }
    }
}

/// One threshold violation.
#[derive(Clone, Debug, PartialEq)]
pub struct WatchdogWarning {
    /// MD step the violating sample was taken at.
    pub step: u64,
    /// Which invariant degraded (e.g. `"energy_drift"`).
    pub what: &'static str,
    /// Observed value (may be NaN).
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

impl std::fmt::Display for WatchdogWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: {} = {:.3e} exceeds {:.3e}",
            self.step, self.what, self.value, self.threshold
        )
    }
}

/// Checks sampled invariants against [`WatchdogThresholds`]. The first
/// checked sample becomes the drift baseline.
///
/// The watchdog produces structured warnings instead of printing — the
/// caller decides whether to log, count, or escalate them. Its purpose is
/// to flag degradation *before* `ResilientRunner`'s non-finite check
/// triggers a rollback.
#[derive(Clone, Debug)]
pub struct Watchdog {
    thresholds: WatchdogThresholds,
    baseline: Option<SimInvariants>,
}

impl Watchdog {
    /// A watchdog with the given thresholds and no baseline yet.
    pub fn new(thresholds: WatchdogThresholds) -> Self {
        Self {
            thresholds,
            baseline: None,
        }
    }

    /// The thresholds in force.
    pub fn thresholds(&self) -> &WatchdogThresholds {
        &self.thresholds
    }

    /// Check one invariant sample, returning every violated threshold.
    pub fn check(&mut self, step: u64, inv: &SimInvariants) -> Vec<WatchdogWarning> {
        let base = *self.baseline.get_or_insert(*inv);
        let t = self.thresholds;
        let scale = base.total_energy.abs().max(1e-12);
        let drift = (inv.total_energy - base.total_energy).abs() / scale;
        let occ_drift = (inv.total_occupation - base.total_occupation).abs();
        let checks = [
            ("energy_drift", drift, t.max_energy_drift),
            ("norm_error", inv.max_norm_error, t.max_norm_error),
            (
                "population_error",
                inv.max_population_error,
                t.max_population_error,
            ),
            ("occupation_drift", occ_drift, t.max_occupation_drift),
        ];
        checks
            .into_iter()
            .filter(
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                |(_, value, threshold)| !(*value <= *threshold),
            )
            .map(|(what, value, threshold)| WatchdogWarning {
                step,
                what,
                value,
                threshold,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> SimInvariants {
        SimInvariants {
            md_total_energy: 1.0,
            electronic_energy: -3.0,
            field_energy: 0.5,
            total_energy: -1.5,
            max_norm_error: 1e-9,
            max_population_error: 1e-12,
            total_occupation: 8.0,
        }
    }

    #[test]
    fn healthy_samples_raise_no_warnings() {
        let mut dog = Watchdog::new(WatchdogThresholds::default());
        assert!(dog.check(0, &healthy()).is_empty());
        assert!(dog.check(1, &healthy()).is_empty());
    }

    #[test]
    fn energy_drift_is_relative_to_the_first_sample() {
        let mut dog = Watchdog::new(WatchdogThresholds::default());
        assert!(dog.check(0, &healthy()).is_empty());
        let drifted = SimInvariants {
            total_energy: -1.5 * 1.2,
            ..healthy()
        };
        let warns = dog.check(5, &drifted);
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].what, "energy_drift");
        assert_eq!(warns[0].step, 5);
        assert!((warns[0].value - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nan_invariants_always_warn() {
        let mut dog = Watchdog::new(WatchdogThresholds::default());
        dog.check(0, &healthy());
        let poisoned = SimInvariants {
            total_energy: f64::NAN,
            max_norm_error: f64::NAN,
            ..healthy()
        };
        let warns = dog.check(1, &poisoned);
        let whats: Vec<&str> = warns.iter().map(|w| w.what).collect();
        assert!(whats.contains(&"energy_drift"));
        assert!(whats.contains(&"norm_error"));
    }

    #[test]
    fn multiple_violations_are_all_reported() {
        let mut dog = Watchdog::new(WatchdogThresholds {
            max_energy_drift: 1e-6,
            max_norm_error: 1e-12,
            max_population_error: 1e-15,
            max_occupation_drift: 1e-15,
        });
        dog.check(0, &healthy());
        let worse = SimInvariants {
            total_energy: -1.4,
            total_occupation: 8.1,
            ..healthy()
        };
        let warns = dog.check(1, &worse);
        assert_eq!(warns.len(), 4);
    }
}
