//! The bounded flight recorder: per-step samples in a ring buffer.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use dcmesh_core::{DcMeshSim, SimInvariants, StepReport};

use crate::sample::{InvariantSummary, StepSample};

/// NaN-sticky maximum (plain `f64::max` discards NaN operands).
fn max_sticky(acc: f64, v: f64) -> f64 {
    if acc.is_nan() || v.is_nan() {
        f64::NAN
    } else {
        acc.max(v)
    }
}

/// Recorder sizing and sampling stride.
#[derive(Clone, Copy, Debug)]
pub struct RecorderConfig {
    /// Ring-buffer capacity in samples; the oldest samples are dropped
    /// (and counted) once the buffer is full.
    pub capacity: usize,
    /// Evaluate the (expensive) physics invariants every N observed
    /// steps; the first observed step is always sampled. 0 disables
    /// invariant sampling entirely (perf series only).
    pub sample_every: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            sample_every: 1,
        }
    }
}

/// Bounded per-step telemetry buffer over a running [`DcMeshSim`].
///
/// `observe` is called once per attempted MD step with the step's report;
/// it records the cheap perf series every call and the physics invariants
/// on the configured stride. The whole-run extremes (worst drift, worst
/// norm error) are accumulated independently of the ring buffer, so a
/// long run's summary is exact even after old samples have been evicted.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    samples: VecDeque<StepSample>,
    dropped: u64,
    observed: u64,
    baseline: Option<SimInvariants>,
    summary: Option<InvariantSummary>,
    last_wall: Option<Instant>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new(cfg: RecorderConfig) -> Self {
        Self {
            cfg,
            samples: VecDeque::with_capacity(cfg.capacity.min(4096)),
            dropped: 0,
            observed: 0,
            baseline: None,
            summary: None,
            last_wall: None,
        }
    }

    /// Record one step. Returns the sample just taken.
    pub fn observe(&mut self, sim: &DcMeshSim, report: &StepReport) -> &StepSample {
        let wall_s = match self.last_wall.replace(Instant::now()) {
            Some(prev) => prev.elapsed().as_secs_f64(),
            None => 0.0,
        };
        let sample_invariants = self.cfg.sample_every > 0
            && (self.baseline.is_none() || self.observed.is_multiple_of(self.cfg.sample_every));
        self.observed += 1;
        let (invariants, energy_drift) = if sample_invariants {
            let inv = sim.physics_invariants();
            let base = *self.baseline.get_or_insert(inv);
            let scale = base.total_energy.abs().max(1e-12);
            let drift = (inv.total_energy - base.total_energy).abs() / scale;
            self.accumulate_summary(&inv, drift, &base);
            (Some(inv), Some(drift))
        } else {
            (None, None)
        };
        let sample = StepSample {
            step: sim.md_steps(),
            time_fs: report.time_fs,
            wall_s,
            lfd_electron_s: report.lfd_electron_s,
            lfd_nonlocal_s: report.lfd_nonlocal_s,
            lfd_transfer_s: report.lfd_transfer_s,
            excited_population: report.excited_population,
            hops: report.hops as u64,
            temperature_k: report.temperature_k,
            resident_bytes: sim.resident_bytes(),
            invariants,
            energy_drift,
        };
        if self.samples.len() >= self.cfg.capacity.max(1) {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
        self.samples.back().expect("just pushed")
    }

    fn accumulate_summary(&mut self, inv: &SimInvariants, drift: f64, base: &SimInvariants) {
        let s = self.summary.get_or_insert(InvariantSummary {
            samples: 0,
            initial_total_energy: base.total_energy,
            final_total_energy: base.total_energy,
            max_energy_drift: 0.0,
            max_norm_error: 0.0,
            max_population_error: 0.0,
            max_occupation_drift: 0.0,
        });
        s.samples += 1;
        s.final_total_energy = inv.total_energy;
        s.max_energy_drift = max_sticky(s.max_energy_drift, drift);
        s.max_norm_error = max_sticky(s.max_norm_error, inv.max_norm_error);
        s.max_population_error = max_sticky(s.max_population_error, inv.max_population_error);
        s.max_occupation_drift = max_sticky(
            s.max_occupation_drift,
            (inv.total_occupation - base.total_occupation).abs(),
        );
    }

    /// The buffered samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &StepSample> {
        self.samples.iter()
    }

    /// Samples evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Steps observed (whether or not still buffered).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The first sampled invariants (the drift baseline).
    pub fn baseline(&self) -> Option<&SimInvariants> {
        self.baseline.as_ref()
    }

    /// Whole-run invariant summary; `None` until the first sampled step.
    pub fn summary(&self) -> Option<InvariantSummary> {
        self.summary
    }

    /// The buffered samples as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Flush the buffered samples to `path` as JSONL.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_core::DcMeshConfig;

    fn quick_cfg() -> DcMeshConfig {
        DcMeshConfig {
            n_qd: 5,
            ..DcMeshConfig::default()
        }
    }

    #[test]
    fn records_samples_and_summary() {
        let mut sim = DcMeshSim::new(quick_cfg());
        let mut rec = FlightRecorder::new(RecorderConfig {
            capacity: 8,
            sample_every: 2,
        });
        for _ in 0..4 {
            let r = sim.md_step();
            rec.observe(&sim, &r);
        }
        assert_eq!(rec.observed(), 4);
        assert_eq!(rec.samples().count(), 4);
        // Stride 2: steps 0 and 2 carry invariants.
        let with_inv = rec.samples().filter(|s| s.invariants.is_some()).count();
        assert_eq!(with_inv, 2);
        let summary = rec.summary().expect("sampled at least once");
        assert_eq!(summary.samples, 2);
        assert!(summary.max_energy_drift.is_finite());
        assert!(summary.max_occupation_drift < 1e-9);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut sim = DcMeshSim::new(quick_cfg());
        let mut rec = FlightRecorder::new(RecorderConfig {
            capacity: 3,
            sample_every: 0,
        });
        for _ in 0..5 {
            let r = sim.md_step();
            rec.observe(&sim, &r);
        }
        assert_eq!(rec.samples().count(), 3);
        assert_eq!(rec.dropped(), 2);
        let first = rec.samples().next().unwrap();
        assert_eq!(first.step, 3, "oldest two samples evicted");
        assert!(rec.summary().is_none(), "stride 0 disables invariants");
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let mut sim = DcMeshSim::new(quick_cfg());
        let mut rec = FlightRecorder::new(RecorderConfig::default());
        for _ in 0..2 {
            let r = sim.md_step();
            rec.observe(&sim, &r);
        }
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = dcmesh_obs::json::Json::parse(line).expect("valid JSON");
            assert!(v.get("step").is_some());
            assert!(v.get("total_energy").is_some(), "stride 1 samples all");
        }
    }
}
