//! The per-step sample and the whole-run invariant summary.

use dcmesh_core::SimInvariants;
use dcmesh_obs::json::Json;

/// One flight-recorder sample: the perf series is captured every observed
/// step, the physics invariants only on the sampling stride (they cost a
/// full electronic-energy evaluation).
#[derive(Clone, Debug)]
pub struct StepSample {
    /// Completed MD steps when the sample was taken. After a rollback the
    /// series visibly moves backwards — that is the point of a flight
    /// recorder.
    pub step: u64,
    /// Simulation time (fs).
    pub time_fs: f64,
    /// Wall-clock seconds since the previous sample (0 for the first).
    pub wall_s: f64,
    /// LFD electron-propagation seconds this step (modeled for device
    /// builds), summed over domains.
    pub lfd_electron_s: f64,
    /// LFD nonlocal-correction seconds this step.
    pub lfd_nonlocal_s: f64,
    /// LFD transfer seconds this step.
    pub lfd_transfer_s: f64,
    /// Total excited population.
    pub excited_population: f64,
    /// Surface hops this step.
    pub hops: u64,
    /// Instantaneous MD temperature (K).
    pub temperature_k: f64,
    /// Resident simulation-state bytes.
    pub resident_bytes: u64,
    /// Physics invariants (sampled steps only).
    pub invariants: Option<SimInvariants>,
    /// Relative total-energy drift vs. the first sampled invariants
    /// (sampled steps only).
    pub energy_drift: Option<f64>,
}

impl StepSample {
    /// One JSONL line for this sample. Invariant fields appear only on
    /// sampled steps, so perf-only lines stay small.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("step".into(), Json::Num(self.step as f64)),
            ("time_fs".into(), Json::Num(self.time_fs)),
            ("wall_s".into(), Json::Num(self.wall_s)),
            ("lfd_electron_s".into(), Json::Num(self.lfd_electron_s)),
            ("lfd_nonlocal_s".into(), Json::Num(self.lfd_nonlocal_s)),
            ("lfd_transfer_s".into(), Json::Num(self.lfd_transfer_s)),
            (
                "excited_population".into(),
                Json::Num(self.excited_population),
            ),
            ("hops".into(), Json::Num(self.hops as f64)),
            ("temperature_k".into(), Json::Num(self.temperature_k)),
            (
                "resident_bytes".into(),
                Json::Num(self.resident_bytes as f64),
            ),
        ];
        if let Some(inv) = &self.invariants {
            obj.push(("total_energy".into(), Json::Num(inv.total_energy)));
            obj.push(("md_total_energy".into(), Json::Num(inv.md_total_energy)));
            obj.push(("electronic_energy".into(), Json::Num(inv.electronic_energy)));
            obj.push(("field_energy".into(), Json::Num(inv.field_energy)));
            obj.push(("max_norm_error".into(), Json::Num(inv.max_norm_error)));
            obj.push((
                "max_population_error".into(),
                Json::Num(inv.max_population_error),
            ));
            obj.push(("total_occupation".into(), Json::Num(inv.total_occupation)));
        }
        if let Some(drift) = self.energy_drift {
            obj.push(("energy_drift".into(), Json::Num(drift)));
        }
        Json::Obj(obj)
    }
}

/// Whole-run invariant summary, embedded in the [`crate::RunRecord`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InvariantSummary {
    /// Steps with full invariant samples.
    pub samples: u64,
    /// Total energy at the first sampled step.
    pub initial_total_energy: f64,
    /// Total energy at the last sampled step.
    pub final_total_energy: f64,
    /// Worst relative total-energy drift over the run. NaN when a sample
    /// went non-finite — every threshold comparison treats that as a
    /// violation.
    pub max_energy_drift: f64,
    /// Worst per-orbital norm error over the run.
    pub max_norm_error: f64,
    /// Worst FSSH population-sum error over the run.
    pub max_population_error: f64,
    /// Largest deviation of the total occupation from its initial value.
    pub max_occupation_drift: f64,
}

impl InvariantSummary {
    /// JSON object for embedding in a run record.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("samples".into(), Json::Num(self.samples as f64)),
            (
                "initial_total_energy".into(),
                Json::Num(self.initial_total_energy),
            ),
            (
                "final_total_energy".into(),
                Json::Num(self.final_total_energy),
            ),
            ("max_energy_drift".into(), Json::Num(self.max_energy_drift)),
            ("max_norm_error".into(), Json::Num(self.max_norm_error)),
            (
                "max_population_error".into(),
                Json::Num(self.max_population_error),
            ),
            (
                "max_occupation_drift".into(),
                Json::Num(self.max_occupation_drift),
            ),
        ])
    }

    /// Parse back from [`InvariantSummary::to_json`] output. Non-finite
    /// values were serialized as `null` and come back as NaN.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            match json.get(key) {
                Some(Json::Num(n)) => Ok(*n),
                Some(Json::Null) => Ok(f64::NAN),
                _ => Err(format!("invariants: missing number '{key}'")),
            }
        };
        Ok(Self {
            samples: num("samples")? as u64,
            initial_total_energy: num("initial_total_energy")?,
            final_total_energy: num("final_total_energy")?,
            max_energy_drift: num("max_energy_drift")?,
            max_norm_error: num("max_norm_error")?,
            max_population_error: num("max_population_error")?,
            max_occupation_drift: num("max_occupation_drift")?,
        })
    }
}
