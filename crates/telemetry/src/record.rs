//! [`RunRecord`]: the schema-versioned JSON summary of one bench run.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::process::Command;

use dcmesh_obs::json::Json;
use dcmesh_obs::metrics::{Histogram, MetricsSnapshot, MAX_EXP, MIN_EXP};
use dcmesh_obs::report::PhaseAgg;
use dcmesh_obs::trace::Event;

use crate::sample::InvariantSummary;

/// Bump when the RunRecord JSON layout changes incompatibly. `compare`
/// refuses to diff records with different schema versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Git metadata captured at record time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GitMeta {
    /// Commit hash, or `"unknown"` outside a repo.
    pub commit: String,
    /// Branch name, or `"unknown"`.
    pub branch: String,
    /// Whether the working tree had uncommitted changes.
    pub dirty: bool,
}

impl GitMeta {
    /// A placeholder for environments without git (and for golden tests).
    pub fn unknown() -> Self {
        Self {
            commit: "unknown".into(),
            branch: "unknown".into(),
            dirty: false,
        }
    }

    /// Ask `git` about the current checkout; falls back to
    /// [`GitMeta::unknown`] when git is unavailable.
    pub fn detect() -> Self {
        let run = |args: &[&str]| -> Option<String> {
            let out = Command::new("git").args(args).output().ok()?;
            if !out.status.success() {
                return None;
            }
            Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
        };
        let commit = run(&["rev-parse", "HEAD"]);
        let branch = run(&["rev-parse", "--abbrev-ref", "HEAD"]);
        let dirty = run(&["status", "--porcelain"]).map(|s| !s.is_empty());
        match (commit, branch, dirty) {
            (Some(commit), branch, dirty) => Self {
                commit,
                branch: branch.unwrap_or_else(|| "unknown".into()),
                dirty: dirty.unwrap_or(false),
            },
            _ => Self::unknown(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("commit".into(), Json::Str(self.commit.clone())),
            ("branch".into(), Json::Str(self.branch.clone())),
            ("dirty".into(), Json::Bool(self.dirty)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let s = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("git: missing string '{key}'"))
        };
        let dirty = matches!(json.get("dirty"), Some(Json::Bool(true)));
        Ok(Self {
            commit: s("commit")?,
            branch: s("branch")?,
            dirty,
        })
    }
}

/// Flat totals for one `(phase, track)` pair, from span aggregation.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRecord {
    /// Phase name, e.g. `"sim.lfd"`.
    pub name: String,
    /// `"host"` or `"device"`.
    pub track: String,
    /// Completed occurrences.
    pub count: u64,
    /// Total seconds.
    pub total_s: f64,
    /// Total payload bytes.
    pub bytes: u64,
}

impl PhaseRecord {
    fn from_agg(agg: &PhaseAgg) -> Self {
        Self {
            name: agg.name.clone(),
            track: agg.track.to_string(),
            count: agg.count,
            total_s: agg.total_s,
            bytes: agg.bytes,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("track".into(), Json::Str(self.track.clone())),
            ("count".into(), Json::Num(self.count as f64)),
            ("total_s".into(), Json::Num(self.total_s)),
            ("bytes".into(), Json::Num(self.bytes as f64)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            json.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("phase: missing number '{key}'"))
        };
        Ok(Self {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or("phase: missing 'name'")?
                .to_string(),
            track: json
                .get("track")
                .and_then(Json::as_str)
                .ok_or("phase: missing 'track'")?
                .to_string(),
            count: num("count")? as u64,
            total_s: num("total_s")?,
            bytes: num("bytes")? as u64,
        })
    }
}

/// A log₂ histogram flattened for the record: summary stats, the standard
/// percentiles, and the *sparse* bucket list so the compare side can
/// rebuild the full [`Histogram`] and re-derive any quantile.
#[derive(Clone, Debug, PartialEq)]
pub struct HistRecord {
    /// Metric name, e.g. `"sim.md_step_seconds"`.
    pub name: String,
    /// Recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (NaN when empty).
    pub min: f64,
    /// Largest recorded value (NaN when empty).
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Values below the tracked range.
    pub underflow: u64,
    /// Values above the tracked range (and non-finite ones).
    pub overflow: u64,
    /// Non-empty `(exponent, count)` buckets; bucket `e` covers
    /// `[2^e, 2^(e+1))`.
    pub buckets: Vec<(i32, u64)>,
}

impl HistRecord {
    /// Flatten a live histogram.
    pub fn from_histogram(name: &str, h: &Histogram) -> Self {
        let buckets = (MIN_EXP..=MAX_EXP)
            .filter_map(|e| {
                let n = h.bucket(e);
                (n > 0).then_some((e, n))
            })
            .collect();
        Self {
            name: name.to_string(),
            count: h.count,
            sum: h.sum,
            min: if h.min.is_finite() { h.min } else { f64::NAN },
            max: if h.max.is_finite() { h.max } else { f64::NAN },
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            underflow: h.underflow,
            overflow: h.overflow,
            buckets,
        }
    }

    /// Rebuild a [`Histogram`] carrying the same buckets and extrema, so
    /// quantiles can be re-derived on the compare side.
    pub fn to_histogram(&self) -> Histogram {
        let mut h = Histogram {
            underflow: self.underflow,
            overflow: self.overflow,
            count: self.count,
            sum: self.sum,
            min: if self.min.is_nan() {
                f64::INFINITY
            } else {
                self.min
            },
            max: if self.max.is_nan() {
                f64::NEG_INFINITY
            } else {
                self.max
            },
            ..Histogram::default()
        };
        for &(e, n) in &self.buckets {
            if (MIN_EXP..=MAX_EXP).contains(&e) {
                h.counts[(e - MIN_EXP) as usize] = n;
            }
        }
        h
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum)),
            ("min".into(), Json::Num(self.min)),
            ("max".into(), Json::Num(self.max)),
            ("p50".into(), Json::Num(self.p50)),
            ("p95".into(), Json::Num(self.p95)),
            ("p99".into(), Json::Num(self.p99)),
            ("underflow".into(), Json::Num(self.underflow as f64)),
            ("overflow".into(), Json::Num(self.overflow as f64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(e, n)| Json::Arr(vec![Json::Num(e as f64), Json::Num(n as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        // Non-finite stats serialize as `null`; read them back as NaN.
        let num = |key: &str| -> Result<f64, String> {
            match json.get(key) {
                Some(Json::Num(n)) => Ok(*n),
                Some(Json::Null) => Ok(f64::NAN),
                _ => Err(format!("histogram: missing number '{key}'")),
            }
        };
        let buckets = json
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram: missing 'buckets'")?
            .iter()
            .map(|pair| {
                let pair = pair.as_arr().ok_or("histogram: bucket is not a pair")?;
                match pair {
                    [Json::Num(e), Json::Num(n)] => Ok((*e as i32, *n as u64)),
                    _ => Err("histogram: bucket is not [exp, count]".to_string()),
                }
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or("histogram: missing 'name'")?
                .to_string(),
            count: num("count")? as u64,
            sum: num("sum")?,
            min: num("min")?,
            max: num("max")?,
            p50: num("p50")?,
            p95: num("p95")?,
            p99: num("p99")?,
            underflow: num("underflow")? as u64,
            overflow: num("overflow")? as u64,
            buckets,
        })
    }
}

/// The schema-versioned summary of one run, written under
/// `bench_results/` and consumed by the `compare` binary.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// RunRecord layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Which binary produced the record (e.g. `"fig5_kernels"`).
    pub bin: String,
    /// Free-form workload description (scale, mesh, orbitals).
    pub workload: String,
    /// FNV-1a fingerprint over the physics config, when a simulation was
    /// involved. Serialized as a hex *string*: the raw u64 exceeds the
    /// 2^53 range JSON numbers can represent exactly.
    pub config_fingerprint: Option<u64>,
    /// Pool worker threads the run used.
    pub threads: usize,
    /// The installed fault plan's spec string; empty for a clean run.
    pub fault_plan: String,
    /// Git checkout metadata.
    pub git: GitMeta,
    /// Per-phase wall-time aggregates from the span timeline.
    pub phases: Vec<PhaseRecord>,
    /// Counter snapshot.
    pub counters: BTreeMap<String, u64>,
    /// Gauge snapshot (last value).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshot with percentiles and sparse buckets.
    pub histograms: Vec<HistRecord>,
    /// Whole-run invariant summary, when a flight recorder ran.
    pub invariants: Option<InvariantSummary>,
}

impl RunRecord {
    /// Build a record from explicit parts. Deterministic given its inputs
    /// — the golden snapshot test drives this directly.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        bin: &str,
        workload: &str,
        config_fingerprint: Option<u64>,
        threads: usize,
        fault_plan: String,
        git: GitMeta,
        events: &[Event],
        metrics: &MetricsSnapshot,
        invariants: Option<InvariantSummary>,
    ) -> Self {
        let phases = dcmesh_obs::report::aggregate(events)
            .iter()
            .map(PhaseRecord::from_agg)
            .collect();
        let histograms = metrics
            .histograms
            .iter()
            .map(|(name, h)| HistRecord::from_histogram(name, h))
            .collect();
        let gauges = metrics
            .gauges
            .iter()
            .map(|(name, g)| (name.clone(), g.last))
            .collect();
        Self {
            schema_version: SCHEMA_VERSION,
            bin: bin.to_string(),
            workload: workload.to_string(),
            config_fingerprint,
            threads,
            fault_plan,
            git,
            phases,
            counters: metrics.counters.clone(),
            gauges,
            histograms,
            invariants,
        }
    }

    /// Build a record from the live environment: pool thread count, the
    /// installed fault plan, and the current git checkout.
    pub fn collect(
        bin: &str,
        workload: &str,
        config_fingerprint: Option<u64>,
        events: &[Event],
        metrics: &MetricsSnapshot,
        invariants: Option<InvariantSummary>,
    ) -> Self {
        let fault_plan = dcmesh_ckpt::fault::current()
            .map(|p| p.spec())
            .unwrap_or_default();
        Self::from_parts(
            bin,
            workload,
            config_fingerprint,
            dcmesh_pool::configured_threads(),
            fault_plan,
            GitMeta::detect(),
            events,
            metrics,
            invariants,
        )
    }

    /// The record as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("bin".into(), Json::Str(self.bin.clone())),
            ("workload".into(), Json::Str(self.workload.clone())),
            (
                "config_fingerprint".into(),
                match self.config_fingerprint {
                    Some(fp) => Json::Str(format!("{fp:016x}")),
                    None => Json::Null,
                },
            ),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("fault_plan".into(), Json::Str(self.fault_plan.clone())),
            ("git".into(), self.git.to_json()),
            (
                "phases".into(),
                Json::Arr(self.phases.iter().map(PhaseRecord::to_json).collect()),
            ),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Arr(self.histograms.iter().map(HistRecord::to_json).collect()),
            ),
        ];
        obj.push((
            "invariants".into(),
            match &self.invariants {
                Some(inv) => inv.to_json(),
                None => Json::Null,
            },
        ));
        Json::Obj(obj)
    }

    /// Parse a record back from [`RunRecord::to_json`] output.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let num = |key: &str| {
            json.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("record: missing number '{key}'"))
        };
        let s = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record: missing string '{key}'"))
        };
        let config_fingerprint = match json.get("config_fingerprint") {
            Some(Json::Str(hex)) => Some(
                u64::from_str_radix(hex, 16)
                    .map_err(|e| format!("record: bad fingerprint '{hex}': {e}"))?,
            ),
            _ => None,
        };
        let phases = json
            .get("phases")
            .and_then(Json::as_arr)
            .ok_or("record: missing 'phases'")?
            .iter()
            .map(PhaseRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = json
            .get("histograms")
            .and_then(Json::as_arr)
            .ok_or("record: missing 'histograms'")?
            .iter()
            .map(HistRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let counters = match json.get("counters") {
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(k, v)| {
                    v.as_num()
                        .map(|n| (k.clone(), n as u64))
                        .ok_or_else(|| format!("record: counter '{k}' is not a number"))
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("record: missing 'counters'".into()),
        };
        let gauges = match json.get("gauges") {
            Some(Json::Obj(entries)) => entries
                .iter()
                .map(|(k, v)| match v {
                    Json::Num(n) => Ok((k.clone(), *n)),
                    Json::Null => Ok((k.clone(), f64::NAN)),
                    _ => Err(format!("record: gauge '{k}' is not a number")),
                })
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("record: missing 'gauges'".into()),
        };
        let invariants = match json.get("invariants") {
            Some(Json::Null) | None => None,
            Some(inv) => Some(InvariantSummary::from_json(inv)?),
        };
        Ok(Self {
            schema_version: num("schema_version")? as u64,
            bin: s("bin")?,
            workload: s("workload")?,
            config_fingerprint,
            threads: num("threads")? as usize,
            fault_plan: s("fault_plan")?,
            git: GitMeta::from_json(json.get("git").ok_or("record: missing 'git'")?)?,
            phases,
            counters,
            gauges,
            histograms,
            invariants,
        })
    }

    /// Write the record as pretty-stable JSON (one object, trailing
    /// newline) to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.to_json())
    }

    /// Read a record written by [`RunRecord::write`].
    pub fn read(path: &Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::default();
        m.counters.insert("comm.messages".into(), 42);
        let mut h = Histogram::default();
        for _ in 0..8 {
            h.record(0.25);
        }
        h.record(2.0);
        m.histograms.insert("sim.md_step_seconds".into(), h);
        m.gauges.entry("tddft.scf_residual".into()).or_default();
        m.gauges.get_mut("tddft.scf_residual").unwrap().last = 1e-9;
        m
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let rec = RunRecord::from_parts(
            "fig5_kernels",
            "mesh=24^3 norb=48",
            Some(0xdead_beef_0123_4567),
            8,
            "nan@3".into(),
            GitMeta::unknown(),
            &[],
            &sample_metrics(),
            None,
        );
        let json = rec.to_json();
        let back = RunRecord::from_json(&json).expect("roundtrip");
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.bin, rec.bin);
        assert_eq!(back.config_fingerprint, rec.config_fingerprint);
        assert_eq!(back.threads, 8);
        assert_eq!(back.fault_plan, "nan@3");
        assert_eq!(back.counters, rec.counters);
        assert_eq!(back.histograms, rec.histograms);
        assert_eq!(back.git, rec.git);
    }

    #[test]
    fn fingerprint_survives_as_hex_beyond_2_pow_53() {
        // 0xffff_ffff_ffff_fffe is not representable as f64; the hex-string
        // encoding must carry it exactly.
        let rec = RunRecord::from_parts(
            "bin",
            "w",
            Some(u64::MAX - 1),
            1,
            String::new(),
            GitMeta::unknown(),
            &[],
            &MetricsSnapshot::default(),
            None,
        );
        let text = rec.to_json().to_string();
        let back = RunRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.config_fingerprint, Some(u64::MAX - 1));
    }

    #[test]
    fn hist_record_rebuilds_an_equivalent_histogram() {
        let mut h = Histogram::default();
        for v in [0.5, 0.5, 1.5, 3.0, 1024.0] {
            h.record(v);
        }
        let rec = HistRecord::from_histogram("x", &h);
        let back = rec.to_histogram();
        assert_eq!(back.count, h.count);
        assert_eq!(back.counts, h.counts);
        assert_eq!(back.p50(), h.p50());
        assert_eq!(back.p99(), h.p99());
    }
}
