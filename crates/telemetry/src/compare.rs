//! Diff two [`RunRecord`]s and report regressions.

use crate::record::RunRecord;

/// Regression thresholds for [`compare`].
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Candidate histogram p50 may be at most this multiple of the
    /// baseline's before it counts as a latency regression.
    pub latency_ratio: f64,
    /// Candidate histogram p95 may be at most this multiple of the
    /// baseline's — the tail-latency gate. Tails are noisier than medians,
    /// so the default is looser; the serve queue/run latency gate tightens
    /// it explicitly.
    pub latency_tail_ratio: f64,
    /// Candidate per-phase total seconds may be at most this multiple of
    /// the baseline's.
    pub phase_ratio: f64,
    /// Latency/phase totals below this many seconds are noise and never
    /// flagged (a 2x blowup of 50µs is jitter, not a regression).
    pub noise_floor_s: f64,
    /// Absolute ceiling on the candidate's relative energy drift.
    pub max_energy_drift: f64,
    /// Absolute ceiling on the candidate's wavefunction norm error.
    pub max_norm_error: f64,
    /// Absolute ceiling on the candidate's FSSH population error.
    pub max_population_error: f64,
    /// Candidate `scaling.modeled_step_s.*` gauges (simulated per-step
    /// makespan at each rank count) may be at most this multiple of the
    /// baseline's. Modeled clocks are deterministic, so the overlap
    /// ablation gate runs this at 1.0: overlap must never cost time.
    pub modeled_step_ratio: f64,
    /// Require identical config fingerprints (apples-to-apples physics).
    pub require_same_config: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        Self {
            latency_ratio: 1.5,
            latency_tail_ratio: 2.5,
            phase_ratio: 1.5,
            noise_floor_s: 5e-3,
            max_energy_drift: 0.05,
            max_norm_error: 1e-3,
            max_population_error: 1e-3,
            modeled_step_ratio: 1.5,
            require_same_config: true,
        }
    }
}

/// One detected regression.
#[derive(Clone, Debug)]
pub struct Regression {
    /// What regressed, e.g. `"histogram sim.md_step_seconds p50"`.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Human-readable explanation with the threshold.
    pub detail: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.6e} -> {:.6e} ({})",
            self.what, self.baseline, self.candidate, self.detail
        )
    }
}

/// `candidate > baseline * ratio`, written NaN-hostile: a NaN candidate
/// is always a regression.
// The negated form is deliberate: `candidate > bound` would pass NaN.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn ratio_regressed(baseline: f64, candidate: f64, ratio: f64) -> bool {
    !(candidate <= baseline * ratio)
}

/// Diff `candidate` against `baseline`. Returns the (possibly empty)
/// regression list, or `Err` when the records are not comparable at all
/// (schema mismatch).
pub fn compare(
    baseline: &RunRecord,
    candidate: &RunRecord,
    cfg: &CompareConfig,
) -> Result<Vec<Regression>, String> {
    if baseline.schema_version != candidate.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{} vs candidate v{}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    let mut regressions = Vec::new();

    if cfg.require_same_config && baseline.config_fingerprint != candidate.config_fingerprint {
        regressions.push(Regression {
            what: "config_fingerprint".into(),
            baseline: 0.0,
            candidate: 0.0,
            detail: format!(
                "baseline {:?} vs candidate {:?} — not the same physics",
                baseline.config_fingerprint.map(|f| format!("{f:016x}")),
                candidate.config_fingerprint.map(|f| format!("{f:016x}")),
            ),
        });
    }

    // Histogram latency: compare p50s (and the p95 tail) re-derived from
    // the sparse buckets, so both sides go through identical quantile
    // math.
    for base_h in &baseline.histograms {
        let Some(cand_h) = candidate.histograms.iter().find(|h| h.name == base_h.name) else {
            continue;
        };
        let base = base_h.to_histogram();
        let cand = cand_h.to_histogram();
        for (quantile, base_q, cand_q, ratio) in [
            ("p50", base.p50(), cand.p50(), cfg.latency_ratio),
            ("p95", base.p95(), cand.p95(), cfg.latency_tail_ratio),
        ] {
            if base_q.is_nan() {
                continue;
            }
            if base_q < cfg.noise_floor_s && cand_q < cfg.noise_floor_s {
                continue;
            }
            if ratio_regressed(base_q, cand_q, ratio) {
                regressions.push(Regression {
                    what: format!("histogram {} {quantile}", base_h.name),
                    baseline: base_q,
                    candidate: cand_q,
                    detail: format!("exceeds {ratio}x baseline"),
                });
            }
        }
    }

    // Per-phase wall time.
    for base_p in &baseline.phases {
        let Some(cand_p) = candidate
            .phases
            .iter()
            .find(|p| p.name == base_p.name && p.track == base_p.track)
        else {
            continue;
        };
        if base_p.total_s < cfg.noise_floor_s && cand_p.total_s < cfg.noise_floor_s {
            continue;
        }
        if ratio_regressed(base_p.total_s, cand_p.total_s, cfg.phase_ratio) {
            regressions.push(Regression {
                what: format!("phase {} ({})", base_p.name, base_p.track),
                baseline: base_p.total_s,
                candidate: cand_p.total_s,
                detail: format!("exceeds {}x baseline", cfg.phase_ratio),
            });
        }
    }

    // Autotuner tile choices (`tune.*` gauges: GEMM mc/kc/nc per shape
    // class, stencil block size). These are small integers chosen once per
    // (shape, ISA, threads); any change between comparable runs means the
    // tuner drifted — a different cache, fingerprint, or search outcome —
    // which silently changes the perf profile. Exact equality, no ratio.
    // Keys present on only one side are skipped (a newly tuned shape
    // class is not drift).
    for (name, base_v) in &baseline.gauges {
        if !name.starts_with("tune.") {
            continue;
        }
        let Some(cand_v) = candidate.gauges.get(name) else {
            continue;
        };
        #[allow(clippy::float_cmp)] // tile sizes are exact small integers
        if cand_v != base_v {
            regressions.push(Regression {
                what: format!("tune gauge {name}"),
                baseline: *base_v,
                candidate: *cand_v,
                detail: "tile-choice drift: autotuned parameter changed between runs".into(),
            });
        }
    }

    // Modeled scaling makespans (`scaling.modeled_step_s.pN` gauges, one
    // per simulated rank count). These come from the deterministic
    // simulated clocks, not wall time, so no noise floor applies; the
    // overlap-ablation gate compares them at ratio 1.0. NaN-hostile like
    // every other ratio check. Keys on only one side are skipped (a sweep
    // over different rank counts is not a regression).
    for (name, base_v) in &baseline.gauges {
        if !name.starts_with("scaling.modeled_step_s") {
            continue;
        }
        let Some(cand_v) = candidate.gauges.get(name) else {
            continue;
        };
        if ratio_regressed(*base_v, *cand_v, cfg.modeled_step_ratio) {
            regressions.push(Regression {
                what: format!("modeled gauge {name}"),
                baseline: *base_v,
                candidate: *cand_v,
                detail: format!(
                    "modeled step time exceeds {}x baseline",
                    cfg.modeled_step_ratio
                ),
            });
        }
    }

    // Candidate invariants against absolute ceilings; `!(v <= t)` so NaN
    // (a sample that went non-finite) always trips.
    if let Some(inv) = &candidate.invariants {
        let checks = [
            ("energy drift", inv.max_energy_drift, cfg.max_energy_drift),
            ("norm error", inv.max_norm_error, cfg.max_norm_error),
            (
                "population error",
                inv.max_population_error,
                cfg.max_population_error,
            ),
        ];
        for (what, value, threshold) in checks {
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(value <= threshold) {
                regressions.push(Regression {
                    what: format!("invariant {what}"),
                    baseline: threshold,
                    candidate: value,
                    detail: "candidate exceeds absolute threshold".into(),
                });
            }
        }
    }

    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GitMeta, RunRecord};
    use crate::sample::InvariantSummary;
    use dcmesh_obs::metrics::{Histogram, MetricsSnapshot};
    use dcmesh_obs::trace::{Event, Track};

    fn record_with_step_time(step_s: f64) -> RunRecord {
        let mut m = MetricsSnapshot::default();
        let mut h = Histogram::default();
        for _ in 0..64 {
            h.record(step_s);
        }
        m.histograms.insert("sim.md_step_seconds".into(), h);
        let events = vec![Event::complete(
            "sim.md_step",
            Track::Host,
            0.0,
            step_s * 64.0 * 1e6,
        )];
        RunRecord::from_parts(
            "fig5_kernels",
            "test",
            Some(7),
            4,
            String::new(),
            GitMeta::unknown(),
            &events,
            &m,
            Some(InvariantSummary {
                samples: 64,
                initial_total_energy: -1.0,
                final_total_energy: -1.0,
                max_energy_drift: 1e-6,
                max_norm_error: 1e-9,
                max_population_error: 1e-12,
                max_occupation_drift: 1e-12,
            }),
        )
    }

    #[test]
    fn identical_records_have_no_regressions() {
        let rec = record_with_step_time(0.05);
        let regs = compare(&rec, &rec, &CompareConfig::default()).unwrap();
        assert!(regs.is_empty(), "self-compare must pass: {regs:?}");
    }

    #[test]
    fn two_x_slowdown_is_a_regression() {
        let base = record_with_step_time(0.05);
        let slow = record_with_step_time(0.10);
        let regs = compare(&base, &slow, &CompareConfig::default()).unwrap();
        assert!(
            regs.iter().any(|r| r.what.contains("sim.md_step_seconds")),
            "2x p50 must trip the 1.5x latency gate: {regs:?}"
        );
        assert!(
            regs.iter().any(|r| r.what.contains("phase sim.md_step")),
            "2x phase total must trip the phase gate: {regs:?}"
        );
        // And the reverse direction (a speedup) is not a regression.
        let regs = compare(&slow, &base, &CompareConfig::default()).unwrap();
        assert!(regs.is_empty(), "speedups are fine: {regs:?}");
    }

    #[test]
    fn sub_noise_floor_jitter_is_ignored() {
        let base = record_with_step_time(1e-5);
        let jittery = record_with_step_time(3e-5);
        let regs = compare(&base, &jittery, &CompareConfig::default()).unwrap();
        assert!(regs.is_empty(), "microsecond jitter is noise: {regs:?}");
    }

    #[test]
    fn tail_latency_blowup_trips_the_p95_gate() {
        // Identical medians, but the candidate grows a fat tail: 8 of 64
        // samples land two orders of magnitude out. The p50 gate stays
        // quiet; the p95 gate must fire.
        let mk = |tail_s: f64| {
            let mut m = MetricsSnapshot::default();
            let mut h = Histogram::default();
            for i in 0..64 {
                h.record(if i % 8 == 0 { tail_s } else { 0.05 });
            }
            m.histograms.insert("serve.run_seconds".into(), h);
            RunRecord::from_parts(
                "serve_load",
                "test",
                None,
                4,
                String::new(),
                GitMeta::unknown(),
                &[],
                &m,
                None,
            )
        };
        let base = mk(0.05);
        let fat_tail = mk(8.0);
        let regs = compare(&base, &fat_tail, &CompareConfig::default()).unwrap();
        assert!(
            regs.iter()
                .any(|r| r.what == "histogram serve.run_seconds p95"),
            "tail blowup must trip the p95 gate: {regs:?}"
        );
        assert!(
            !regs.iter().any(|r| r.what.ends_with("p50")),
            "median unchanged — p50 must stay quiet: {regs:?}"
        );
        // Self-compare is clean even with the tail present.
        let regs = compare(&fat_tail, &fat_tail, &CompareConfig::default()).unwrap();
        assert!(regs.is_empty(), "{regs:?}");
    }

    #[test]
    fn energy_drift_violation_is_a_regression() {
        let base = record_with_step_time(0.05);
        let mut drifted = record_with_step_time(0.05);
        drifted.invariants.as_mut().unwrap().max_energy_drift = 0.2;
        let regs = compare(&base, &drifted, &CompareConfig::default()).unwrap();
        assert!(
            regs.iter().any(|r| r.what == "invariant energy drift"),
            "20% drift must trip the 5% ceiling: {regs:?}"
        );
    }

    #[test]
    fn nan_invariants_are_regressions() {
        let base = record_with_step_time(0.05);
        let mut poisoned = record_with_step_time(0.05);
        poisoned.invariants.as_mut().unwrap().max_norm_error = f64::NAN;
        let regs = compare(&base, &poisoned, &CompareConfig::default()).unwrap();
        assert!(regs.iter().any(|r| r.what == "invariant norm error"));
    }

    #[test]
    fn fingerprint_mismatch_is_flagged_when_required() {
        let base = record_with_step_time(0.05);
        let mut other = record_with_step_time(0.05);
        other.config_fingerprint = Some(99);
        let regs = compare(&base, &other, &CompareConfig::default()).unwrap();
        assert!(regs.iter().any(|r| r.what == "config_fingerprint"));
        let relaxed = CompareConfig {
            require_same_config: false,
            ..CompareConfig::default()
        };
        let regs = compare(&base, &other, &relaxed).unwrap();
        assert!(regs.is_empty());
    }

    #[test]
    fn tile_choice_drift_is_a_regression() {
        let base = {
            let mut r = record_with_step_time(0.05);
            r.gauges
                .insert("tune.gemm-m64-n16-k524288.kc".into(), 256.0);
            r.gauges.insert("tune.stencil.block".into(), 32.0);
            r
        };
        // Identical tiles: clean.
        let regs = compare(&base, &base, &CompareConfig::default()).unwrap();
        assert!(regs.is_empty(), "same tiles must pass: {regs:?}");
        // Changed kc: flagged exactly, no ratio slack.
        let mut drifted = base.clone();
        drifted
            .gauges
            .insert("tune.gemm-m64-n16-k524288.kc".into(), 128.0);
        let regs = compare(&base, &drifted, &CompareConfig::default()).unwrap();
        assert!(
            regs.iter()
                .any(|r| r.what == "tune gauge tune.gemm-m64-n16-k524288.kc"),
            "kc 256 -> 128 must be flagged: {regs:?}"
        );
        // A shape class tuned only in the candidate is not drift.
        let mut extra = base.clone();
        extra.gauges.insert("tune.gemm-m8-n8-k8.mc".into(), 32.0);
        let regs = compare(&base, &extra, &CompareConfig::default()).unwrap();
        assert!(regs.is_empty(), "new class is not drift: {regs:?}");
    }

    #[test]
    fn modeled_step_gauges_gate_at_configured_ratio() {
        let with_steps = |p8: f64, p16: f64| {
            let mut r = record_with_step_time(0.05);
            r.gauges.insert("scaling.modeled_step_s.p8".into(), p8);
            r.gauges.insert("scaling.modeled_step_s.p16".into(), p16);
            r
        };
        let base = with_steps(1.0, 1.1);
        // At the strict 1.0 ratio even a 1% slowdown at one rank count is
        // flagged — the overlap-ablation contract.
        let strict = CompareConfig {
            modeled_step_ratio: 1.0,
            ..CompareConfig::default()
        };
        let slower = with_steps(1.0, 1.111);
        let regs = compare(&base, &slower, &strict).unwrap();
        assert!(
            regs.iter()
                .any(|r| r.what == "modeled gauge scaling.modeled_step_s.p16"),
            "1% modeled slowdown must trip ratio 1.0: {regs:?}"
        );
        // Equal or faster passes; default 1.5 tolerates the 1%.
        assert!(compare(&base, &base, &strict).unwrap().is_empty());
        let faster = with_steps(0.9, 1.0);
        assert!(compare(&base, &faster, &strict).unwrap().is_empty());
        assert!(compare(&base, &slower, &CompareConfig::default())
            .unwrap()
            .is_empty());
        // NaN is always a regression.
        let poisoned = with_steps(1.0, f64::NAN);
        assert!(!compare(&base, &poisoned, &strict).unwrap().is_empty());
        // A rank count present only on one side is skipped.
        let mut extra = base.clone();
        extra
            .gauges
            .insert("scaling.modeled_step_s.p32".into(), 9.0);
        assert!(compare(&base, &extra, &strict).unwrap().is_empty());
    }

    #[test]
    fn schema_mismatch_is_an_error_not_a_regression() {
        let base = record_with_step_time(0.05);
        let mut future = record_with_step_time(0.05);
        future.schema_version += 1;
        assert!(compare(&base, &future, &CompareConfig::default()).is_err());
    }
}
