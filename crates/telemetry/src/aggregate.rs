//! Cross-rank telemetry aggregation: min/mean/max and load imbalance
//! for per-rank series gathered through `dcmesh-comm`.
//!
//! The load-imbalance figure `max/mean - 1` is the paper's scaling
//! methodology: a perfectly balanced decomposition gives 0, and a domain
//! whose rank takes twice the mean step time gives 1.

use dcmesh_comm::Rank;

/// Min/mean/max over one value observed on every rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankStat {
    /// Smallest per-rank value.
    pub min: f64,
    /// Mean over ranks.
    pub mean: f64,
    /// Largest per-rank value.
    pub max: f64,
}

impl RankStat {
    /// Load imbalance `max/mean - 1`; 0 for perfectly balanced work, NaN
    /// when the mean is 0 or any rank reported NaN.
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            if self.max == 0.0 {
                0.0
            } else {
                f64::NAN
            }
        } else {
            self.max / self.mean - 1.0
        }
    }
}

/// Min/mean/max over a per-rank slice. NaN-poisoning: one NaN entry makes
/// every field NaN (an aggregate must not hide a poisoned rank).
pub fn summarize(values: &[f64]) -> RankStat {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return RankStat {
            min: f64::NAN,
            mean: f64::NAN,
            max: f64::NAN,
        };
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    RankStat {
        min,
        mean: sum / values.len() as f64,
        max,
    }
}

/// Gather this rank's telemetry `values` to rank 0 and summarize each
/// position across ranks. `Some(stats)` on root (one [`RankStat`] per
/// value), `None` elsewhere. Every rank must pass the same number of
/// values in the same order (e.g. `[step_seconds, comm_bytes, ...]`).
pub fn gather_stats(rank: &mut Rank, values: &[f64]) -> Option<Vec<RankStat>> {
    let rows = rank.gather(0, values)?;
    let width = values.len();
    Some(
        (0..width)
            .map(|i| {
                let column: Vec<f64> = rows.iter().map(|row| row[i]).collect();
                summarize(&column)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_comm::{NetworkModel, World};

    #[test]
    fn summarize_computes_extrema_and_mean() {
        let s = summarize(&[1.0, 2.0, 3.0, 6.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.max, 6.0);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_work_has_zero_imbalance() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.imbalance(), 0.0);
        let zeros = summarize(&[0.0, 0.0]);
        assert_eq!(zeros.imbalance(), 0.0);
    }

    #[test]
    fn a_nan_rank_poisons_the_aggregate() {
        let s = summarize(&[1.0, f64::NAN, 3.0]);
        assert!(s.min.is_nan() && s.mean.is_nan() && s.max.is_nan());
        assert!(s.imbalance().is_nan());
    }

    #[test]
    fn gather_stats_summarizes_each_position_across_ranks() {
        let results = World::run(4, NetworkModel::ideal(), |rank| {
            // Two telemetry values per rank: a ramp (0,1,2,3) and a
            // constant.
            let id = rank.id() as f64;
            gather_stats(rank, &[id, 7.0])
        });
        let root = results[0].as_ref().expect("root gets the stats");
        assert!(results[1..].iter().all(Option::is_none));
        assert_eq!(root.len(), 2);
        assert_eq!(root[0].min, 0.0);
        assert_eq!(root[0].mean, 1.5);
        assert_eq!(root[0].max, 3.0);
        assert_eq!(root[1], summarize(&[7.0; 4]));
        assert!((root[0].imbalance() - 1.0).abs() < 1e-12);
    }
}
