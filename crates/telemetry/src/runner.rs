//! [`TelemetryRunner`]: a [`ResilientRunner`] with the flight recorder
//! and invariant watchdog wired into its step-observer hook.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use dcmesh_core::{DcMeshConfig, DcMeshSim, ResilienceError, ResilientRunner, StepReport};

use crate::recorder::{FlightRecorder, RecorderConfig};
use crate::sample::InvariantSummary;
use crate::watchdog::{Watchdog, WatchdogThresholds, WatchdogWarning};

/// Something the telemetry layer noticed during a run, in the order it
/// happened.
#[derive(Clone, Debug)]
pub enum TelemetryEvent {
    /// The watchdog flagged a drift threshold. Emitted from the step
    /// observer, which `ResilientRunner` fires *before* its finiteness
    /// check — so for a poisoned step the warning is recorded strictly
    /// before the matching [`TelemetryEvent::Rollback`].
    Warning(WatchdogWarning),
    /// The runner rolled back to its last snapshot.
    Rollback {
        /// MD step counter after the rollback restored the snapshot.
        step: u64,
        /// Total rollbacks so far.
        rollbacks: u32,
    },
}

/// The mutable telemetry state shared with the step-observer closure.
#[derive(Debug)]
struct Flight {
    recorder: FlightRecorder,
    watchdog: Watchdog,
    events: Vec<TelemetryEvent>,
}

/// A [`ResilientRunner`] whose every attempted step feeds the
/// [`FlightRecorder`] and [`Watchdog`].
///
/// The observer hook runs before the runner's non-finite check, so a step
/// that degrades (or poisons) the invariants produces its watchdog
/// warnings before any rollback event — the flight recorder shows the
/// failure building up, not just the recovery.
pub struct TelemetryRunner {
    runner: ResilientRunner,
    shared: Rc<RefCell<Flight>>,
}

impl fmt::Debug for TelemetryRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryRunner")
            .field("runner", &self.runner)
            .finish_non_exhaustive()
    }
}

impl TelemetryRunner {
    /// Wrap a fresh simulation with the given recorder and watchdog
    /// settings, snapshotting every `checkpoint_every` good steps.
    pub fn new(
        cfg: DcMeshConfig,
        checkpoint_every: u64,
        recorder: RecorderConfig,
        thresholds: WatchdogThresholds,
    ) -> Self {
        Self::from_runner(
            ResilientRunner::new(cfg, checkpoint_every),
            recorder,
            thresholds,
        )
    }

    /// Wrap an existing [`ResilientRunner`], installing the telemetry
    /// step observer (replacing any observer already set on it).
    pub fn from_runner(
        mut runner: ResilientRunner,
        recorder: RecorderConfig,
        thresholds: WatchdogThresholds,
    ) -> Self {
        let shared = Rc::new(RefCell::new(Flight {
            recorder: FlightRecorder::new(recorder),
            watchdog: Watchdog::new(thresholds),
            events: Vec::new(),
        }));
        let hook = Rc::clone(&shared);
        runner.set_step_observer(move |sim: &DcMeshSim, report: &StepReport| {
            let mut fl = hook.borrow_mut();
            let fl = &mut *fl;
            let sample = fl.recorder.observe(sim, report);
            if let Some(inv) = &sample.invariants {
                let step = sample.step;
                let warnings = fl.watchdog.check(step, inv);
                if !warnings.is_empty() {
                    dcmesh_obs::metrics::counter_add(
                        "telemetry.watchdog_warnings",
                        warnings.len() as u64,
                    );
                }
                fl.events
                    .extend(warnings.into_iter().map(TelemetryEvent::Warning));
            }
        });
        Self { runner, shared }
    }

    /// Advance one MD step through the resilient runner, recording a
    /// rollback event if one happened.
    pub fn step(&mut self) -> Result<StepReport, ResilienceError> {
        let before = self.runner.rollbacks();
        let result = self.runner.step();
        let after = self.runner.rollbacks();
        if after > before {
            self.shared
                .borrow_mut()
                .events
                .push(TelemetryEvent::Rollback {
                    step: self.runner.md_steps(),
                    rollbacks: after,
                });
        }
        result
    }

    /// Run until `target` completed MD steps.
    pub fn run_to(&mut self, target: u64) -> Result<Option<StepReport>, ResilienceError> {
        let mut last = None;
        while self.runner.md_steps() < target {
            last = Some(self.step()?);
        }
        Ok(last)
    }

    /// The wrapped simulation.
    pub fn sim(&self) -> &DcMeshSim {
        self.runner.sim()
    }

    /// The underlying resilient runner (for its snapshot/config accessors
    /// — the serve scheduler's eviction path retries from
    /// `runner().last_snapshot()`).
    pub fn runner(&self) -> &ResilientRunner {
        &self.runner
    }

    /// Rollbacks performed so far.
    pub fn rollbacks(&self) -> u32 {
        self.runner.rollbacks()
    }

    /// Telemetry events in occurrence order (warnings interleaved with
    /// rollbacks).
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.shared.borrow().events.clone()
    }

    /// Whole-run invariant summary from the recorder.
    pub fn summary(&self) -> Option<InvariantSummary> {
        self.shared.borrow().recorder.summary()
    }

    /// The buffered step samples as JSONL.
    pub fn to_jsonl(&self) -> String {
        self.shared.borrow().recorder.to_jsonl()
    }

    /// Flush the buffered step samples to `path` as JSONL.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.shared.borrow().recorder.write_jsonl(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_ckpt::fault::{self, FaultPlan};

    fn quick_cfg() -> DcMeshConfig {
        DcMeshConfig {
            n_qd: 5,
            ..DcMeshConfig::default()
        }
    }

    #[test]
    fn clean_run_records_without_events() {
        let _guard = fault::test_lock();
        let mut tr = TelemetryRunner::new(
            quick_cfg(),
            2,
            RecorderConfig::default(),
            WatchdogThresholds::default(),
        );
        tr.run_to(3).unwrap();
        assert_eq!(tr.rollbacks(), 0);
        assert!(tr.events().is_empty(), "no drift, no rollback");
        let summary = tr.summary().expect("stride-1 recorder sampled");
        assert_eq!(summary.samples, 3);
        assert!(summary.max_energy_drift < 0.05);
    }

    #[test]
    fn watchdog_warning_precedes_rollback_for_an_injected_nan() {
        let plan = FaultPlan {
            nan_at_step: Some(1),
            ..FaultPlan::none()
        };
        fault::with_installed(plan, || {
            let mut tr = TelemetryRunner::new(
                quick_cfg(),
                1,
                RecorderConfig::default(),
                WatchdogThresholds::default(),
            );
            tr.run_to(3).unwrap();
            assert_eq!(tr.rollbacks(), 1);
            let events = tr.events();
            let first_warning = events
                .iter()
                .position(|e| matches!(e, TelemetryEvent::Warning(_)))
                .expect("poisoned step must warn");
            let first_rollback = events
                .iter()
                .position(|e| matches!(e, TelemetryEvent::Rollback { .. }))
                .expect("NaN injection must roll back");
            assert!(
                first_warning < first_rollback,
                "drift warning must be ordered strictly before the rollback \
                 (events: {events:?})"
            );
            // The run recovered: the post-rollback samples are finite again.
            assert!(tr.sim().is_finite());
            let summary = tr.summary().unwrap();
            assert!(
                summary.max_energy_drift.is_nan(),
                "the poisoned sample must stay visible in the summary"
            );
        });
    }
}
