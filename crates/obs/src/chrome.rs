//! Chrome-trace (Perfetto-loadable) JSON export.
//!
//! Layout: pid 1 is the host process (wall or counter clock, one lane per
//! recording thread), pid 2 is the modeled device (roofline clock, one
//! lane per stream). Open the file at `ui.perfetto.dev` or
//! `chrome://tracing`.

use std::io::Write as _;

use crate::json::Json;
use crate::trace::{Event, EventKind, Track};

const HOST_PID: f64 = 1.0;
const DEVICE_PID: f64 = 2.0;

fn phase_code(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Complete => "X",
        EventKind::Instant => "i",
    }
}

fn event_json(ev: &Event) -> Json {
    let (pid, cat) = match ev.track {
        Track::Host => (HOST_PID, "host"),
        Track::Device { .. } => (DEVICE_PID, "device"),
    };
    let mut members = vec![
        ("name".to_string(), Json::Str(ev.name.to_string())),
        ("cat".to_string(), Json::Str(cat.to_string())),
        ("ph".to_string(), Json::Str(phase_code(ev.kind).to_string())),
        ("ts".to_string(), Json::Num(ev.ts_us)),
        ("pid".to_string(), Json::Num(pid)),
        ("tid".to_string(), Json::Num(ev.thread as f64)),
    ];
    if ev.kind == EventKind::Complete {
        members.push(("dur".to_string(), Json::Num(ev.dur_us)));
    }
    if ev.kind == EventKind::Instant {
        members.push(("s".to_string(), Json::Str("t".to_string())));
    }
    let mut args = Vec::new();
    if ev.bytes > 0 {
        args.push(("bytes".to_string(), Json::Num(ev.bytes as f64)));
    }
    if let Track::Device { stream } = ev.track {
        args.push(("stream".to_string(), Json::Num(stream as f64)));
    }
    if ev.id != 0 {
        args.push(("span_id".to_string(), Json::Num(ev.id as f64)));
    }
    if ev.parent != 0 {
        args.push(("parent_id".to_string(), Json::Num(ev.parent as f64)));
    }
    if !args.is_empty() {
        members.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(members)
}

fn metadata(pid: f64, name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str("process_name".to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::Num(pid)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
        ),
    ])
}

/// Build the full trace document. `events` should already be in
/// `(ts, seq)` order (as [`crate::trace::drain`] returns them); within
/// each track the emitted timestamps are then monotonically ordered.
pub fn chrome_trace(events: &[Event]) -> Json {
    let mut items = vec![
        metadata(HOST_PID, "host (wall clock)"),
        metadata(DEVICE_PID, "device (modeled clock)"),
    ];
    items.extend(events.iter().map(event_json));
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(items)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
}

/// Serialize `events` and write them to `path`.
pub fn write_chrome_trace(
    path: impl AsRef<std::path::Path>,
    events: &[Event],
) -> std::io::Result<()> {
    let doc = chrome_trace(events).to_string();
    let mut f = std::fs::File::create(path)?;
    f.write_all(doc.as_bytes())
}
