//! Aggregation over a drained event timeline: flat per-phase totals (for
//! the `--report` table) and span-tree reconstruction (for tests and
//! hierarchy-aware consumers).

use std::collections::BTreeMap;

use crate::trace::{Event, EventKind, Track};

/// Flat totals for one phase name on one track.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseAgg {
    /// Phase name, e.g. `"lfd.kinetic"`.
    pub name: String,
    /// `"host"` or `"device"`.
    pub track: &'static str,
    /// Completed occurrences (Begin/End pairs plus Complete slices).
    pub count: u64,
    /// Total time in seconds.
    pub total_s: f64,
    /// Total payload bytes attached to the occurrences.
    pub bytes: u64,
}

fn track_label(track: Track) -> &'static str {
    match track {
        Track::Host => "host",
        Track::Device { .. } => "device",
    }
}

/// Aggregate per `(name, track)`: Complete slices contribute their
/// duration directly; Begin/End pairs are matched by span id. Unpaired
/// Begins (spans still open at drain) are ignored. Sorted by track then
/// name.
pub fn aggregate(events: &[Event]) -> Vec<PhaseAgg> {
    let mut begin_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut agg: BTreeMap<(&'static str, String), (u64, f64, u64)> = BTreeMap::new();
    let mut add = |track: &'static str, name: &str, dur_us: f64, bytes: u64| {
        let slot = agg.entry((track, name.to_string())).or_insert((0, 0.0, 0));
        slot.0 += 1;
        slot.1 += dur_us;
        slot.2 += bytes;
    };
    for ev in events {
        match ev.kind {
            EventKind::Complete => add(track_label(ev.track), &ev.name, ev.dur_us, ev.bytes),
            EventKind::Begin => {
                begin_ts.insert(ev.id, ev.ts_us);
            }
            EventKind::End => {
                if let Some(t0) = begin_ts.remove(&ev.id) {
                    add(track_label(ev.track), &ev.name, ev.ts_us - t0, ev.bytes);
                }
            }
            EventKind::Instant => {}
        }
    }
    agg.into_iter()
        .map(|((track, name), (count, dur_us, bytes))| PhaseAgg {
            name,
            track,
            count,
            total_s: dur_us * 1e-6,
            bytes,
        })
        .collect()
}

/// Total seconds recorded for one phase name (any track).
pub fn total_seconds(events: &[Event], name: &str) -> f64 {
    aggregate(events)
        .iter()
        .filter(|a| a.name == name)
        .map(|a| a.total_s)
        .sum()
}

/// One reconstructed span.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Enter timestamp (µs).
    pub start_us: f64,
    /// Duration (µs); 0 if the span never closed.
    pub dur_us: f64,
}

/// The span hierarchy recovered from a merged timeline.
#[derive(Clone, Debug, Default)]
pub struct SpanTree {
    /// All spans, in Begin order.
    pub nodes: Vec<SpanNode>,
}

impl SpanTree {
    /// Rebuild the tree from drained events, linking Begin/End pairs by
    /// span id. Works regardless of which thread recorded which event —
    /// that is the property the rayon nesting tests pin down.
    pub fn build(events: &[Event]) -> Self {
        let mut nodes: Vec<SpanNode> = Vec::new();
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Begin => {
                    by_id.insert(ev.id, nodes.len());
                    nodes.push(SpanNode {
                        name: ev.name.to_string(),
                        id: ev.id,
                        parent: ev.parent,
                        start_us: ev.ts_us,
                        dur_us: 0.0,
                    });
                }
                EventKind::End => {
                    if let Some(&i) = by_id.get(&ev.id) {
                        nodes[i].dur_us = ev.ts_us - nodes[i].start_us;
                    }
                }
                _ => {}
            }
        }
        Self { nodes }
    }

    /// The span with the given id.
    pub fn node(&self, id: u64) -> Option<&SpanNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// All spans with the given name.
    pub fn named(&self, name: &str) -> Vec<&SpanNode> {
        self.nodes.iter().filter(|n| n.name == name).collect()
    }

    /// Ids of the direct children of `id`.
    pub fn children_of(&self, id: u64) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|n| n.parent == id)
            .map(|n| n.id)
            .collect()
    }
}
