//! Injectable timebase for host-track events.
//!
//! Two modes:
//!
//! * [`ClockMode::Wall`] — microseconds of wall time since the collector
//!   was enabled. The right choice for real profiling runs.
//! * [`ClockMode::Counter`] — a deterministic monotonic counter advancing
//!   by a fixed step per read. The right choice for snapshot-tested
//!   output, where raw wall-clock would make traces non-reproducible.
//!
//! Device-track events never consult this clock: their timestamps come
//! from the roofline model's stream timelines, which are deterministic by
//! construction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Source of host timestamps.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Microseconds of wall time since the epoch (collector enable).
    Wall,
    /// Deterministic counter: each read advances by `step_us`.
    Counter {
        /// Microseconds the clock advances per read.
        step_us: u64,
    },
}

const MODE_WALL: u64 = 0;

/// Encoded mode: 0 = wall, otherwise the counter step in microseconds.
static MODE: AtomicU64 = AtomicU64::new(MODE_WALL);
static COUNTER: AtomicU64 = AtomicU64::new(0);

fn epoch_cell() -> &'static Mutex<Option<Instant>> {
    static EPOCH: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    EPOCH.get_or_init(|| Mutex::new(None))
}

/// Select the timebase. Call before `dcmesh_obs::enable()`.
pub fn set_mode(mode: ClockMode) {
    let enc = match mode {
        ClockMode::Wall => MODE_WALL,
        ClockMode::Counter { step_us } => step_us.max(1),
    };
    MODE.store(enc, Ordering::SeqCst);
    COUNTER.store(0, Ordering::SeqCst);
}

/// Pin the wall epoch to "now" if it isn't pinned yet.
pub(crate) fn ensure_epoch() {
    let mut g = epoch_cell().lock().unwrap_or_else(|e| e.into_inner());
    if g.is_none() {
        *g = Some(Instant::now());
    }
}

/// Forget the epoch and zero the counter (collector reset).
pub(crate) fn reset() {
    *epoch_cell().lock().unwrap_or_else(|e| e.into_inner()) = None;
    COUNTER.store(0, Ordering::SeqCst);
}

/// Current host timestamp in microseconds under the active mode.
pub fn now_us() -> f64 {
    match MODE.load(Ordering::Relaxed) {
        MODE_WALL => {
            ensure_epoch();
            let g = epoch_cell().lock().unwrap_or_else(|e| e.into_inner());
            g.expect("epoch pinned above").elapsed().as_secs_f64() * 1e6
        }
        step => COUNTER.fetch_add(step, Ordering::Relaxed) as f64,
    }
}
