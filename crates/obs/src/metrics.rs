//! Global metrics registry: counters, gauges, log₂ histograms.
//!
//! Everything is gated on [`crate::enabled`] — when the collector is off a
//! recording call costs one relaxed atomic load and returns.
//!
//! Histogram buckets are powers of two: bucket `e` covers `[2^e, 2^(e+1))`.
//! The bucket index is taken straight from the IEEE-754 exponent bits, so
//! boundaries are *exact* at powers of two — `2.0` lands in bucket 1,
//! the next float below it in bucket 0 — with none of the rounding slop a
//! `log2().floor()` would introduce.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::enabled;

/// Smallest tracked exponent; values below `2^MIN_EXP` underflow.
pub const MIN_EXP: i32 = -64;
/// Largest tracked exponent; values at or above `2^(MAX_EXP+1)` overflow.
pub const MAX_EXP: i32 = 64;

/// A log₂-bucketed histogram of positive values.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `counts[i]` counts values in `[2^(MIN_EXP+i), 2^(MIN_EXP+i+1))`.
    pub counts: Vec<u64>,
    /// Values `<= 0` or below `2^MIN_EXP`.
    pub underflow: u64,
    /// Values `>= 2^(MAX_EXP+1)` (and non-finite ones).
    pub overflow: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; (MAX_EXP - MIN_EXP + 1) as usize],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Exponent `e` such that `v` is in `[2^e, 2^(e+1))`, read from the
/// IEEE-754 exponent bits (exact at powers of two). `None` for values
/// that are not finite positive normals/subnormals.
pub fn bucket_exponent(v: f64) -> Option<i32> {
    if !v.is_finite() || v <= 0.0 {
        return None;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: below every bucket we track.
        Some(i32::MIN)
    } else {
        Some(biased - 1023)
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        match bucket_exponent(v) {
            None if v.is_finite() => self.underflow += 1, // v <= 0
            None => self.overflow += 1,                   // NaN / inf
            Some(e) if e < MIN_EXP => self.underflow += 1,
            Some(e) if e > MAX_EXP => self.overflow += 1,
            Some(e) => self.counts[(e - MIN_EXP) as usize] += 1,
        }
    }

    /// Count in the bucket covering `[2^e, 2^(e+1))`.
    pub fn bucket(&self, e: i32) -> u64 {
        if (MIN_EXP..=MAX_EXP).contains(&e) {
            self.counts[(e - MIN_EXP) as usize]
        } else {
            0
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the log₂ buckets.
    ///
    /// The rank `ceil(q * count)` (at least 1) is located in the
    /// underflow / bucket / overflow sequence; within a bucket the value
    /// is interpolated **geometrically** (log-linear), which is the
    /// natural interpolation for exponentially sized buckets. The result
    /// is clamped to the observed `[min, max]`, so a histogram holding a
    /// single repeated value reports that value exactly — including at
    /// bucket boundaries like `2.0`, which the IEEE-754 bucketing puts
    /// exactly in `[2, 4)`. Returns `NaN` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let bucketed = self.underflow + self.overflow + self.counts.iter().sum::<u64>();
        if bucketed == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * bucketed as f64).ceil() as u64).clamp(1, bucketed);
        let clamp = |v: f64| {
            if self.min.is_finite() && self.max.is_finite() {
                v.clamp(self.min, self.max)
            } else {
                v
            }
        };
        let mut cum = self.underflow;
        if target <= cum {
            // Below every tracked bucket: the observed minimum is the best
            // (and for all-underflow histograms, the only) estimate.
            return clamp(if self.min.is_finite() { self.min } else { 0.0 });
        }
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if target <= cum + n {
                let e = MIN_EXP + i as i32;
                // Midpoint-rank interpolation: rank k of n sits at
                // (k - 1/2)/n through the bucket, so the estimate stays
                // strictly inside [2^e, 2^(e+1)) before clamping.
                let frac = ((target - cum) as f64 - 0.5) / n as f64;
                return clamp(2f64.powi(e) * 2f64.powf(frac));
            }
            cum += n;
        }
        // Overflow (or numeric fall-through): report the observed maximum.
        clamp(if self.max.is_finite() {
            self.max
        } else {
            f64::INFINITY
        })
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Latest-value metric with running extrema (e.g. the SCF residual per
/// iteration).
#[derive(Clone, Debug)]
pub struct Gauge {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub count: u64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            last: f64::NAN,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

/// Snapshot of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, Gauge>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<MetricsSnapshot> {
    static REG: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(MetricsSnapshot::default()))
}

fn with_registry<T>(f: impl FnOnce(&mut MetricsSnapshot) -> T) -> T {
    f(&mut registry().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Add `n` to the counter `name`.
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| match r.counters.get_mut(name) {
        Some(c) => *c += n,
        None => {
            r.counters.insert(name.to_string(), n);
        }
    });
}

/// Set the gauge `name` to `v`.
pub fn gauge_set(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let g = match r.gauges.get_mut(name) {
            Some(g) => g,
            None => r.gauges.entry(name.to_string()).or_default(),
        };
        g.last = v;
        if v.is_finite() {
            g.min = g.min.min(v);
            g.max = g.max.max(v);
        }
        g.count += 1;
    });
}

/// Record `v` into the histogram `name`.
pub fn histogram_record(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let h = match r.histograms.get_mut(name) {
            Some(h) => h,
            None => r.histograms.entry(name.to_string()).or_default(),
        };
        h.record(v);
    });
}

/// Clone the current state of every metric.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| r.clone())
}

/// Drop every registered metric.
pub fn clear() {
    with_registry(|r| *r = MetricsSnapshot::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_empty_histogram_is_nan() {
        let h = Histogram::default();
        assert!(h.quantile(0.5).is_nan());
    }

    #[test]
    fn single_repeated_value_is_reported_exactly() {
        // 2.0 sits exactly on a bucket boundary: the IEEE-754 exponent
        // bucketing puts it in [2, 4), and the [min, max] clamp collapses
        // the in-bucket interpolation back to the exact value.
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.record(2.0);
        }
        assert_eq!(h.bucket(1), 100);
        assert_eq!(h.bucket(0), 0);
        assert_eq!(h.p50(), 2.0);
        assert_eq!(h.p99(), 2.0);
    }

    #[test]
    fn boundary_neighbors_land_in_adjacent_buckets() {
        let mut h = Histogram::default();
        let below = f64::from_bits(2.0f64.to_bits() - 1); // next float below 2
        h.record(below);
        h.record(2.0);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        // Rank 1 of 2 is the sub-2 value, rank 2 the 2.0.
        assert!(h.quantile(0.5) < 2.0);
        assert_eq!(h.quantile(1.0), 2.0);
    }

    #[test]
    fn quantiles_are_monotone_and_within_bucket_ranges() {
        let mut h = Histogram::default();
        // 90 values in [1, 2), 10 values in [1024, 2048).
        for i in 0..90 {
            h.record(1.0 + (i as f64) / 100.0);
        }
        for i in 0..10 {
            h.record(1024.0 + i as f64);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!((1.0..2.0).contains(&p50), "p50 = {p50}");
        assert!((1024.0..2048.0).contains(&p95), "p95 = {p95}");
        assert!((1024.0..2048.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p95 && p95 <= p99);
    }

    #[test]
    fn underflow_and_overflow_ranks_resolve_to_extrema() {
        let mut h = Histogram::default();
        h.record(0.0); // underflow (v <= 0)
        h.record(1.5);
        h.record(f64::INFINITY); // overflow (non-finite)
                                 // min only tracks finite values, so the low quantile clamps to 0.0.
        assert_eq!(h.quantile(0.0), 0.0);
        // The middle rank interpolates inside its [1, 2) bucket, capped by
        // the observed maximum.
        let mid = h.quantile(0.5);
        assert!((1.0..=1.5).contains(&mid), "mid = {mid}");
        // The overflow rank clamps to the largest *finite* observation.
        assert_eq!(h.quantile(1.0), 1.5);
    }

    #[test]
    fn subnormal_values_count_as_underflow() {
        let mut h = Histogram::default();
        h.record(f64::MIN_POSITIVE / 4.0);
        assert_eq!(h.underflow, 1);
        let q = h.quantile(0.5);
        assert!(q > 0.0 && q < f64::MIN_POSITIVE);
    }
}
