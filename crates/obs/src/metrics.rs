//! Global metrics registry: counters, gauges, log₂ histograms.
//!
//! Everything is gated on [`crate::enabled`] — when the collector is off a
//! recording call costs one relaxed atomic load and returns.
//!
//! Histogram buckets are powers of two: bucket `e` covers `[2^e, 2^(e+1))`.
//! The bucket index is taken straight from the IEEE-754 exponent bits, so
//! boundaries are *exact* at powers of two — `2.0` lands in bucket 1,
//! the next float below it in bucket 0 — with none of the rounding slop a
//! `log2().floor()` would introduce.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::enabled;

/// Smallest tracked exponent; values below `2^MIN_EXP` underflow.
pub const MIN_EXP: i32 = -64;
/// Largest tracked exponent; values at or above `2^(MAX_EXP+1)` overflow.
pub const MAX_EXP: i32 = 64;

/// A log₂-bucketed histogram of positive values.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `counts[i]` counts values in `[2^(MIN_EXP+i), 2^(MIN_EXP+i+1))`.
    pub counts: Vec<u64>,
    /// Values `<= 0` or below `2^MIN_EXP`.
    pub underflow: u64,
    /// Values `>= 2^(MAX_EXP+1)` (and non-finite ones).
    pub overflow: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; (MAX_EXP - MIN_EXP + 1) as usize],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Exponent `e` such that `v` is in `[2^e, 2^(e+1))`, read from the
/// IEEE-754 exponent bits (exact at powers of two). `None` for values
/// that are not finite positive normals/subnormals.
pub fn bucket_exponent(v: f64) -> Option<i32> {
    if !v.is_finite() || v <= 0.0 {
        return None;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if biased == 0 {
        // Subnormal: below every bucket we track.
        Some(i32::MIN)
    } else {
        Some(biased - 1023)
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        match bucket_exponent(v) {
            None if v.is_finite() => self.underflow += 1, // v <= 0
            None => self.overflow += 1,                   // NaN / inf
            Some(e) if e < MIN_EXP => self.underflow += 1,
            Some(e) if e > MAX_EXP => self.overflow += 1,
            Some(e) => self.counts[(e - MIN_EXP) as usize] += 1,
        }
    }

    /// Count in the bucket covering `[2^e, 2^(e+1))`.
    pub fn bucket(&self, e: i32) -> u64 {
        if (MIN_EXP..=MAX_EXP).contains(&e) {
            self.counts[(e - MIN_EXP) as usize]
        } else {
            0
        }
    }
}

/// Latest-value metric with running extrema (e.g. the SCF residual per
/// iteration).
#[derive(Clone, Debug)]
pub struct Gauge {
    /// Most recently set value.
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of times the gauge was set.
    pub count: u64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            last: f64::NAN,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        }
    }
}

/// Snapshot of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, Gauge>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<MetricsSnapshot> {
    static REG: OnceLock<Mutex<MetricsSnapshot>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(MetricsSnapshot::default()))
}

fn with_registry<T>(f: impl FnOnce(&mut MetricsSnapshot) -> T) -> T {
    f(&mut registry().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Add `n` to the counter `name`.
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| match r.counters.get_mut(name) {
        Some(c) => *c += n,
        None => {
            r.counters.insert(name.to_string(), n);
        }
    });
}

/// Set the gauge `name` to `v`.
pub fn gauge_set(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let g = match r.gauges.get_mut(name) {
            Some(g) => g,
            None => r.gauges.entry(name.to_string()).or_default(),
        };
        g.last = v;
        if v.is_finite() {
            g.min = g.min.min(v);
            g.max = g.max.max(v);
        }
        g.count += 1;
    });
}

/// Record `v` into the histogram `name`.
pub fn histogram_record(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let h = match r.histograms.get_mut(name) {
            Some(h) => h,
            None => r.histograms.entry(name.to_string()).or_default(),
        };
        h.record(v);
    });
}

/// Clone the current state of every metric.
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|r| r.clone())
}

/// Drop every registered metric.
pub fn clear() {
    with_registry(|r| *r = MetricsSnapshot::default());
}
