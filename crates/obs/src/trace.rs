//! Event model and the global collector.
//!
//! Every recording thread owns a thread-local buffer (an
//! `Arc<Mutex<Vec<Event>>>` registered once in a global list). Pushing an
//! event locks only the thread's own buffer — uncontended in steady state
//! — so rayon workers never serialize on a shared sink. [`drain`] merges
//! all buffers and sorts by `(ts_us, seq)`, giving a globally ordered
//! timeline.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which timeline an event belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Track {
    /// Host code, stamped by [`crate::clock`]; exported as pid 1.
    Host,
    /// Modeled accelerator activity on one stream; exported as pid 2 with
    /// the stream id as the thread lane.
    Device {
        /// Stream this event executed on.
        stream: u32,
    },
}

/// Shape of an event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span enter (`ph: "B"`).
    Begin,
    /// Span exit (`ph: "E"`).
    End,
    /// A complete slice with a known duration (`ph: "X"`).
    Complete,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// One trace event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Phase name, e.g. `"lfd.kinetic"`.
    pub name: Cow<'static, str>,
    /// Timeline this event belongs to.
    pub track: Track,
    /// Host thread ordinal (host track) or stream id (device track).
    pub thread: u32,
    /// Span id (0 = not a span event).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Timestamp, microseconds on the track's clock.
    pub ts_us: f64,
    /// Duration in microseconds ([`EventKind::Complete`] only).
    pub dur_us: f64,
    /// Event shape.
    pub kind: EventKind,
    /// Payload bytes, when the event models data movement (0 = none).
    pub bytes: u64,
    /// Global sequence number: total order among equal timestamps.
    pub seq: u64,
}

impl Event {
    /// A complete slice of `dur_us` starting at `ts_us`.
    pub fn complete(
        name: impl Into<Cow<'static, str>>,
        track: Track,
        ts_us: f64,
        dur_us: f64,
    ) -> Self {
        Self {
            name: name.into(),
            track,
            thread: match track {
                Track::Host => current_thread_ordinal(),
                Track::Device { stream } => stream,
            },
            id: 0,
            parent: 0,
            ts_us,
            dur_us,
            kind: EventKind::Complete,
            bytes: 0,
            seq: 0,
        }
    }

    /// Attach a byte payload (transfers, exchanges).
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Attach span identity.
    pub fn with_ids(mut self, id: u64, parent: u64) -> Self {
        self.id = id;
        self.parent = parent;
        self
    }

    /// Event shape override (Begin/End/Instant).
    pub fn with_kind(mut self, kind: EventKind) -> Self {
        self.kind = kind;
        self
    }
}

type Buffer = Arc<Mutex<Vec<Event>>>;

fn registry() -> &'static Mutex<Vec<Buffer>> {
    static REGISTRY: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LOCAL: (Buffer, u32) = {
        let buf: Buffer = Arc::new(Mutex::new(Vec::new()));
        registry().lock().unwrap_or_else(|e| e.into_inner()).push(buf.clone());
        let ordinal = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) as u32;
        (buf, ordinal)
    };
}

/// Ordinal of the calling thread (stable per thread, assigned on first
/// recording; used as the chrome-trace `tid` for host events).
pub fn current_thread_ordinal() -> u32 {
    LOCAL.with(|(_, ord)| *ord)
}

/// Record one event into the calling thread's buffer. Callers are
/// expected to check [`crate::enabled`] first; this function records
/// unconditionally (that is what [`crate::local::StepRecorder`] relies on
/// when it flushes).
pub fn record(mut ev: Event) {
    ev.seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    LOCAL.with(|(buf, _)| buf.lock().unwrap_or_else(|e| e.into_inner()).push(ev));
}

/// Merge every thread's buffer into one timeline ordered by
/// `(ts_us, seq)`, leaving the buffers empty.
pub fn drain() -> Vec<Event> {
    let bufs: Vec<Buffer> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut all: Vec<Event> = Vec::new();
    for b in bufs {
        all.append(&mut b.lock().unwrap_or_else(|e| e.into_inner()));
    }
    all.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us).then_with(|| a.seq.cmp(&b.seq)));
    all
}

/// Discard all buffered events.
pub fn clear() {
    let bufs: Vec<Buffer> = registry().lock().unwrap_or_else(|e| e.into_inner()).clone();
    for b in bufs {
        b.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}
