//! `dcmesh-obs`: unified observability for the DC-MESH stack.
//!
//! Three pieces, mirroring what the paper's evaluation needed by hand
//! (§IV: per-kernel breakdowns, Tables I–II, scaling efficiencies):
//!
//! 1. **Span tracing** — [`span!`] guards emit enter/exit events into
//!    thread-local buffers that are merged at flush, so instrumentation
//!    composes with rayon without lock contention. When the collector is
//!    disabled (the default) every instrumentation point reduces to one
//!    relaxed atomic load.
//! 2. **Metrics registry** — [`metrics`]: counters, gauges, and
//!    log₂-bucketed histograms (per-step latency distributions, comm
//!    bytes, SCF residuals, multigrid V-cycle counts).
//! 3. **Exporters** — [`chrome`]: Chrome-trace/Perfetto JSON with a host
//!    wall-clock track (pid 1) and a modeled device-clock track (pid 2);
//!    [`report`]: flat per-phase aggregation that callers render through
//!    `dcmesh_core::metrics::Table`.
//!
//! Timestamps come from an injectable [`clock`]: wall-clock for real
//! profiling, a deterministic counter for snapshot-tested output.
//!
//! This crate is a dependency leaf: it must not depend on any other
//! dcmesh crate, because every layer of the stack links against it.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod chrome;
pub mod clock;
pub mod json;
pub mod local;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use local::StepRecorder;
pub use span::SpanGuard;
pub use trace::{Event, EventKind, Track};

/// Master switch for the collector. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the collector is recording. This is the *only* cost an
/// instrumentation point pays when tracing is off: one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the collector on. Call [`clock::set_mode`] first if you need a
/// deterministic timebase.
pub fn enable() {
    clock::ensure_epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the collector off. Already-buffered events stay until
/// [`trace::drain`] or [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Disable the collector and discard all buffered events and metrics.
pub fn reset() {
    disable();
    trace::clear();
    metrics::clear();
    clock::reset();
}

#[cfg(test)]
mod tests {
    /// Most coverage lives in `tests/obs.rs` (integration tests can own
    /// the global collector); here we only pin that the gate is readable.
    #[test]
    fn collector_gate_is_readable() {
        let _ = super::enabled();
    }
}
