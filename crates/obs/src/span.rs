//! Hierarchical span guards.
//!
//! [`SpanGuard::new`] emits a [`EventKind::Begin`] event and pushes its id
//! onto a thread-local stack; dropping the guard pops the stack and emits
//! the matching [`EventKind::End`]. Nesting within one thread is therefore
//! automatic. Across threads (rayon workers have empty stacks) pass the
//! parent explicitly: `span!("phase", parent = outer.id())` — the merge in
//! [`crate::trace::drain`] preserves the `id`/`parent` links, so the tree
//! reconstructed by [`crate::report::SpanTree`] is correct regardless of
//! which thread ran which child.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::trace::{self, Event, EventKind, Track};
use crate::{clock, enabled};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Id of the innermost span open on this thread (0 = none).
pub fn current_span_id() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard for one span. Inert (a single relaxed load was paid, nothing
/// else) when the collector is disabled.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard").finish_non_exhaustive()
    }
}

struct LiveSpan {
    name: Cow<'static, str>,
    id: u64,
}

impl SpanGuard {
    /// Open a span whose parent is the innermost span on this thread.
    pub fn new(name: impl Into<Cow<'static, str>>) -> Self {
        if !enabled() {
            return Self { live: None };
        }
        Self::open(name.into(), current_span_id())
    }

    /// Open a span with an explicit parent id — the cross-thread form for
    /// rayon workers, whose local stacks are empty.
    pub fn with_parent(name: impl Into<Cow<'static, str>>, parent: u64) -> Self {
        if !enabled() {
            return Self { live: None };
        }
        Self::open(name.into(), parent)
    }

    fn open(name: Cow<'static, str>, parent: u64) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        STACK.with(|s| s.borrow_mut().push(id));
        trace::record(
            Event::complete(name.clone(), Track::Host, clock::now_us(), 0.0)
                .with_kind(EventKind::Begin)
                .with_ids(id, parent),
        );
        Self {
            live: Some(LiveSpan { name, id }),
        }
    }

    /// This span's id (0 when the collector was disabled at creation).
    /// Hand this to children spawned on other threads.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            STACK.with(|s| {
                let mut st = s.borrow_mut();
                // Pop our own id; guards drop in LIFO order per thread, so
                // this is the top unless a guard was leaked via mem::forget.
                if let Some(pos) = st.iter().rposition(|&x| x == live.id) {
                    st.remove(pos);
                }
            });
            trace::record(
                Event::complete(live.name, Track::Host, clock::now_us(), 0.0)
                    .with_kind(EventKind::End)
                    .with_ids(live.id, 0),
            );
        }
    }
}

/// Open a [`SpanGuard`]: `span!("lfd.kinetic")`, or with an explicit
/// cross-thread parent: `span!("lfd.kinetic", parent = outer_id)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::new($name)
    };
    ($name:expr, parent = $parent:expr) => {
        $crate::span::SpanGuard::with_parent($name, $parent)
    };
}
