//! Explicitly-owned phase recording for code that must report timings
//! whether or not the global collector is on.
//!
//! `LfdEngine::run_md_step` has always returned `KernelTimings`; with the
//! span layer those numbers become *views over recorded slices* instead
//! of hand-threaded accumulators. A [`StepRecorder`] owns those slices:
//! it records unconditionally (its cost is borne by the caller that wants
//! the numbers), and [`StepRecorder::flush`] forwards the slices to the
//! global collector — only if tracing is enabled — so the same data backs
//! both the legacy return value and the exported trace. Agreement between
//! the two is exact by construction.

use std::borrow::Cow;

use crate::trace::{self, Event, Track};
use crate::{clock, enabled};

/// One recorded phase slice.
#[derive(Clone, Debug)]
pub struct Slice {
    /// Phase name.
    pub name: Cow<'static, str>,
    /// Track the slice belongs to.
    pub track: Track,
    /// Start timestamp (µs, on the track's clock).
    pub start_us: f64,
    /// Duration (µs).
    pub dur_us: f64,
    /// Payload bytes (transfers), 0 otherwise.
    pub bytes: u64,
}

/// An always-on, caller-owned slice buffer.
#[derive(Clone, Debug, Default)]
pub struct StepRecorder {
    slices: Vec<Slice>,
}

impl StepRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a slice with explicit timing (modeled device phases).
    pub fn record(
        &mut self,
        name: impl Into<Cow<'static, str>>,
        track: Track,
        start_us: f64,
        dur_us: f64,
    ) {
        self.slices.push(Slice {
            name: name.into(),
            track,
            start_us,
            dur_us,
            bytes: 0,
        });
    }

    /// Record a host slice of `dur_s` seconds ending now.
    pub fn record_host_seconds(&mut self, name: impl Into<Cow<'static, str>>, dur_s: f64) {
        let dur_us = dur_s * 1e6;
        let end = clock::now_us();
        self.record(name, Track::Host, (end - dur_us).max(0.0), dur_us);
    }

    /// Attach bytes to the most recently recorded slice.
    pub fn tag_bytes(&mut self, bytes: u64) {
        if let Some(last) = self.slices.last_mut() {
            last.bytes += bytes;
        }
    }

    /// The recorded slices.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Total seconds recorded under `name`.
    pub fn total_seconds(&self, name: &str) -> f64 {
        // `+ 0.0` normalizes the empty sum: f64's Sum identity is -0.0,
        // which would otherwise leak into reports as "-0.0000".
        self.slices
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .sum::<f64>()
            * 1e-6
            + 0.0
    }

    /// Forward every slice to the global collector as a Complete event —
    /// a no-op when tracing is disabled.
    pub fn flush(&self) {
        if !enabled() {
            return;
        }
        for s in &self.slices {
            trace::record(
                Event::complete(s.name.clone(), s.track, s.start_us, s.dur_us).with_bytes(s.bytes),
            );
        }
    }
}
