//! Minimal JSON value, writer, and parser.
//!
//! The offline build environment has no `serde_json`, so the trace
//! exporter writes JSON through this module and the round-trip tests
//! parse it back through [`Json::parse`]. Numbers are written with Rust's
//! shortest-round-trip float formatting, so `parse(write(x)) == x` holds
//! for every finite `f64`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no inf/nan; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Serialization without whitespace; `json.to_string()` round-trips
/// through [`Json::parse`].
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("lfd.kinetic \"x\"\n".into())),
            ("ts".into(), Json::Num(1234.5625)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            (
                "args".into(),
                Json::Obj(vec![("bytes".into(), Json::Num(1048576.0))]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1, 1e-300, 123456789.123456, 2.0f64.powi(53), -0.0] {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text} -> {back}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
