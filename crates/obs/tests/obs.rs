//! Integration tests for the observability layer: rayon-safe span
//! nesting, exact histogram bucket boundaries, the disabled fast path,
//! and Chrome-trace JSON round-tripping.

use std::sync::{Mutex, MutexGuard, OnceLock};

use dcmesh_obs::clock::{self, ClockMode};
use dcmesh_obs::json::Json;
use dcmesh_obs::metrics::{self, bucket_exponent, Histogram};
use dcmesh_obs::report::{aggregate, SpanTree};
use dcmesh_obs::{chrome, span, trace, StepRecorder, Track};
use rayon::prelude::*;

/// The collector is global state; serialize the tests that touch it.
fn collector_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn fresh_deterministic_collector() {
    dcmesh_obs::reset();
    clock::set_mode(ClockMode::Counter { step_us: 10 });
    dcmesh_obs::enable();
}

#[test]
fn span_nesting_survives_rayon_merge() {
    let _guard = collector_lock();
    fresh_deterministic_collector();

    let step = span!("sim.step");
    let step_id = step.id();
    assert_ne!(step_id, 0);
    // Children run on rayon workers whose thread-local span stacks are
    // empty — the explicit-parent form carries the hierarchy across.
    (0..6usize).into_par_iter().for_each(|i| {
        let domain = span!("sim.domain", parent = step_id);
        let inner = span!(format!("sim.domain.kernel{i}"), parent = domain.id());
        drop(inner);
    });
    drop(step);
    dcmesh_obs::disable();

    let tree = SpanTree::build(&trace::drain());
    let root = tree.named("sim.step");
    assert_eq!(root.len(), 1);
    let domains = tree.named("sim.domain");
    assert_eq!(domains.len(), 6);
    // Every domain child attaches to the step, not to whatever happened
    // to run on the same worker thread.
    for d in &domains {
        assert_eq!(d.parent, root[0].id, "domain attached to wrong parent");
    }
    // Each kernel attaches to exactly one domain, and every domain has
    // exactly one kernel child.
    for d in &domains {
        assert_eq!(tree.children_of(d.id).len(), 1);
    }
    // All spans closed: durations are recorded (counter clock advances
    // 10 µs per read, so every span is at least one tick long).
    for n in &tree.nodes {
        assert!(n.dur_us > 0.0, "span {} never closed", n.name);
    }
}

#[test]
fn histogram_buckets_are_exact_at_powers_of_two() {
    // Pure data-structure test: no global state involved.
    for e in [-60i32, -5, -1, 0, 1, 7, 52, 60] {
        let p = 2.0f64.powi(e);
        assert_eq!(bucket_exponent(p), Some(e), "2^{e} must open bucket {e}");
        // The largest float below 2^e still belongs to bucket e-1.
        let below = f64::from_bits(p.to_bits() - 1);
        assert_eq!(bucket_exponent(below), Some(e - 1), "just under 2^{e}");
        // Anything in (2^e, 2^(e+1)) stays in bucket e.
        assert_eq!(bucket_exponent(p * 1.5), Some(e));
    }
    let mut h = Histogram::default();
    h.record(2.0); // exactly 2^1 -> bucket 1
    h.record(1.9999999999999998); // largest f64 < 2 -> bucket 0
    h.record(4.0); // exactly 2^2 -> bucket 2
    h.record(0.0); // non-positive -> underflow
    h.record(f64::INFINITY); // -> overflow
    assert_eq!(h.bucket(0), 1);
    assert_eq!(h.bucket(1), 1);
    assert_eq!(h.bucket(2), 1);
    assert_eq!(h.underflow, 1);
    assert_eq!(h.overflow, 1);
    assert_eq!(h.count, 5);
}

#[test]
fn disabled_collector_emits_nothing() {
    let _guard = collector_lock();
    dcmesh_obs::reset(); // leaves the collector disabled

    {
        let outer = span!("should.not.appear");
        assert_eq!(outer.id(), 0, "disabled spans must not allocate ids");
        let _inner = span!("nor.this", parent = outer.id());
    }
    metrics::counter_add("dead.counter", 5);
    metrics::gauge_set("dead.gauge", 1.0);
    metrics::histogram_record("dead.histogram", 2.0);
    StepRecorder::new().flush(); // flush is also gated

    assert!(
        trace::drain().is_empty(),
        "disabled collector buffered events"
    );
    let snap = metrics::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.gauges.is_empty());
    assert!(snap.histograms.is_empty());
}

#[test]
fn chrome_trace_roundtrips_with_monotonic_timestamps() {
    let _guard = collector_lock();
    fresh_deterministic_collector();

    {
        let _outer = span!("phase.outer");
        let _inner = span!("phase.inner");
        metrics::counter_add("events.seen", 1);
    }
    // Device-track slices with modeled timestamps, deliberately recorded
    // out of order: drain() must still produce an ordered timeline.
    let mut rec = StepRecorder::new();
    rec.record("device.kernel", Track::Device { stream: 1 }, 500.0, 120.0);
    rec.record("device.h2d", Track::Device { stream: 0 }, 10.0, 40.0);
    rec.tag_bytes(1 << 20);
    rec.flush();
    dcmesh_obs::disable();

    let events = trace::drain();
    let doc = chrome::chrome_trace(&events);
    let text = doc.to_string();
    let parsed = Json::parse(&text).expect("exporter must emit valid JSON");
    assert_eq!(parsed, doc, "serialize/parse must round-trip");

    let items = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    // Skip the two metadata records, then demand monotonic timestamps.
    let ts: Vec<f64> = items
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .map(|e| e.get("ts").and_then(Json::as_num).unwrap())
        .collect();
    assert!(ts.len() >= 6);
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "timestamps out of order: {ts:?}"
    );
    // Both tracks are present, and the byte tag survived.
    let pids: std::collections::BTreeSet<i64> = items
        .iter()
        .map(|e| e.get("pid").and_then(Json::as_num).unwrap() as i64)
        .collect();
    assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    let h2d = items
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("device.h2d"))
        .unwrap();
    let bytes = h2d
        .get("args")
        .and_then(|a| a.get("bytes"))
        .and_then(Json::as_num);
    assert_eq!(bytes, Some((1 << 20) as f64));

    // The aggregate view sees both host spans and device slices.
    let agg = aggregate(&events);
    let names: Vec<&str> = agg.iter().map(|a| a.name.as_str()).collect();
    assert!(names.contains(&"phase.outer"));
    assert!(names.contains(&"phase.inner"));
    assert!(names.contains(&"device.kernel"));
    let snap = metrics::snapshot();
    assert_eq!(snap.counters.get("events.seen"), Some(&1));
}
