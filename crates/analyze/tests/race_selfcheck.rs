//! Unit tests for the vector-clock shadow-access detector. These drive
//! the hook API directly (no pool); the end-to-end seeded-overlap test
//! through the real executor lives in `crates/pool/tests/racecheck.rs`.
//!
//! The registry is process-global, so every test serializes on one lock
//! and resets before running.

use dcmesh_analyze::race;
use std::sync::{Mutex, OnceLock};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn unordered_overlap_is_flagged() {
    let _g = serial();
    race::force_enable();
    race::reset();
    let buf = vec![0u8; 64];
    let lo = buf.as_ptr() as usize;
    let ((), violations) = race::capture(|| {
        let a = std::thread::Builder::new()
            .name("writer-a".into())
            .spawn(move || race::record_write(lo, lo + 32, "seed-a"))
            .unwrap();
        let b = std::thread::Builder::new()
            .name("writer-b".into())
            .spawn(move || race::record_write(lo + 16, lo + 48, "seed-b"))
            .unwrap();
        a.join().unwrap();
        b.join().unwrap();
        race::settle("test.unordered");
    });
    assert_eq!(violations.len(), 1, "exactly one overlap was seeded");
    let v = &violations[0];
    assert_eq!(v.settle, "test.unordered");
    assert_eq!(v.overlap, (lo + 16, lo + 32));
    let labels = [v.labels.0, v.labels.1];
    assert!(labels.contains(&"seed-a") && labels.contains(&"seed-b"));
    drop(buf);
}

#[test]
fn fork_join_edge_orders_writes() {
    let _g = serial();
    race::force_enable();
    race::reset();
    let buf = vec![0u8; 64];
    let lo = buf.as_ptr() as usize;
    let ((), violations) = race::capture(|| {
        // Writer A writes, then forks; writer B joins the packet before
        // writing the same range — a proper launch edge, no race.
        race::record_write(lo, lo + 32, "first");
        let pkt = race::fork();
        let b = std::thread::spawn(move || {
            race::join(&pkt);
            race::record_write(lo + 16, lo + 48, "second");
        });
        b.join().unwrap();
        race::settle("test.ordered");
    });
    assert!(violations.is_empty(), "hb edge missed: {:?}", violations);
    drop(buf);
}

#[test]
fn disjoint_concurrent_writes_are_clean() {
    let _g = serial();
    race::force_enable();
    race::reset();
    let buf = vec![0u8; 64];
    let lo = buf.as_ptr() as usize;
    let ((), violations) = race::capture(|| {
        let a = std::thread::spawn(move || race::record_write(lo, lo + 32, "left"));
        let b = std::thread::spawn(move || race::record_write(lo + 32, lo + 64, "right"));
        a.join().unwrap();
        b.join().unwrap();
        race::settle("test.disjoint");
    });
    assert!(violations.is_empty(), "false positive: {:?}", violations);
    drop(buf);
}

#[test]
fn overlap_across_settles_within_window_is_caught() {
    let _g = serial();
    race::force_enable();
    race::reset();
    let buf = vec![0u8; 64];
    let lo = buf.as_ptr() as usize;
    let ((), violations) = race::capture(|| {
        let a = std::thread::spawn(move || race::record_write(lo, lo + 8, "early"));
        a.join().unwrap();
        race::settle("test.window.first"); // entry moves to the retained window
        let b = std::thread::spawn(move || race::record_write(lo + 4, lo + 12, "late"));
        b.join().unwrap();
        race::settle("test.window.second");
    });
    assert_eq!(violations.len(), 1, "retained window lost the access");
    assert_eq!(violations[0].settle, "test.window.second");
    drop(buf);
}

#[test]
fn claim_discards_stale_state_for_reused_addresses() {
    let _g = serial();
    race::force_enable();
    race::reset();
    let buf = vec![0u8; 64];
    let lo = buf.as_ptr() as usize;
    let ((), violations) = race::capture(|| {
        // Simulate the one-test-per-thread harness pattern: thread A
        // writes and exits, the allocation is "reused", and thread B —
        // with no happens-before edge to A — writes the same addresses.
        let a = std::thread::spawn(move || race::record_write(lo, lo + 32, "old-owner"));
        a.join().unwrap();
        race::settle("test.claim.first"); // A's entry enters the window
                                          // A new exclusive owner claims the middle of the range (as
                                          // `SlicePtr::new` does from its `&mut [T]`); only the trimmed
                                          // flanks of the stale entry survive.
        race::claim(lo + 8, lo + 24);
        let b = std::thread::spawn(move || race::record_write(lo + 8, lo + 24, "new-owner"));
        b.join().unwrap();
        race::settle("test.claim.second");
        // The untrimmed flanks still participate: an unordered write
        // overlapping [lo, lo+8) must still be caught.
        let c = std::thread::spawn(move || race::record_write(lo, lo + 4, "flank"));
        c.join().unwrap();
        race::settle("test.claim.third");
    });
    assert_eq!(violations.len(), 1, "got: {violations:?}");
    assert_eq!(violations[0].settle, "test.claim.third");
    let labels = [violations[0].labels.0, violations[0].labels.1];
    assert!(labels.contains(&"old-owner") && labels.contains(&"flank"));
    drop(buf);
}

#[test]
fn empty_ranges_are_ignored() {
    let _g = serial();
    race::force_enable();
    race::reset();
    let ((), violations) = race::capture(|| {
        race::record_write(0x1000, 0x1000, "zst");
        race::settle("test.empty");
    });
    assert!(violations.is_empty());
}
