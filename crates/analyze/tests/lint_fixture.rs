//! Negative-path and whole-tree checks for the lint gate.

use dcmesh_analyze::lint::{self, Rule};
use std::path::PathBuf;

fn fixture() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad_unsafe.rs");
    std::fs::read_to_string(path).expect("fixture readable")
}

#[test]
fn fixture_trips_every_rule() {
    // Scanned as if it lived in a kernel crate, the fixture must trip
    // all seven rules. (The undocumented `#[target_feature] unsafe fn`
    // deliberately counts under undocumented-unsafe too.)
    let findings = lint::scan_source("crates/math/src/bad.rs", &fixture());
    let hit = |r: Rule| findings.iter().filter(|f| f.rule == r).count();
    assert_eq!(hit(Rule::StaticMut), 1, "{findings:?}");
    assert_eq!(hit(Rule::UndocumentedUnsafe), 2, "{findings:?}");
    assert_eq!(hit(Rule::ThreadSpawn), 1, "{findings:?}");
    assert_eq!(hit(Rule::WallClock), 1, "{findings:?}");
    assert_eq!(hit(Rule::PrintlnMetrics), 1, "{findings:?}");
    assert_eq!(hit(Rule::RawArch), 1, "{findings:?}");
    assert_eq!(hit(Rule::TargetFeature), 1, "{findings:?}");
}

#[test]
fn fixture_findings_carry_locations() {
    let findings = lint::scan_source("crates/math/src/bad.rs", &fixture());
    let sm = findings
        .iter()
        .find(|f| f.rule == Rule::StaticMut)
        .expect("static-mut finding");
    assert_eq!(sm.path, "crates/math/src/bad.rs");
    assert!(sm.line >= 1);
    // Display form is what the CI log shows; keep it grep-able.
    let shown = format!("{sm}");
    assert!(shown.contains("crates/math/src/bad.rs:"), "{shown}");
    assert!(shown.contains("static-mut"), "{shown}");
}

#[test]
fn workspace_tree_is_clean_and_skips_fixtures() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = lint::find_workspace_root(&manifest).expect("workspace root");
    let findings = lint::scan_workspace(&root).expect("scan");
    assert!(
        !findings.iter().any(|f| f.path.contains("fixtures")),
        "fixtures must be excluded from the workspace scan"
    );
    assert!(
        findings.is_empty(),
        "lint violations in tree:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
