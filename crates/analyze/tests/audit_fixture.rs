//! Negative-path fixtures for the audit rules: every fixture under
//! `fixtures/audit/` must trip its rule with the exact file, line, and
//! (for panic-freedom findings) the full offending call chain.

use dcmesh_analyze::audit::{self, AuditReport, Corpus};
use dcmesh_analyze::lint;
use std::path::PathBuf;

/// Load one fixture and audit it under a synthetic workspace path.
fn audit_fixture(stem: &str) -> (String, AuditReport) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/audit")
        .join(format!("{stem}.rs"));
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let rel = format!("crates/fixt/src/{stem}.rs");
    let corpus = Corpus::from_sources(vec![(rel.clone(), src)]);
    (rel, audit::run(&corpus))
}

#[test]
fn transitive_unwrap_reports_full_chain() {
    let (rel, report) = audit_fixture("transitive_unwrap");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "no-panic");
    assert_eq!(f.path, rel);
    assert_eq!(f.line, 14);
    assert!(f.message.contains("`entry`"), "{}", f.message);
    assert_eq!(
        f.chain,
        vec![
            format!("{rel}:5 entry"),
            format!("{rel}:9 helper"),
            format!("{rel}:13 deep"),
            format!("{rel}:14 .unwrap()"),
        ]
    );
}

#[test]
fn unguarded_target_feature_callsite_flagged() {
    let (rel, report) = audit_fixture("unguarded_target_feature");
    let hits = report.by_rule("contract-callsite");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].path, rel);
    assert_eq!(hits[0].line, 12);
    assert!(hits[0].message.contains("`kern`"), "{}", hits[0].message);
    // The kernel itself declares cpu=, so only the call site is flagged.
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
}

#[test]
fn stale_align_claim_flagged() {
    let (rel, report) = audit_fixture("stale_align");
    let hits = report.by_rule("contract-align");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].path, rel);
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("32"), "{}", hits[0].message);
    assert!(hits[0].message.contains("64"), "{}", hits[0].message);
}

#[test]
fn missing_bounds_claim_flagged() {
    let (rel, report) = audit_fixture("missing_bounds");
    let hits = report.by_rule("contract-bounds");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].path, rel);
    assert_eq!(hits[0].line, 6);
    assert!(
        hits[0].message.contains("from_raw_parts"),
        "{}",
        hits[0].message
    );
}

#[test]
fn missing_cpu_claim_flagged() {
    let (rel, report) = audit_fixture("missing_cpu");
    let hits = report.by_rule("contract-cpu");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].path, rel);
    assert_eq!(hits[0].line, 5);
    assert!(hits[0].message.contains("`kern`"), "{}", hits[0].message);
}

#[test]
fn unknown_contract_key_flagged() {
    let (rel, report) = audit_fixture("bad_syntax");
    let hits = report.by_rule("contract-syntax");
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].path, rel);
    assert_eq!(hits[0].line, 4);
    assert!(hits[0].message.contains("alignment"), "{}", hits[0].message);
}

#[test]
fn raw_strings_and_nested_comments_neither_hide_nor_invent() {
    let (rel, report) = audit_fixture("lexer_regress");
    // Exactly one finding: the real `.unwrap()` in `real`. The panic
    // spelled inside the raw string and the `.unwrap()` inside the
    // nested block comment must not register.
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "no-panic");
    assert_eq!(f.line, 12);
    assert_eq!(
        f.chain,
        vec![
            format!("{rel}:5 entry"),
            format!("{rel}:11 real"),
            format!("{rel}:12 .unwrap()"),
        ]
    );
}

#[test]
fn golden_json_report() {
    // All fixtures together, in sorted order, as one deterministic corpus.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/audit");
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    stems.sort();
    let sources: Vec<(String, String)> = stems
        .iter()
        .map(|n| {
            let src = std::fs::read_to_string(dir.join(n)).expect("fixture readable");
            (format!("crates/fixt/src/{n}"), src)
        })
        .collect();
    let report = audit::run(&Corpus::from_sources(sources));
    let got = report.to_json(false).to_string();

    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/audit_report.json");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(golden.parent().unwrap()).expect("golden dir");
        std::fs::write(&golden, format!("{got}\n")).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(&golden).expect("golden file missing — bless with UPDATE_GOLDEN=1");
    assert_eq!(
        got,
        want.trim_end(),
        "audit JSON drifted — bless with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn workspace_tree_audit_is_clean() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = lint::find_workspace_root(&manifest).expect("workspace root");
    let corpus = Corpus::load(&root).expect("corpus");
    let report = audit::run(&corpus);
    assert!(
        !report.findings.iter().any(|f| f.path.contains("fixtures")),
        "fixtures must be excluded from the workspace audit"
    );
    assert!(
        report.findings.is_empty(),
        "audit violations in tree:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.stats.no_panic_roots >= 13, "{:?}", report.stats);
    assert!(report.stats.contracts >= 20, "{:?}", report.stats);
}
