// Deliberately unhygienic source used by the lint negative-path test.
// This file lives under `fixtures/` so the workspace scan skips it; the
// test feeds it to the scanner directly and asserts every rule fires.

static mut HITS: u64 = 0;

pub fn touch(p: *mut u64) {
    let _v = unsafe { *p };
}

pub fn spawn_off() {
    let h = std::thread::spawn(|| {});
    let _ = h.join();
}

pub fn time_it() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn report_metric(t: f64) {
    println!("kernel took {t}s");
}

pub fn sneaky_intrinsics() {
    let _four_wide = core::arch::x86_64::_mm256_setzero_pd;
}

#[target_feature(enable = "avx2")]
pub unsafe fn undocumented_kernel() {}
