//! Self-checks for the schedule explorer: seeded concurrency bugs it
//! must find, and correct protocols it must pass exhaustively. If these
//! fail, no result from the pool model-check suites can be trusted.

use dcmesh_analyze::sched::{self, Options};
use dcmesh_analyze::sync::{AtomicUsize, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn explore_failure(opts: Options, f: impl Fn() + Send + Sync + 'static) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| sched::explore(opts, f)))
        .expect_err("explorer was expected to find a bug in this scenario");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string payload>")
    }
}

#[test]
fn finds_lost_update() {
    // Classic read-modify-write split across a scheduling point: some
    // interleaving loads the same value twice and one increment is lost.
    let msg = explore_failure(Options::default(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let n = Arc::clone(&n);
                dcmesh_analyze::sync::spawn_named(&format!("inc{i}"), move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(msg.contains("failed"), "unexpected failure shape: {msg}");
    assert!(msg.contains("lost update"), "wrong assertion hit: {msg}");
}

#[test]
fn passes_atomic_increment() {
    // The correct version of the same protocol must survive every
    // schedule within the bound, and the bound must be reached (the DFS
    // actually branched rather than running one schedule).
    let stats = sched::explore(Options::default(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let n = Arc::clone(&n);
                dcmesh_analyze::sync::spawn_named(&format!("inc{i}"), move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(stats.complete, "exploration did not exhaust the bound");
    assert!(
        stats.schedules > 1,
        "expected multiple interleavings, got {}",
        stats.schedules
    );
    assert!(stats.max_threads >= 3, "root + 2 workers should coexist");
}

#[test]
fn finds_lock_order_deadlock() {
    // AB-BA lock ordering: some schedule has each thread holding one
    // lock and blocking on the other.
    let msg = explore_failure(Options::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = dcmesh_analyze::sync::spawn_named("ab", move || {
            let _ga = a.lock();
            let _gb = b.lock();
        });
        let t2 = dcmesh_analyze::sync::spawn_named("ba", move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        let _ = t1.join();
        let _ = t2.join();
    });
    assert!(msg.contains("deadlock"), "expected deadlock, got: {msg}");
}

#[test]
fn finds_lost_wakeup() {
    // A waiter that parks unconditionally: schedules where the notify
    // lands before the wait lose the wakeup forever.
    let msg = explore_failure(Options::default(), || {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = dcmesh_analyze::sync::spawn_named("waiter", move || {
            let g = m.lock();
            let _g = cv.wait(g);
        });
        let notifier = dcmesh_analyze::sync::spawn_named("notifier", move || {
            let _g = m2.lock();
            cv2.notify_one();
        });
        let _ = waiter.join();
        let _ = notifier.join();
    });
    assert!(msg.contains("deadlock"), "expected deadlock, got: {msg}");
}

#[test]
fn passes_guarded_wakeup() {
    // The correct flag-under-mutex + re-check loop protocol: no schedule
    // may deadlock, including notify-before-wait ones.
    let stats = sched::explore(Options::default(), || {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let waiter = dcmesh_analyze::sync::spawn_named("waiter", move || {
            let (m, cv) = &*shared;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
        let notifier = dcmesh_analyze::sync::spawn_named("notifier", move || {
            let (m, cv) = &*s2;
            *m.lock() = true;
            cv.notify_one();
        });
        let _ = waiter.join();
        let _ = notifier.join();
    });
    assert!(stats.complete);
    assert!(stats.schedules > 1);
}

#[test]
fn propagates_child_panic_with_trace() {
    let msg = explore_failure(
        Options {
            preemption_bound: 0,
            ..Options::default()
        },
        || {
            let t = dcmesh_analyze::sync::spawn_named("boom", || {
                panic!("kaboom-7261");
            });
            let _ = t.join();
        },
    );
    assert!(msg.contains("kaboom-7261"), "payload lost: {msg}");
    assert!(msg.contains("decision trace"), "trace missing: {msg}");
}

#[test]
fn primitives_work_uncontrolled() {
    // Outside `explore`, the wrappers must behave exactly like std.
    let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
    let s2 = Arc::clone(&shared);
    let t = dcmesh_analyze::sync::spawn_named("bg", move || {
        let (m, cv) = &*s2;
        *m.lock() = 41;
        cv.notify_all();
    });
    {
        let (m, cv) = &*shared;
        let mut g = m.lock();
        while *g == 0 {
            g = cv.wait(g);
        }
        *g += 1;
        assert_eq!(*g, 42);
    }
    t.join().unwrap();
    assert!(!sched::is_active());
}
