//! Fixture: an `align=` claim that disagrees with the arena's ALIGN.

pub fn entry(p: *const f64) -> f64 {
    // SAFETY: (align=32, bounds=caller passes a valid one-element buffer)
    unsafe { p.read() }
}
