//! Fixture: a `#[target_feature]` kernel whose contract lacks `cpu=`.

#[target_feature(enable = "avx2")]
// SAFETY: (bounds=reads exactly the four lanes of x)
pub unsafe fn kern(x: &[f64; 4]) -> f64 {
    x[0]
}
