//! Fixture: raw strings and nested block comments must neither hide
//! nor invent panic sources. Exactly one real `.unwrap()` lives here.

// AUDIT: no_panic
pub fn entry() -> usize {
    let s = r#"panic!("not real"); v.unwrap(); x[0]"#;
    /* outer /* nested comment with .unwrap() and panic! */ still comment */
    real(s)
}

fn real(s: &str) -> usize {
    s.bytes().next().unwrap() as usize
}
