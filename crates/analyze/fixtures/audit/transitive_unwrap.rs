//! Fixture: a `no_panic` root that reaches `.unwrap()` two calls deep.
//! The audit must report the full chain entry -> helper -> deep.

// AUDIT: no_panic
pub fn entry(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    deep(v)
}

fn deep(v: &[u32]) -> u32 {
    v.first().unwrap() + 1
}
