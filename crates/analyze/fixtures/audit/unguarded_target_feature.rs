//! Fixture: a `#[target_feature]` kernel called without a runtime
//! feature check, from outside the dispatch module.

#[target_feature(enable = "avx2")]
// SAFETY: (cpu=avx2, bounds=reads exactly the four lanes of x)
pub unsafe fn kern(x: &[f64; 4]) -> f64 {
    x[0] + x[1]
}

pub fn caller(x: &[f64; 4]) -> f64 {
    // SAFETY: (cpu=avx2) wrong — nothing verified CPU support here.
    unsafe { kern(x) }
}
