//! Fixture: a structured contract using a key outside the grammar.

pub fn entry(x: f64) -> u64 {
    // SAFETY: (alignment=64) misspelled key — the audit must flag it.
    unsafe { std::mem::transmute::<f64, u64>(x) }
}
