//! Fixture: raw-pointer access in an audited fn with no `bounds=` claim.

// AUDIT: no_panic
pub fn entry(p: *const f64, n: usize) -> f64 {
    // SAFETY: caller passes a live buffer of n elements.
    let s = unsafe { std::slice::from_raw_parts(p, n) };
    s.iter().sum()
}
