//! Deterministic schedule exploration ("loom-lite") for the executor
//! protocols.
//!
//! [`explore`] runs a closure many times, once per *schedule*. Inside the
//! closure, every thread created through [`crate::sync::spawn_named`] and
//! every operation on the [`crate::sync`] primitives becomes a scheduling
//! point: exactly one controlled thread runs at a time, and at each point
//! where more than one thread is runnable the explorer decides who
//! continues. A depth-first search over those decisions — bounded by the
//! number of *preemptions* (switching away from a thread that could have
//! continued, the CHESS bound) — visits every interleaving reachable
//! within the bound. The state machines under test are the **real**
//! `dcmesh-pool` dispatch/steal/park and lane enqueue/settle protocols,
//! not models of them.
//!
//! What the model covers and what it does not:
//!
//! * Scheduling nondeterminism is explored exhaustively (within the
//!   preemption bound). Lost wakeups, missed epochs, double claims and
//!   dropped panics all show up as assertion failures or deadlocks on
//!   some schedule, and the failing decision trace is printed.
//! * Memory is sequentially consistent: operations execute serially in
//!   schedule order, so `Relaxed`-ordering bugs are out of scope (the
//!   protocols under test publish through mutexes and RMW ops, which are
//!   SC in practice on the targets we care about).
//! * Condition-variable wakeups are exact — no spurious wakeups are
//!   injected. The pool's wait loops re-check predicates anyway.
//!
//! Deadlock (no runnable thread while some are blocked) and livelock
//! (schedule exceeding `max_steps`) abort the run: every controlled
//! thread is unwound with a private panic payload, and [`explore`] panics
//! with the decision trace that led there.

use std::cell::Cell as StdCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Whether an explorer is currently driving this process. One relaxed
/// load on every instrumented operation when off.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Serializes concurrent [`explore`] calls (e.g. parallel test threads).
fn explore_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// True while a schedule exploration is running somewhere in the process.
#[inline(always)]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

thread_local! {
    /// The controller + thread id of a controlled thread, `None` on
    /// ordinary threads (which pass through the primitives untouched).
    static CURRENT: StdCell<Option<(&'static Controller, usize)>> = const { StdCell::new(None) };
    /// Set once this thread has been handed an abort: all further
    /// instrumented operations fall back to uncontrolled behavior so the
    /// thread can unwind (through `Drop` impls that lock) without pausing.
    static ABORTED: StdCell<bool> = const { StdCell::new(false) };
}

/// The current thread's controller + tid, if it is a controlled,
/// non-aborted thread under an active exploration.
pub(crate) fn current() -> Option<(&'static Controller, usize)> {
    if !is_active() || ABORTED.with(|a| a.get()) {
        return None;
    }
    CURRENT.with(|c| c.get())
}

/// Run `f` with the current thread's controller, if any (see [`current`]).
pub(crate) fn with_token<R>(f: impl FnOnce(&Controller, usize) -> R) -> Option<R> {
    current().map(|(ctrl, tid)| f(ctrl, tid))
}

/// A scheduling point: on a controlled thread, hands the decision of who
/// runs next to the explorer. No-op (one relaxed load) otherwise.
#[inline]
pub fn yield_point() {
    if !is_active() {
        return;
    }
    with_token(|ctrl, tid| ctrl.on_yield(tid));
}

/// Private payload used to unwind controlled threads when a run aborts.
struct AbortToken;

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<AbortToken>()
}

// ---------------------------------------------------------------------------
// Controller: the serialized-thread state machine
// ---------------------------------------------------------------------------

/// What a non-running controlled thread is waiting for.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum BlockOn {
    /// A [`crate::sync::Mutex`] held by someone else (key: mutex address).
    Lock(usize),
    /// A [`crate::sync::Condvar`] notification (key: condvar address).
    Signal(usize),
    /// Exit of another controlled thread (key: its tid).
    Thread(usize),
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Status {
    /// Eligible to be granted the processor.
    Ready,
    /// Currently holds the (single) processor.
    Running,
    Blocked(BlockOn),
    Exited,
}

/// Per-thread handshake cell: the thread parks here until granted.
struct ThreadCell {
    go: Mutex<Go>,
    cv: Condvar,
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Go {
    Wait,
    Run,
    Abort,
}

struct ThreadEntry {
    status: Status,
    cell: Arc<ThreadCell>,
    name: String,
}

struct CtrlState {
    threads: Vec<ThreadEntry>,
    /// The tid currently granted, if any. The scheduler only acts when
    /// this is `None` (every controlled thread paused/blocked/exited).
    running: Option<usize>,
    /// Set when a controlled thread unwound with a non-abort payload.
    failure: Option<String>,
    /// Grants issued this run (livelock guard).
    steps: usize,
    aborting: bool,
}

/// The per-run scheduler shared by all controlled threads.
pub(crate) struct Controller {
    state: Mutex<CtrlState>,
    /// The scheduler thread waits here for `running` to clear.
    sched_cv: Condvar,
}

fn lock_ctrl(c: &Controller) -> MutexGuard<'_, CtrlState> {
    c.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl Controller {
    fn new() -> Self {
        Controller {
            state: Mutex::new(CtrlState {
                threads: Vec::new(),
                running: None,
                failure: None,
                steps: 0,
                aborting: false,
            }),
            sched_cv: Condvar::new(),
        }
    }

    /// Park the calling thread with `status` and wait to be granted again.
    /// Panics with [`AbortToken`] if the run is being torn down.
    fn pause(&self, tid: usize, status: Status) {
        let cell = {
            let mut st = lock_ctrl(self);
            st.threads[tid].status = status;
            if st.running == Some(tid) {
                st.running = None;
            }
            self.sched_cv.notify_all();
            Arc::clone(&st.threads[tid].cell)
        };
        let mut go = cell.go.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match *go {
                Go::Run => {
                    *go = Go::Wait;
                    return;
                }
                Go::Abort => {
                    *go = Go::Wait;
                    drop(go);
                    ABORTED.with(|a| a.set(true));
                    std::panic::panic_any(AbortToken);
                }
                Go::Wait => {
                    go = cell.cv.wait(go).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// A voluntary scheduling point: pause only if some *other* thread is
    /// ready (otherwise there is no decision to make and the thread can
    /// keep running without a handshake).
    pub(crate) fn on_yield(&self, tid: usize) {
        {
            let st = lock_ctrl(self);
            let contended = st
                .threads
                .iter()
                .enumerate()
                .any(|(i, t)| i != tid && t.status == Status::Ready);
            if !contended && !st.aborting {
                return;
            }
        }
        self.pause(tid, Status::Ready);
    }

    /// Block until the mutex keyed by `key` is released.
    pub(crate) fn block_on_lock(&self, tid: usize, key: usize) {
        self.pause(tid, Status::Blocked(BlockOn::Lock(key)));
    }

    /// Mark every thread waiting on mutex `key` ready again.
    pub(crate) fn lock_released(&self, key: usize) {
        let mut st = lock_ctrl(self);
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(BlockOn::Lock(key)) {
                t.status = Status::Ready;
            }
        }
    }

    /// Park the calling thread as a waiter on condvar `key`. The caller
    /// must have already released the associated mutex.
    pub(crate) fn condvar_wait(&self, tid: usize, key: usize) {
        self.pause(tid, Status::Blocked(BlockOn::Signal(key)));
    }

    /// Wake one (lowest tid, deterministic) or all waiters on condvar
    /// `key`. A notify with no waiters is lost, exactly like the real
    /// primitive — the protocols' predicate loops are what's under test.
    pub(crate) fn condvar_notify(&self, key: usize, all: bool) {
        let mut st = lock_ctrl(self);
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(BlockOn::Signal(key)) {
                t.status = Status::Ready;
                if !all {
                    break;
                }
            }
        }
    }

    /// Register and start a new controlled thread running `f`. The child
    /// becomes `Ready` before this returns (deterministic registration);
    /// it does not execute until the explorer grants it.
    pub(crate) fn spawn_controlled(
        &'static self,
        name: &str,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> (usize, std::thread::JoinHandle<()>) {
        let (tid, cell) = {
            let mut st = lock_ctrl(self);
            let tid = st.threads.len();
            let cell = Arc::new(ThreadCell {
                go: Mutex::new(Go::Wait),
                cv: Condvar::new(),
            });
            st.threads.push(ThreadEntry {
                status: Status::Ready,
                cell: Arc::clone(&cell),
                name: name.to_string(),
            });
            (tid, cell)
        };
        let ctrl: &'static Controller = self;
        let handle = std::thread::Builder::new()
            .name(format!("sched-{name}"))
            .spawn(move || {
                CURRENT.with(|c| c.set(Some((ctrl, tid))));
                // Wait for the first grant before touching anything.
                {
                    let mut go = cell.go.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        match *go {
                            Go::Run => {
                                *go = Go::Wait;
                                break;
                            }
                            Go::Abort => {
                                *go = Go::Wait;
                                ABORTED.with(|a| a.set(true));
                                break; // exit without running `f`
                            }
                            Go::Wait => {
                                go = cell.cv.wait(go).unwrap_or_else(|e| e.into_inner());
                            }
                        }
                    }
                }
                let ran_abort = ABORTED.with(|a| a.get());
                let result = if ran_abort {
                    Ok(())
                } else {
                    catch_unwind(AssertUnwindSafe(f))
                };
                let mut st = lock_ctrl(ctrl);
                if let Err(payload) = result {
                    if !is_abort(payload.as_ref()) {
                        let msg = payload_to_string(payload.as_ref());
                        let name = st.threads[tid].name.clone();
                        st.failure
                            .get_or_insert_with(|| format!("thread '{name}' panicked: {msg}"));
                    }
                }
                st.threads[tid].status = Status::Exited;
                if st.running == Some(tid) {
                    st.running = None;
                }
                // Wake joiners.
                for t in st.threads.iter_mut() {
                    if t.status == Status::Blocked(BlockOn::Thread(tid)) {
                        t.status = Status::Ready;
                    }
                }
                ctrl.sched_cv.notify_all();
            })
            .expect("failed to spawn controlled thread");
        (tid, handle)
    }

    /// Controlled join: block until `target` exits. Returns immediately
    /// during teardown so `Drop` impls that join (pool, lane) cannot
    /// double-panic while unwinding.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        loop {
            {
                let st = lock_ctrl(self);
                if st.aborting || st.threads[target].status == Status::Exited {
                    return;
                }
            }
            self.pause(tid, Status::Blocked(BlockOn::Thread(target)));
        }
    }

    /// Grant the processor to `tid`.
    fn grant(&self, tid: usize) {
        let cell = {
            let mut st = lock_ctrl(self);
            st.threads[tid].status = Status::Running;
            st.running = Some(tid);
            st.steps += 1;
            Arc::clone(&st.threads[tid].cell)
        };
        let mut go = cell.go.lock().unwrap_or_else(|e| e.into_inner());
        *go = Go::Run;
        cell.cv.notify_all();
    }

    /// Tear a run down: repeatedly hand every live thread an abort until
    /// all have exited.
    fn abort_all(&self) {
        {
            let mut st = lock_ctrl(self);
            st.aborting = true;
            // Unblock everything; aborted threads fall back to
            // uncontrolled primitives while unwinding.
            for t in st.threads.iter_mut() {
                if matches!(t.status, Status::Blocked(_)) {
                    t.status = Status::Ready;
                }
            }
        }
        loop {
            let cells: Vec<Arc<ThreadCell>> = {
                let st = lock_ctrl(self);
                if st.threads.iter().all(|t| t.status == Status::Exited) {
                    return;
                }
                st.threads
                    .iter()
                    .filter(|t| t.status != Status::Exited)
                    .map(|t| Arc::clone(&t.cell))
                    .collect()
            };
            for cell in cells {
                let mut go = cell.go.lock().unwrap_or_else(|e| e.into_inner());
                if *go == Go::Wait {
                    *go = Go::Abort;
                }
                cell.cv.notify_all();
            }
            // Let the unwinding threads make progress before re-checking.
            let st = lock_ctrl(self);
            let _ = self
                .sched_cv
                .wait_timeout(st, std::time::Duration::from_millis(1));
        }
    }
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// The DFS over schedules
// ---------------------------------------------------------------------------

/// Exploration limits.
#[derive(Copy, Clone, Debug)]
pub struct Options {
    /// Maximum preemptive context switches per schedule (CHESS bound).
    pub preemption_bound: usize,
    /// Hard cap on schedules explored; exceeding it ends exploration
    /// with [`Stats::complete`] `== false` rather than running forever.
    pub max_schedules: usize,
    /// Hard cap on grants within one schedule (livelock guard).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_schedules: 100_000,
            max_steps: 100_000,
        }
    }
}

/// Result of an exploration.
#[derive(Clone, Debug)]
pub struct Stats {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// True when the DFS exhausted every schedule within the preemption
    /// bound (rather than stopping at `max_schedules`).
    pub complete: bool,
    /// Most controlled threads alive at once across all schedules.
    pub max_threads: usize,
}

/// One recorded scheduling decision (a point with ≥ 2 ready threads).
#[derive(Clone, Debug)]
struct Decision {
    chosen: usize,
    ready: Vec<usize>,
    /// Thread granted immediately before this decision, if any.
    prev: Option<usize>,
}

impl Decision {
    /// The default (non-preemptive) choice at this point.
    fn natural(&self) -> usize {
        match self.prev {
            Some(p) if self.ready.contains(&p) => p,
            _ => self.ready[0],
        }
    }

    /// Whether choosing `cand` preempts a still-ready previous thread.
    fn is_preemption(&self, cand: usize) -> bool {
        matches!(self.prev, Some(p) if self.ready.contains(&p) && cand != p)
    }

    /// Candidate order: natural first, then ready ascending.
    fn candidates(&self) -> Vec<usize> {
        let nat = self.natural();
        let mut order = vec![nat];
        order.extend(self.ready.iter().copied().filter(|&t| t != nat));
        order
    }
}

enum RunOutcome {
    Done(Vec<Decision>),
    Deadlock(Vec<Decision>, String),
    TooLong(Vec<Decision>),
    Failed(Vec<Decision>, String),
}

/// Execute one schedule of `f` under `ctrl`, replaying `prefix` at the
/// recorded decision points and defaulting to run-to-completion after.
fn run_one(
    ctrl: &'static Controller,
    prefix: &[usize],
    opts: &Options,
    f: Arc<dyn Fn() + Send + Sync>,
) -> (RunOutcome, usize, std::thread::JoinHandle<()>) {
    let (_root_tid, root_handle) = ctrl.spawn_controlled("main", Box::new(move || f()));
    let mut decisions: Vec<Decision> = Vec::new();
    let mut prev: Option<usize> = None;
    let mut peak_threads = 0usize;
    let outcome = loop {
        // Wait until nothing is running.
        let (ready, live, failure, steps) = {
            let mut st = lock_ctrl(ctrl);
            while st.running.is_some() {
                st = ctrl.sched_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let ready: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Ready)
                .map(|(i, _)| i)
                .collect();
            let live = st
                .threads
                .iter()
                .filter(|t| t.status != Status::Exited)
                .count();
            (ready, live, st.failure.clone(), st.steps)
        };
        peak_threads = peak_threads.max(live);
        if let Some(msg) = failure {
            break RunOutcome::Failed(decisions, msg);
        }
        if ready.is_empty() {
            if live == 0 {
                break RunOutcome::Done(decisions);
            }
            let snapshot = {
                let st = lock_ctrl(ctrl);
                st.threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Exited)
                    .map(|(i, t)| format!("  t{} '{}': {:?}", i, t.name, t.status))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            break RunOutcome::Deadlock(decisions, snapshot);
        }
        if steps > opts.max_steps {
            break RunOutcome::TooLong(decisions);
        }
        let chosen = if ready.len() == 1 {
            ready[0]
        } else {
            let d = Decision {
                chosen: 0, // filled below
                ready: ready.clone(),
                prev,
            };
            let idx = decisions.len();
            let chosen = if idx < prefix.len() {
                assert!(
                    ready.contains(&prefix[idx]),
                    "schedule replay diverged at decision {idx}: \
                     prefix wants t{} but ready set is {ready:?}",
                    prefix[idx]
                );
                prefix[idx]
            } else {
                d.natural()
            };
            decisions.push(Decision { chosen, ..d });
            chosen
        };
        prev = Some(chosen);
        ctrl.grant(chosen);
    };
    (outcome, peak_threads, root_handle)
}

/// Compute the next DFS prefix after a run with `decisions`, or `None`
/// when the bounded space is exhausted.
fn next_prefix(decisions: &[Decision], bound: usize) -> Option<Vec<usize>> {
    // Preemptions consumed before each decision index.
    let mut used = vec![0usize; decisions.len() + 1];
    for (i, d) in decisions.iter().enumerate() {
        used[i + 1] = used[i] + usize::from(d.is_preemption(d.chosen));
    }
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        let order = d.candidates();
        let pos = order
            .iter()
            .position(|&c| c == d.chosen)
            .expect("chosen is a candidate");
        for &cand in &order[pos + 1..] {
            if used[i] + usize::from(d.is_preemption(cand)) <= bound {
                let mut prefix: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                prefix.push(cand);
                return Some(prefix);
            }
        }
    }
    None
}

/// Exhaustively explore the schedules of `f` within `opts`.
///
/// `f` is executed once per schedule; it should build its concurrent
/// scenario from scratch (construct pools/lanes, dispatch, assert, drop).
/// Panics — with the decision trace — if any schedule fails an assertion,
/// deadlocks, or exceeds `max_steps`.
pub fn explore(opts: Options, f: impl Fn() + Send + Sync + 'static) -> Stats {
    let _serialize = explore_lock().lock().unwrap_or_else(|e| e.into_inner());
    // Suppress the default printed backtrace for the thousands of
    // expected panics (aborts, protocol-test panics) during exploration.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    ACTIVE.store(true, Ordering::SeqCst);

    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let result = catch_unwind(AssertUnwindSafe(|| explore_inner(&opts, f)));

    ACTIVE.store(false, Ordering::SeqCst);
    std::panic::set_hook(saved_hook);
    match result {
        Ok(stats) => stats,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn explore_inner(opts: &Options, f: Arc<dyn Fn() + Send + Sync>) -> Stats {
    let mut prefix: Vec<usize> = Vec::new();
    let mut stats = Stats {
        schedules: 0,
        complete: false,
        max_threads: 0,
    };
    loop {
        if stats.schedules >= opts.max_schedules {
            return stats; // complete stays false
        }
        // Controllers are intentionally leaked ('static) so controlled
        // threads can hold references; each holds a few hundred bytes per
        // thread and exploration is test-only.
        let ctrl: &'static Controller = Box::leak(Box::new(Controller::new()));
        let (outcome, peak, root) = run_one(ctrl, &prefix, opts, Arc::clone(&f));
        stats.schedules += 1;
        stats.max_threads = stats.max_threads.max(peak);
        let decisions = match outcome {
            RunOutcome::Done(d) => {
                let _ = root.join();
                d
            }
            RunOutcome::Deadlock(d, snapshot) => {
                ctrl.abort_all();
                let _ = root.join();
                panic!(
                    "deadlock on schedule {} (decision trace {:?}):\n{snapshot}",
                    stats.schedules,
                    trace(&d)
                );
            }
            RunOutcome::TooLong(d) => {
                ctrl.abort_all();
                let _ = root.join();
                panic!(
                    "schedule {} exceeded {} steps (livelock?); decision trace {:?}",
                    stats.schedules,
                    opts.max_steps,
                    trace(&d)
                );
            }
            RunOutcome::Failed(d, msg) => {
                ctrl.abort_all();
                let _ = root.join();
                panic!(
                    "schedule {} failed: {msg}\n  decision trace {:?}",
                    stats.schedules,
                    trace(&d)
                );
            }
        };
        match next_prefix(&decisions, opts.preemption_bound) {
            Some(p) => prefix = p,
            None => {
                stats.complete = true;
                return stats;
            }
        }
    }
}

fn trace(decisions: &[Decision]) -> Vec<usize> {
    decisions.iter().map(|d| d.chosen).collect()
}
