//! `dcmesh-analyze --bin lint` — walk the workspace sources and fail on
//! hygiene violations. See [`dcmesh_analyze::lint`] for the rules.
//!
//! Usage: `cargo run -p dcmesh-analyze --bin lint [ROOT]`. Without an
//! argument the workspace root is found by walking up from this crate's
//! manifest directory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            match dcmesh_analyze::lint::find_workspace_root(&manifest) {
                Some(r) => r,
                None => {
                    eprintln!("lint: could not locate workspace root from {manifest:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let findings = match dcmesh_analyze::lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if findings.is_empty() {
        println!("lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        eprintln!("{f}");
    }
    eprintln!("lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
