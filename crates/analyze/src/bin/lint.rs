//! `dcmesh-analyze --bin lint` — kept as an alias for the `audit`
//! binary so existing invocations (CI scripts, editor hooks) still
//! work. The full audit runs: the original hygiene lints plus the
//! panic-freedom and SAFETY-contract passes. See
//! [`dcmesh_analyze::audit`].

use std::process::ExitCode;

fn main() -> ExitCode {
    dcmesh_analyze::audit::cli_main(std::env::args().skip(1))
}
