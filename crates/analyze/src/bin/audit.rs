//! `dcmesh-analyze --bin audit` — whole-workspace static analysis:
//! hygiene lints, panic-freedom call graphs from `AUDIT: no_panic`
//! roots, and machine-checked SAFETY contracts. See
//! [`dcmesh_analyze::audit`].
//!
//! Usage: `cargo run -p dcmesh-analyze --bin audit -- \
//!   [--format=json|text] [--report] [ROOT]`

use std::process::ExitCode;

fn main() -> ExitCode {
    dcmesh_analyze::audit::cli_main(std::env::args().skip(1))
}
