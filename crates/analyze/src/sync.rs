//! Instrumented synchronization primitives for schedule-explorable code.
//!
//! Drop-in (minus lock poisoning, which the pool never relied on)
//! replacements for `std::sync::{Mutex, Condvar}`, the protocol atomics,
//! and thread spawn/join. Outside an active [`crate::sched`] exploration
//! every operation delegates straight to `std` after one relaxed load of
//! the explorer flag — the hot-path cost contract is identical to a
//! disabled `dcmesh-obs` span. Under exploration, each operation becomes
//! a scheduling point and blocking routes through the explorer so it can
//! enumerate interleavings and detect deadlocks.
//!
//! Only the operations `dcmesh-pool` actually uses are wrapped; extend as
//! protocols grow rather than speculatively.

use crate::sched;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! atomic_wrapper {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Explorer-aware wrapper over the corresponding `std` atomic:
        /// each operation is a scheduling point under exploration, a
        /// plain delegate otherwise.
        #[derive(Debug, Default)]
        pub struct $name($std);

        impl $name {
            /// New atomic holding `v`.
            pub const fn new(v: $prim) -> Self {
                Self(<$std>::new(v))
            }

            /// Atomic load (scheduling point under exploration).
            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                sched::yield_point();
                self.0.load(order)
            }

            /// Atomic store (scheduling point under exploration).
            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                sched::yield_point();
                self.0.store(v, order);
            }

            /// Atomic fetch-add (scheduling point under exploration).
            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                sched::yield_point();
                self.0.fetch_add(v, order)
            }

            /// Atomic fetch-max (scheduling point under exploration).
            #[inline]
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                sched::yield_point();
                self.0.fetch_max(v, order)
            }
        }
    };
}

atomic_wrapper!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_wrapper!(AtomicU64, std::sync::atomic::AtomicU64, u64);

/// Explorer-aware `AtomicBool` (separate because `fetch_max` on bools is
/// not part of the std surface we mirror).
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// New atomic holding `v`.
    pub const fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Atomic load (scheduling point under exploration).
    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        sched::yield_point();
        self.0.load(order)
    }

    /// Atomic store (scheduling point under exploration).
    #[inline]
    pub fn store(&self, v: bool, order: Ordering) {
        sched::yield_point();
        self.0.store(v, order);
    }
}

// ---------------------------------------------------------------------------
// Mutex + Condvar
// ---------------------------------------------------------------------------

/// Explorer-aware mutex. Unlike `std::sync::Mutex`, `lock` does not
/// surface poisoning: a lock whose holder panicked is simply re-entered
/// (`into_inner` semantics), which is what the pool's protocols want —
/// their guarded state stays consistent across body panics by design.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    /// `ManuallyDrop` so [`Condvar::wait`] can take the std guard out and
    /// hand it to the real condvar on the uncontrolled path.
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    /// Acquired through the explorer: releasing must wake blocked peers.
    controlled: bool,
}

impl<T> Mutex<T> {
    /// New mutex holding `v`.
    pub const fn new(v: T) -> Self {
        Self(std::sync::Mutex::new(v))
    }

    /// Stable key identifying this mutex to the explorer.
    fn key(&self) -> usize {
        &self.0 as *const _ as *const () as usize
    }

    /// Acquire the lock (scheduling point; never observes poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if sched::is_active() {
            if let Some((ctrl, tid)) = sched::current() {
                loop {
                    ctrl.on_yield(tid);
                    match self.0.try_lock() {
                        Ok(g) => {
                            return MutexGuard {
                                inner: ManuallyDrop::new(g),
                                lock: self,
                                controlled: true,
                            };
                        }
                        Err(std::sync::TryLockError::Poisoned(e)) => {
                            return MutexGuard {
                                inner: ManuallyDrop::new(e.into_inner()),
                                lock: self,
                                controlled: true,
                            };
                        }
                        Err(std::sync::TryLockError::WouldBlock) => {
                            ctrl.block_on_lock(tid, self.key());
                        }
                    }
                }
            }
        }
        MutexGuard {
            inner: ManuallyDrop::new(self.0.lock().unwrap_or_else(|e| e.into_inner())),
            lock: self,
            controlled: false,
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MutexGuard").field(&**self).finish()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: the std guard is dropped exactly once: here, or not at
        // all when `Condvar::wait` took it out and `mem::forget` us.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        if self.controlled {
            if let Some((ctrl, _tid)) = sched::current() {
                ctrl.lock_released(self.lock.key());
            }
        }
    }
}

/// Explorer-aware condition variable. Wakeups are exact under
/// exploration (no spurious wakeups are injected); predicate loops are
/// still required, and the explorer will find schedules where a notify
/// fires before the waiter parks.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    fn key(&self) -> usize {
        &self.0 as *const _ as *const () as usize
    }

    /// Release `guard`'s mutex, wait for a notification, re-acquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        if guard.controlled {
            if let Some((ctrl, tid)) = sched::current() {
                // Model the atomic release-and-wait: between dropping the
                // std guard and parking as a waiter no other controlled
                // thread can run (we still hold the processor).
                // SAFETY: `mem::forget(guard)` below ensures the std
                // guard is not dropped a second time.
                unsafe { ManuallyDrop::drop(&mut guard.inner) };
                std::mem::forget(guard);
                ctrl.lock_released(lock.key());
                ctrl.condvar_wait(tid, self.key());
                return lock.lock();
            }
        }
        // SAFETY: `mem::forget(guard)` below ensures the std guard is not
        // dropped a second time.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        std::mem::forget(guard);
        let reacquired = self.0.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: ManuallyDrop::new(reacquired),
            lock,
            controlled: false,
        }
    }

    /// Release `guard`'s mutex, wait for a notification or `timeout`,
    /// re-acquire. Returns the guard plus whether the wait timed out.
    ///
    /// Under exploration the timeout is ignored and this degrades to
    /// [`Condvar::wait`]: timeouts are a wall-clock escape hatch, and the
    /// explorer's job is to find the schedules where the notification
    /// never comes — those must surface as detected deadlocks, not be
    /// papered over by a timer. Callers therefore must treat a
    /// `timed_out == false` wakeup as "re-check the predicate", which the
    /// usual predicate loop already does.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        if guard.controlled && sched::current().is_some() {
            return (self.wait(guard), false);
        }
        let lock = guard.lock;
        let mut guard = guard;
        // SAFETY: `mem::forget(guard)` below ensures the std guard is not
        // dropped a second time.
        let std_guard = unsafe { ManuallyDrop::take(&mut guard.inner) };
        std::mem::forget(guard);
        let (reacquired, result) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (
            MutexGuard {
                inner: ManuallyDrop::new(reacquired),
                lock,
                controlled: false,
            },
            result.timed_out(),
        )
    }

    /// Wake one waiter (the lowest-tid one, deterministically, under
    /// exploration).
    pub fn notify_one(&self) {
        self.0.notify_one();
        if sched::is_active() {
            if let Some((ctrl, _)) = sched::current() {
                ctrl.condvar_notify(self.key(), false);
            }
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
        if sched::is_active() {
            if let Some((ctrl, _)) = sched::current() {
                ctrl.condvar_notify(self.key(), true);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

enum HandleInner {
    Std(std::thread::JoinHandle<()>),
    Controlled {
        tid: usize,
        ctrl: &'static crate::sched::Controller,
        os: std::thread::JoinHandle<()>,
    },
}

/// Join handle for a thread created with [`spawn_named`].
pub struct JoinHandle(HandleInner);

impl std::fmt::Debug for JoinHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

impl JoinHandle {
    /// Wait for the thread to finish. Panics from the thread are reported
    /// through the explorer under exploration and swallowed here.
    pub fn join(self) -> std::thread::Result<()> {
        match self.0 {
            HandleInner::Std(h) => h.join(),
            HandleInner::Controlled { tid, ctrl, os } => {
                if let Some((c, self_tid)) = sched::current() {
                    debug_assert!(std::ptr::eq(c, ctrl));
                    c.join_thread(self_tid, tid);
                }
                os.join()
            }
        }
    }
}

/// Spawn a named thread. Under exploration on a controlled thread, the
/// child registers with the explorer before this returns (so schedules
/// are deterministic) and runs only when granted; otherwise this is
/// `std::thread::Builder::new().name(..).spawn(..)`.
pub fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> JoinHandle {
    if sched::is_active() {
        if let Some((ctrl, _tid)) = sched::current() {
            let (tid, os) = ctrl.spawn_controlled(name, Box::new(f));
            return JoinHandle(HandleInner::Controlled { tid, ctrl, os });
        }
    }
    let h = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .expect("failed to spawn thread");
    JoinHandle(HandleInner::Std(h))
}
