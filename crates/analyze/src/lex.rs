//! A real Rust lexer for the static-analysis front end.
//!
//! The original hygiene lint stripped comments and strings with a
//! per-line character scanner, which had two known blind spots: raw
//! string literals (`r#"..."#` — the scanner saw the inner `"` as a
//! string boundary) and nested block comments (`/* /* */ */` — the
//! scanner did not track block comments at all). This module replaces
//! that with a faithful single-pass lexer producing a token stream that
//! every lint rule and audit pass shares — one lex per file.
//!
//! Covered syntax:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), kept as tokens so annotation passes (`SAFETY`,
//!   `AUDIT`) can read them;
//! * string literals with escapes, byte strings (`b".."`), C strings
//!   (`c".."`), and raw strings with any hash count (`r".."`,
//!   `r#".."#`, `br##".."##`);
//! * char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\n'`, `'\u{7fff}'`);
//! * raw identifiers (`r#match`);
//! * numeric literals (including `1e-3`, `0xFF_u64`, `1_000.5`);
//! * single-character punctuation — rule matchers look at short token
//!   sequences (`thread :: spawn`), so multi-character operators are
//!   left as adjacent punct tokens.
//!
//! On top of the flat stream, [`Lexed`] computes the **token tree**: a
//! matched-delimiter pair map (`(` `)` / `[` `]` / `{` `}`) used by the
//! item parser to skip bodies, argument lists, and attribute contents
//! without re-scanning.

use std::fmt;

/// Lexical class of one token.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `spawn`, `r#match`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`) — the tick is part of the token.
    Lifetime,
    /// `// ...` comment (doc comments included), without the newline.
    LineComment,
    /// `/* ... */` comment, nesting handled; may span lines.
    BlockComment,
    /// String-ish literal: `"..."`, `b"..."`, `c"..."`, `r#"..."#`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal.
    Num,
    /// One punctuation character.
    Punct,
}

/// One token: kind plus location. Text is sliced out of the source on
/// demand via [`Lexed::text`], so a token is 16 bytes.
#[derive(Copy, Clone, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// Byte offset of the token's first byte.
    pub lo: u32,
    /// Byte offset one past the token's last byte.
    pub hi: u32,
}

/// Sentinel in the delimiter pair map: no matching partner.
pub const NO_PAIR: u32 = u32::MAX;

/// The lexed form of one source file: the source text, the token
/// stream, and the matched-delimiter map. Built once per file and
/// shared by every rule and pass (see `Corpus`).
pub struct Lexed {
    /// The source text the offsets index into.
    pub src: String,
    /// All tokens in source order, comments included.
    pub toks: Vec<Tok>,
    /// `pairs[i]` is the token index of the delimiter matching token
    /// `i` (in both directions), or [`NO_PAIR`] for non-delimiters and
    /// unbalanced delimiters.
    pub pairs: Vec<u32>,
}

impl fmt::Debug for Lexed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lexed")
            .field("bytes", &self.src.len())
            .field("tokens", &self.toks.len())
            .finish()
    }
}

impl Lexed {
    /// The text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.src[t.lo as usize..t.hi as usize]
    }

    /// Is token `i` an identifier with exactly this text?
    pub fn is_ident(&self, i: usize, s: &str) -> bool {
        self.toks[i].kind == TokKind::Ident && self.text(i) == s
    }

    /// Is token `i` the punctuation character `c`?
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.toks[i].kind == TokKind::Punct
            && self.src.as_bytes()[self.toks[i].lo as usize] == {
                let mut b = [0u8; 4];
                c.encode_utf8(&mut b);
                b[0]
            }
    }

    /// Index of the previous non-comment token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            if !self.toks[j].kind.is_comment() {
                return Some(j);
            }
        }
        None
    }

    /// Index of the next non-comment token after `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        let mut j = i + 1;
        while j < self.toks.len() {
            if !self.toks[j].kind.is_comment() {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// The token index matching delimiter `i`, if balanced.
    pub fn pair(&self, i: usize) -> Option<usize> {
        match self.pairs[i] {
            NO_PAIR => None,
            p => Some(p as usize),
        }
    }
}

impl TokKind {
    /// Line or block comment?
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lex `src` into tokens. Never fails: unterminated constructs consume
/// to end-of-file as a single token (the audit still sees honest line
/// numbers for everything before the error).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::with_capacity(n / 6);
    let mut i = 0usize;
    let mut line = 1u32;

    // Push a token spanning [lo, i).
    macro_rules! push {
        ($kind:expr, $lo:expr, $start_line:expr) => {
            toks.push(Tok {
                kind: $kind,
                line: $start_line,
                lo: $lo as u32,
                hi: i as u32,
            })
        };
    }

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let lo = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                push!(TokKind::LineComment, lo, line);
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let (lo, start_line) = (i, line);
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push!(TokKind::BlockComment, lo, start_line);
            }
            b'"' => {
                let (lo, start_line) = (i, line);
                i += 1;
                scan_quoted(b, &mut i, &mut line);
                push!(TokKind::Str, lo, start_line);
            }
            b'\'' => {
                let lo = i;
                // Lifetime vs char literal. After the tick:
                //  * `\`    -> escaped char literal;
                //  * ident-start followed (after the full ident) by no
                //    closing tick -> lifetime;
                //  * anything else -> char literal.
                if i + 1 < n && b[i + 1] == b'\\' {
                    i += 1;
                    scan_char_tail(b, &mut i, &mut line);
                    push!(TokKind::Char, lo, line);
                } else if i + 1 < n && is_ident_start(b[i + 1]) {
                    let mut j = i + 2;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if j < n && b[j] == b'\'' && j == i + 2 {
                        // Exactly one ident char then a tick: 'x'.
                        i = j + 1;
                        push!(TokKind::Char, lo, line);
                    } else {
                        // 'abc or 'x followed by non-tick: a lifetime.
                        i = j;
                        push!(TokKind::Lifetime, lo, line);
                    }
                } else {
                    // 'c' for non-ident c (e.g. '+', ' ', unicode).
                    i += 1;
                    scan_char_tail(b, &mut i, &mut line);
                    push!(TokKind::Char, lo, line);
                }
            }
            c if c.is_ascii_digit() => {
                let lo = i;
                let hex = i + 1 < n && b[i] == b'0' && (b[i + 1] == b'x' || b[i + 1] == b'X');
                i += 1;
                while i < n {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign (1e-3 / 2E+5) — not in hex,
                        // where 0xE is a digit and `-` is an operator.
                        if !hex
                            && (d == b'e' || d == b'E')
                            && i + 2 < n
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if d == b'.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                        // A decimal point: `1.5`. A range `0..9` sees
                        // `.` followed by `.`, which fails the digit
                        // test above and ends the literal.
                        i += 1;
                    } else {
                        break;
                    }
                }
                push!(TokKind::Num, lo, line);
            }
            c if is_ident_start(c) => {
                let lo = i;
                // Raw string / byte string / c-string prefixes and raw
                // identifiers all start like an ident.
                let rest = &b[i..];
                if let Some((kind, len)) = scan_prefixed_literal(rest, &mut line) {
                    i += len;
                    // `line` already advanced over newlines inside the
                    // token; recover the start line for the record.
                    push!(kind, lo, line_of_start(src, lo, line, i));
                } else {
                    i += 1;
                    while i < n && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    push!(TokKind::Ident, lo, line);
                }
            }
            _ => {
                let lo = i;
                i += 1;
                push!(TokKind::Punct, lo, line);
            }
        }
    }

    let pairs = match_delims(&toks, src);
    Lexed {
        src: src.to_string(),
        toks,
        pairs,
    }
}

/// Start line of a token that may span newlines: `line` is the line of
/// the *current* position after scanning; subtract the newlines inside
/// the token to recover its first line.
fn line_of_start(src: &str, lo: usize, line_now: u32, hi: usize) -> u32 {
    let inner_newlines = src[lo..hi].bytes().filter(|&c| c == b'\n').count() as u32;
    line_now - inner_newlines
}

/// Try to scan a prefixed literal (`r"`, `r#"`, `b"`, `b'`, `br#"`,
/// `c"`, `cr#"`, ...) or a raw identifier (`r#ident`) starting at the
/// current position. Returns the token kind and byte length, advancing
/// the line counter over any newlines consumed. Returns `None` when the
/// prefix is an ordinary identifier.
fn scan_prefixed_literal(rest: &[u8], line: &mut u32) -> Option<(TokKind, usize)> {
    let b = rest;
    let n = b.len();
    // Longest prefixes first: br / cr, then b / c / r.
    let (prefix_len, allows_raw, allows_char) = match b {
        [b'b', b'r', ..] => (2, true, false),
        [b'c', b'r', ..] => (2, true, false),
        [b'b', ..] => (1, false, true),
        [b'c', ..] => (1, false, false),
        [b'r', ..] => (1, true, false),
        _ => return None,
    };
    let after = &b[prefix_len..];
    // Raw forms: prefix + #* + ".
    if allows_raw {
        let mut hashes = 0usize;
        while hashes < after.len() && after[hashes] == b'#' {
            hashes += 1;
        }
        if hashes < after.len() && after[hashes] == b'"' {
            // Raw string: scan to `"` + hashes.
            let mut i = prefix_len + hashes + 1;
            'outer: while i < n {
                if b[i] == b'\n' {
                    *line += 1;
                    i += 1;
                    continue;
                }
                if b[i] == b'"' {
                    let mut h = 0usize;
                    while h < hashes && i + 1 + h < n && b[i + 1 + h] == b'#' {
                        h += 1;
                    }
                    if h == hashes {
                        i += 1 + hashes;
                        break 'outer;
                    }
                }
                i += 1;
            }
            return Some((TokKind::Str, i));
        }
        if hashes > 0 && prefix_len == 1 && b[0] == b'r' {
            // r# + ident-start: raw identifier (only one hash is legal).
            if hashes == 1 && prefix_len + 1 < n && is_ident_start(b[prefix_len + 1]) {
                let mut i = prefix_len + 2;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                return Some((TokKind::Ident, i));
            }
            return None;
        }
    }
    // Non-raw quoted forms: b"..", c"..", b'..'.
    if prefix_len < n && b[prefix_len] == b'"' {
        let mut i = prefix_len + 1;
        scan_quoted(b, &mut i, line);
        return Some((TokKind::Str, i));
    }
    if allows_char && prefix_len < n && b[prefix_len] == b'\'' {
        let mut i = prefix_len + 1;
        scan_char_tail(b, &mut i, line);
        return Some((TokKind::Char, i));
    }
    None
}

/// Scan the remainder of a `"`-quoted string (cursor just past the
/// opening quote), honoring `\"` and `\\` escapes.
fn scan_quoted(b: &[u8], i: &mut usize, line: &mut u32) {
    let n = b.len();
    while *i < n {
        match b[*i] {
            b'\\' => {
                // A `\<newline>` line-continuation escape still ends a
                // source line — keep the line counter honest.
                if *i + 1 < n && b[*i + 1] == b'\n' {
                    *line += 1;
                }
                *i = (*i + 2).min(n);
            }
            b'"' => {
                *i += 1;
                return;
            }
            b'\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Scan the remainder of a char literal (cursor just past the tick,
/// possibly at a `\`), through the closing tick.
fn scan_char_tail(b: &[u8], i: &mut usize, line: &mut u32) {
    let n = b.len();
    while *i < n {
        match b[*i] {
            b'\\' => {
                if *i + 1 < n && b[*i + 1] == b'\n' {
                    *line += 1;
                }
                *i = (*i + 2).min(n);
            }
            b'\'' => {
                *i += 1;
                return;
            }
            b'\n' => {
                // Unterminated char literal; stop at the newline so the
                // rest of the file still lexes.
                *line += 1;
                *i += 1;
                return;
            }
            _ => *i += 1,
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Compute the matched-delimiter pair map over the token stream.
fn match_delims(toks: &[Tok], src: &str) -> Vec<u32> {
    let mut pairs = vec![NO_PAIR; toks.len()];
    let mut stack: Vec<(usize, u8)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        let c = src.as_bytes()[t.lo as usize];
        match c {
            b'(' | b'[' | b'{' => stack.push((i, c)),
            b')' | b']' | b'}' => {
                let want = match c {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                // Pop unmatched openers (tolerate malformed input).
                while let Some(&(j, open)) = stack.last() {
                    stack.pop();
                    if open == want {
                        pairs[i] = j as u32;
                        pairs[j] = i as u32;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        let lx = lex(src);
        (0..lx.toks.len())
            .map(|i| (lx.toks[i].kind, lx.text(i).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_puncts() {
        let ks = kinds("unsafe fn f(x: u32) -> u32 { x }");
        let idents: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["unsafe", "fn", "f", "x", "u32", "u32", "x"]);
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        // The legacy scanner's first blind spot: the `"` inside a raw
        // string resynced its string state and hid following code.
        let src = r####"let s = r#"unsafe { *p } "quoted" "#; static mut X: u8 = 0;"####;
        let lx = lex(src);
        let strs: Vec<_> = (0..lx.toks.len())
            .filter(|&i| lx.toks[i].kind == TokKind::Str)
            .map(|i| lx.text(i).to_string())
            .collect();
        assert_eq!(strs.len(), 1, "{strs:?}");
        assert!(strs[0].starts_with("r#\"") && strs[0].ends_with("\"#"));
        // The code *after* the raw string must still be visible.
        let idents: Vec<_> = (0..lx.toks.len())
            .filter(|&i| lx.toks[i].kind == TokKind::Ident)
            .map(|i| lx.text(i).to_string())
            .collect();
        assert!(idents.contains(&"static".to_string()), "{idents:?}");
        assert!(idents.contains(&"mut".to_string()));
        // And the `unsafe` *inside* the raw string must not be a token.
        assert_eq!(idents.iter().filter(|s| *s == "unsafe").count(), 0);
    }

    #[test]
    fn raw_strings_with_more_hashes_and_byte_raw() {
        let src = "let a = r##\"x \"# y\"##; let b = br#\"z\"#; let c = r\"w\";";
        let lx = lex(src);
        let strs = (0..lx.toks.len())
            .filter(|&i| lx.toks[i].kind == TokKind::Str)
            .count();
        assert_eq!(strs, 3);
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        // The legacy scanner's second blind spot.
        let src = "/* outer /* inner unsafe */ still comment */ fn ok() {}";
        let lx = lex(src);
        assert_eq!(lx.toks[0].kind, TokKind::BlockComment);
        assert!(lx.text(0).contains("inner unsafe"));
        let idents: Vec<_> = (0..lx.toks.len())
            .filter(|&i| lx.toks[i].kind == TokKind::Ident)
            .map(|i| lx.text(i).to_string())
            .collect();
        assert_eq!(idents, ["fn", "ok"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        let chars = ks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let ks = kinds("fn f(x: &'static str) {}");
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::Lifetime && s == "'static"));
    }

    #[test]
    fn raw_identifiers() {
        let ks = kinds("let r#match = 1;");
        assert!(ks
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "r#match"));
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let ks = kinds("let a = 1e-3; let b = 0xFF_u64; for i in 0..10 {}");
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["1e-3", "0xFF_u64", "0", "10"]);
    }

    #[test]
    fn comments_carry_text_and_lines() {
        let src = "// first\nfn f() {}\n/* second\nspans lines */\nfn g() {}\n";
        let lx = lex(src);
        assert_eq!(lx.toks[0].kind, TokKind::LineComment);
        assert_eq!(lx.toks[0].line, 1);
        let block = (0..lx.toks.len())
            .find(|&i| lx.toks[i].kind == TokKind::BlockComment)
            .unwrap();
        assert_eq!(lx.toks[block].line, 3);
        let g = (0..lx.toks.len()).find(|&i| lx.is_ident(i, "g")).unwrap();
        assert_eq!(lx.toks[g].line, 5);
    }

    #[test]
    fn delimiter_pairs_match() {
        let lx = lex("fn f(a: [u8; 4]) { if x { y(); } }");
        // First `(` matches the `)` after the array type.
        let open = (0..lx.toks.len()).find(|&i| lx.is_punct(i, '(')).unwrap();
        let close = lx.pair(open).unwrap();
        assert!(lx.is_punct(close, ')'));
        assert_eq!(lx.pair(close), Some(open));
        // Outer `{` matches the final `}`.
        let brace = (0..lx.toks.len()).find(|&i| lx.is_punct(i, '{')).unwrap();
        let end = lx.pair(brace).unwrap();
        assert_eq!(end, lx.toks.len() - 1);
    }

    #[test]
    fn string_escapes_do_not_desync() {
        let lx = lex(r#"let s = "a \" b"; static mut Z: u8 = 0;"#);
        let idents: Vec<_> = (0..lx.toks.len())
            .filter(|&i| lx.toks[i].kind == TokKind::Ident)
            .map(|i| lx.text(i).to_string())
            .collect();
        assert!(idents.contains(&"static".to_string()));
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        for src in ["/* never closed", "\"never closed", "r#\"never closed", "'"] {
            let lx = lex(src);
            assert!(!lx.toks.is_empty() || src.is_empty());
        }
    }
}
