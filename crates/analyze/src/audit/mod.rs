//! dcmesh-audit: whole-workspace static analysis over one shared lex.
//!
//! The audit is three passes over a [`Corpus`] — every workspace `.rs`
//! file lexed exactly once ([`crate::lex`]), with the token stream
//! shared by every rule:
//!
//! 1. the legacy hygiene lints ([`crate::lint`], ported onto the lexed
//!    front end),
//! 2. the panic-freedom call-graph pass ([`callgraph`]): fns marked
//!    `// AUDIT: no_panic` must not reach `panic!`/`unwrap`/`expect`/
//!    `assert!`/slice indexing without an `// AUDIT: waiver(reason)`,
//!    reported with the full call chain, and
//! 3. the machine-checked SAFETY contract pass ([`contracts`]):
//!    structured `// SAFETY: (align=64, bounds=.., aliasing=..,
//!    cpu=avx2)` claims are cross-checked against the arena alignment
//!    constant, `#[target_feature]` attributes, and every call site.
//!
//! Analyzer cost is visible in telemetry: [`Corpus::load`] records
//! `audit.files` and `audit.lex_ns` through `dcmesh-obs`.

pub mod callgraph;
pub mod contracts;
pub mod items;

use std::fmt;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use dcmesh_obs as obs;
use obs::json::Json;

use crate::lex::{self, Lexed};
use crate::lint;

/// One lexed workspace file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The shared lex — every rule and pass reads this.
    pub lx: Lexed,
}

/// Every workspace source file, lexed once.
#[derive(Debug)]
pub struct Corpus {
    /// Files in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
    /// Nanoseconds spent lexing (also recorded as `audit.lex_ns`).
    pub lex_ns: u64,
}

impl Corpus {
    /// Lex every `.rs` file under the workspace scan roots. Records
    /// `audit.files` / `audit.lex_ns` counters through `dcmesh-obs`.
    pub fn load(root: &Path) -> std::io::Result<Corpus> {
        let mut paths = Vec::new();
        for sub in lint::SCAN_ROOTS {
            lint::collect_rs(&root.join(sub), &mut paths);
        }
        let mut sources = Vec::with_capacity(paths.len());
        for path in paths {
            let contents = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push((rel, contents));
        }
        Ok(Self::from_sources(sources))
    }

    /// Build a corpus from in-memory `(relative path, source)` pairs —
    /// the fixture-test entry point, and the tail of [`Corpus::load`].
    pub fn from_sources(sources: Vec<(String, String)>) -> Corpus {
        let start = Instant::now();
        let files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(rel, src)| SourceFile {
                rel,
                lx: lex::lex(&src),
            })
            .collect();
        let lex_ns = start.elapsed().as_nanos() as u64;
        obs::metrics::counter_add("audit.files", files.len() as u64);
        obs::metrics::counter_add("audit.lex_ns", lex_ns);
        Corpus { files, lex_ns }
    }
}

/// One audit finding — a lint violation, an unwaived panic path, or a
/// broken contract.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Kebab-case rule name (`no-panic`, `contract-cpu`, lint names).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// For `no-panic`: the call chain from the audited root to the
    /// panic source, each frame `path:line name`. Empty otherwise.
    pub chain: Vec<String>,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )?;
        for (depth, frame) in self.chain.iter().enumerate() {
            write!(f, "\n  {}{}", "  ".repeat(depth), frame)?;
        }
        Ok(())
    }
}

/// Aggregate numbers for the `--report` view and the JSON stats block.
#[derive(Clone, Debug, Default)]
pub struct AuditStats {
    /// Files lexed.
    pub files: usize,
    /// Nanoseconds spent lexing (excluded from golden JSON).
    pub lex_ns: u64,
    /// `fn` items extracted.
    pub fns: usize,
    /// Items marked `AUDIT: no_panic`.
    pub no_panic_roots: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Structured contracts parsed.
    pub contracts: usize,
    /// Panic sources suppressed by waivers.
    pub waived: usize,
}

/// The result of one whole-corpus audit.
#[derive(Debug)]
pub struct AuditReport {
    /// Every finding, sorted by `(path, line, rule, message)`.
    pub findings: Vec<AuditFinding>,
    /// Aggregate numbers.
    pub stats: AuditStats,
}

impl AuditReport {
    /// Findings under one rule name.
    pub fn by_rule(&self, rule: &str) -> Vec<&AuditFinding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// JSON form for downstream tooling (telemetry compare). With
    /// `include_timings` false the non-deterministic `lex_ns` is
    /// omitted so the output is golden-file stable.
    pub fn to_json(&self, include_timings: bool) -> Json {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let mut obj = vec![
                    ("path".to_string(), Json::Str(f.path.clone())),
                    ("line".to_string(), Json::Num(f.line as f64)),
                    ("rule".to_string(), Json::Str(f.rule.clone())),
                    ("message".to_string(), Json::Str(f.message.clone())),
                ];
                if !f.chain.is_empty() {
                    obj.push((
                        "chain".to_string(),
                        Json::Arr(f.chain.iter().cloned().map(Json::Str).collect()),
                    ));
                }
                Json::Obj(obj)
            })
            .collect();
        let mut stats = vec![
            ("files".to_string(), Json::Num(self.stats.files as f64)),
            ("fns".to_string(), Json::Num(self.stats.fns as f64)),
            (
                "no_panic_roots".to_string(),
                Json::Num(self.stats.no_panic_roots as f64),
            ),
            (
                "call_edges".to_string(),
                Json::Num(self.stats.call_edges as f64),
            ),
            (
                "contracts".to_string(),
                Json::Num(self.stats.contracts as f64),
            ),
            ("waived".to_string(), Json::Num(self.stats.waived as f64)),
        ];
        if include_timings {
            stats.push(("lex_ns".to_string(), Json::Num(self.stats.lex_ns as f64)));
        }
        Json::Obj(vec![
            ("version".to_string(), Json::Num(1.0)),
            ("findings".to_string(), Json::Arr(findings)),
            ("stats".to_string(), Json::Obj(stats)),
        ])
    }
}

/// Run every pass over the corpus.
pub fn run(corpus: &Corpus) -> AuditReport {
    let mut items = Vec::new();
    let mut anns = Vec::new();
    let mut findings = Vec::new();

    for (fi, file) in corpus.files.iter().enumerate() {
        items.extend(items::extract_file(fi, &file.lx));
        anns.push(items::annotations(&file.lx));
        // Pass 1: the legacy hygiene lints on the shared lex.
        findings.extend(
            lint::scan_lexed(&file.rel, &file.lx)
                .into_iter()
                .map(|f| AuditFinding {
                    path: f.path,
                    line: f.line,
                    rule: f.rule.name().to_string(),
                    message: f.message,
                    chain: Vec::new(),
                }),
        );
    }

    let graph = callgraph::build(corpus, &items, &anns);
    // Pass 2: panic freedom from every audited root.
    findings.extend(callgraph::check_no_panic(corpus, &items, &graph));
    // Pass 3: contract checks.
    findings.extend(contracts::check(corpus, &items, &graph, &anns));

    findings.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });

    let stats = AuditStats {
        files: corpus.files.len(),
        lex_ns: corpus.lex_ns,
        fns: items.len(),
        no_panic_roots: items.iter().filter(|it| it.no_panic).count(),
        call_edges: graph.edges,
        contracts: anns.iter().map(|a| a.contracts.len()).sum(),
        waived: graph.waived,
    };
    AuditReport { findings, stats }
}

/// Shared entry point for the `audit` binary and its `lint` alias.
///
/// Usage: `audit [--format=json|text] [--report] [ROOT]`. Exit code is
/// failure iff any finding is reported.
pub fn cli_main(args: impl Iterator<Item = String>) -> ExitCode {
    let mut format_json = false;
    let mut report = false;
    let mut root_arg: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--format=json" => format_json = true,
            "--format=text" => format_json = false,
            "--report" => report = true,
            "--help" | "-h" => {
                eprintln!("usage: audit [--format=json|text] [--report] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root_arg = Some(other.to_string()),
            other => {
                eprintln!("audit: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    obs::enable();
    let root = match root_arg {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
            let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            match lint::find_workspace_root(&cwd).or_else(|| lint::find_workspace_root(&manifest)) {
                Some(r) => r,
                None => {
                    eprintln!("audit: could not locate workspace root from {cwd:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let corpus = match Corpus::load(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("audit: failed to read workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let audit = run(&corpus);

    if format_json {
        println!("{}", audit.to_json(true));
    } else {
        for f in &audit.findings {
            println!("{f}");
        }
        if audit.findings.is_empty() {
            eprintln!(
                "audit: clean — {} files, {} fns, {} no_panic roots, {} call edges, \
                 {} contracts, {} waived",
                audit.stats.files,
                audit.stats.fns,
                audit.stats.no_panic_roots,
                audit.stats.call_edges,
                audit.stats.contracts,
                audit.stats.waived
            );
        } else {
            eprintln!("audit: {} finding(s)", audit.findings.len());
        }
    }
    if report {
        let snap = obs::metrics::snapshot();
        for (name, v) in &snap.counters {
            eprintln!("counter {name} = {v}");
        }
    }
    if audit.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_from_sources_counts_stats() {
        let corpus = Corpus::from_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "// AUDIT: no_panic\npub fn f(v: &[u32]) -> u32 { g() }\nfn g() -> u32 { 7 }\n"
                .to_string(),
        )]);
        let report = run(&corpus);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.stats.files, 1);
        assert_eq!(report.stats.fns, 2);
        assert_eq!(report.stats.no_panic_roots, 1);
        assert_eq!(report.stats.call_edges, 1);
    }

    #[test]
    fn json_report_round_trips() {
        let corpus = Corpus::from_sources(vec![(
            "crates/x/src/lib.rs".to_string(),
            "// AUDIT: no_panic\npub fn f(v: &[u32]) -> u32 { v[0] }\n".to_string(),
        )]);
        let report = run(&corpus);
        assert_eq!(report.findings.len(), 1);
        let json = report.to_json(false).to_string();
        let parsed = Json::parse(&json).expect("valid json");
        let findings = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].get("rule").and_then(Json::as_str),
            Some("no-panic")
        );
        assert!(findings[0].get("chain").is_some());
        // Deterministic form must not carry timings.
        assert!(parsed.get("stats").unwrap().get("lex_ns").is_none());
    }
}
