//! Item extraction: per-file `fn` signatures, attributes, and the
//! audit annotations (`AUDIT: no_panic`, `AUDIT: waiver(..)`, and
//! structured `SAFETY` contracts) attached to them.
//!
//! The extractor is a token-tree walk over [`crate::lex::Lexed`] — no
//! expression parsing. For every `fn` keyword it records the name, the
//! qualifier flags, the `#[target_feature]` attribute, the body token
//! range (via the matched-delimiter map), and the annotation block of
//! contiguous comments/attributes directly above the declaration.

use std::collections::HashMap;

use crate::lex::{Lexed, TokKind};

/// Keys the structured SAFETY contract grammar accepts.
pub const CONTRACT_KEYS: [&str; 4] = ["align", "bounds", "aliasing", "cpu"];

/// One structured safety contract: `// SAFETY: (key=value, ...) prose`.
///
/// The parser also accepts the bare `SAFETY(key=value, ...)` spelling
/// (the grammar in older annotations), but emitted code uses the colon
/// form so `clippy::undocumented_unsafe_blocks` — which requires the
/// literal `SAFETY:` — stays satisfied by the same comment.
#[derive(Clone, Debug)]
pub struct Contract {
    /// 1-based line of the comment carrying the contract.
    pub line: u32,
    /// `key=value` pairs in source order (keys may repeat, e.g. two
    /// `bounds=` claims covering two pointers).
    pub keys: Vec<(String, String)>,
}

impl Contract {
    /// First value claimed for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.keys
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Keys not in the accepted grammar ([`CONTRACT_KEYS`]).
    pub fn unknown_keys(&self) -> Vec<&str> {
        self.keys
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !CONTRACT_KEYS.contains(k))
            .collect()
    }
}

/// Parse a structured contract out of one comment's text, if present.
///
/// Grammar: `SAFETY: (key=value, key=value, ...)` or `SAFETY(...)`;
/// values run to the next comma or the closing paren and are trimmed.
/// A prose-only `// SAFETY: explanation` (no parenthesized key list)
/// yields `None` — it documents, but claims nothing checkable.
pub fn parse_contract(comment: &str, line: u32) -> Option<Contract> {
    let at = comment.find("SAFETY")?;
    let rest = &comment[at + "SAFETY".len()..];
    // Accept `SAFETY: (` and `SAFETY(`; anything else is prose.
    let body = rest
        .strip_prefix(": (")
        .or_else(|| rest.strip_prefix('('))?;
    let close = body.find(')')?;
    let list = &body[..close];
    let mut keys = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('=') {
            Some((k, v)) => keys.push((k.trim().to_string(), v.trim().to_string())),
            // A bare word in the key list is kept with an empty value
            // so the syntax check can name it in its finding.
            None => keys.push((part.to_string(), String::new())),
        }
    }
    if keys.is_empty() {
        return None;
    }
    Some(Contract { line, keys })
}

/// Parse a contract from a run of comment parts (`(line, text)`),
/// merging continuation lines: a contract may wrap across several `//`
/// lines before its closing paren. The contract's line is the line of
/// the part carrying `SAFETY`.
pub fn parse_contract_parts(parts: &[(u32, &str)]) -> Option<Contract> {
    let idx = parts.iter().position(|(_, t)| t.contains("SAFETY"))?;
    let line = parts[idx].0;
    let mut text = String::new();
    for (_, t) in &parts[idx..] {
        text.push_str(t.trim_start_matches('/').trim());
        text.push(' ');
    }
    parse_contract(&text, line)
}

/// One `fn` item found in a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Index into the corpus file list.
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared `unsafe fn`?
    pub is_unsafe: bool,
    /// First parameter is a `self` receiver (`self`, `&self`,
    /// `&mut self`, `&'a self`, `mut self`, `self: Arc<Self>`).
    pub has_self: bool,
    /// The feature string of `#[target_feature(enable = "...")]`.
    pub target_feature: Option<String>,
    /// Marked `// AUDIT: no_panic` — a panic-freedom root.
    pub no_panic: bool,
    /// Structured contract in the annotation block above the item.
    pub contract: Option<Contract>,
    /// Token-index range of the body braces `(open, close)`, if the
    /// item has a body (trait/extern declarations do not).
    pub body: Option<(usize, usize)>,
}

/// Per-file audit annotations that are not attached to a single item.
#[derive(Default, Debug)]
pub struct FileAnn {
    /// Every structured contract in the file, by token index of the
    /// comment carrying it (items' own contracts are also listed).
    pub contracts: Vec<(usize, Contract)>,
    /// Lines covered by an `AUDIT: waiver(reason)` — the comment's own
    /// line plus the next code line — mapped to the reason.
    pub waived: HashMap<u32, String>,
}

/// Is this comment a *plain* comment (`//`, `/*`) rather than a doc
/// comment? Audit annotations are only recognized in plain comments:
/// doc text routinely *quotes* the grammar (this module's own docs do)
/// without claiming anything.
pub fn is_plain_comment(text: &str) -> bool {
    if let Some(rest) = text.strip_prefix("//") {
        !rest.starts_with('/') && !rest.starts_with('!')
    } else if let Some(rest) = text.strip_prefix("/*") {
        !rest.starts_with('*') && !rest.starts_with('!')
    } else {
        false
    }
}

/// Collect contracts and waivers from every plain comment in the file.
///
/// Contracts are parsed over *runs* of consecutive plain `//` lines
/// (token-adjacent, line-consecutive), so a contract may wrap. Waivers
/// stay single-line.
pub fn annotations(lx: &Lexed) -> FileAnn {
    let mut ann = FileAnn::default();
    let mut i = 0;
    while i < lx.toks.len() {
        if !lx.toks[i].kind.is_comment() {
            i += 1;
            continue;
        }
        let text = lx.text(i);
        if !is_plain_comment(text) {
            i += 1;
            continue;
        }
        // Extend the run of adjacent plain line comments.
        let start = i;
        let mut end = i;
        if lx.toks[i].kind == TokKind::LineComment {
            while end + 1 < lx.toks.len()
                && lx.toks[end + 1].kind == TokKind::LineComment
                && lx.toks[end + 1].line == lx.toks[end].line + 1
                && is_plain_comment(lx.text(end + 1))
            {
                end += 1;
            }
        }
        let parts: Vec<(u32, &str)> = (start..=end)
            .map(|k| (lx.toks[k].line, lx.text(k)))
            .collect();
        if let Some(c) = parse_contract_parts(&parts) {
            ann.contracts.push((start, c));
        }
        for k in start..=end {
            let text = lx.text(k);
            let line = lx.toks[k].line;
            if let Some(at) = text.find("AUDIT: waiver(") {
                let rest = &text[at + "AUDIT: waiver(".len()..];
                let reason = rest.split(')').next().unwrap_or("").trim().to_string();
                ann.waived.insert(line, reason.clone());
                // The waiver also covers the next code line (the idiom
                // of a waiver comment above the flagged code).
                if let Some(j) = lx.next_code(end) {
                    ann.waived.insert(lx.toks[j].line, reason);
                }
            }
        }
        i = end + 1;
    }
    ann
}

/// Extract every `fn` item from one lexed file.
pub fn extract_file(file: usize, lx: &Lexed) -> Vec<FnItem> {
    let mut items = Vec::new();
    for i in 0..lx.toks.len() {
        if !lx.is_ident(i, "fn") {
            continue;
        }
        // `fn` pointer types (`fn(u32) -> u32`) have no name ident.
        let Some(name_tok) = lx.next_code(i) else {
            continue;
        };
        if lx.toks[name_tok].kind != TokKind::Ident {
            continue;
        }
        let name = lx.text(name_tok).to_string();
        let line = lx.toks[i].line;

        // Qualifiers before `fn`: `pub(crate) const unsafe extern "C"`.
        let mut is_unsafe = false;
        let mut decl_start = i;
        let mut j = i;
        while let Some(p) = lx.prev_code(j) {
            let qualifier = match lx.toks[p].kind {
                TokKind::Ident => matches!(
                    lx.text(p),
                    "pub"
                        | "unsafe"
                        | "const"
                        | "extern"
                        | "async"
                        | "default"
                        | "crate"
                        | "super"
                        | "self"
                        | "in"
                ),
                TokKind::Str => lx.prev_code(p).is_some_and(|q| lx.is_ident(q, "extern")),
                TokKind::Punct => {
                    // `pub(crate)` / `pub(in path)` parens.
                    (lx.is_punct(p, ')') || lx.is_punct(p, '('))
                        && lx
                            .pair(p)
                            .and_then(|o| lx.prev_code(o.min(p)))
                            .is_some_and(|q| lx.is_ident(q, "pub"))
                }
                _ => false,
            };
            if !qualifier {
                break;
            }
            if lx.is_ident(p, "unsafe") {
                is_unsafe = true;
            }
            decl_start = p;
            j = p;
        }

        // The annotation block: contiguous comments and `#[...]`
        // attribute groups directly above the declaration.
        let mut target_feature = None;
        let mut no_panic = false;
        let mut comment_toks: Vec<usize> = Vec::new();
        let mut k = decl_start;
        while k > 0 {
            let prev = k - 1;
            match lx.toks[prev].kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    let text = lx.text(prev);
                    if is_plain_comment(text) {
                        if text.contains("AUDIT: no_panic") {
                            no_panic = true;
                        }
                        comment_toks.push(prev);
                    }
                    k = prev;
                }
                TokKind::Punct if lx.is_punct(prev, ']') => {
                    // An attribute group `#[...]` ends here.
                    let Some(open) = lx.pair(prev) else { break };
                    let Some(hash) = open.checked_sub(1) else {
                        break;
                    };
                    if !lx.is_punct(hash, '#') {
                        break;
                    }
                    if let Some(feat) = attr_target_feature(lx, open, prev) {
                        target_feature = Some(feat);
                    }
                    k = hash;
                }
                _ => break,
            }
        }
        // Parse the (possibly multi-line) contract over the block's
        // plain comments in source order.
        comment_toks.reverse();
        let parts: Vec<(u32, &str)> = comment_toks
            .iter()
            .map(|&t| (lx.toks[t].line, lx.text(t)))
            .collect();
        let contract = parse_contract_parts(&parts);

        let body = find_body(lx, name_tok);
        items.push(FnItem {
            file,
            name,
            line,
            is_unsafe,
            has_self: has_self_receiver(lx, name_tok),
            target_feature,
            no_panic,
            contract,
            body,
        });
    }
    items
}

/// If tokens `(open..close)` are a `target_feature(enable = "X")`
/// attribute body, return `X`.
fn attr_target_feature(lx: &Lexed, open: usize, close: usize) -> Option<String> {
    let mut i = open;
    let mut seen_tf = false;
    while i < close {
        if lx.is_ident(i, "target_feature") {
            seen_tf = true;
        }
        if seen_tf && lx.toks[i].kind == TokKind::Str {
            let s = lx.text(i);
            return Some(s.trim_matches('"').to_string());
        }
        i += 1;
    }
    None
}

/// Does the parameter list open with a `self` receiver? Method calls
/// (`x.name(..)`) only resolve to fns that take `self`, so an atomic
/// `.load(Ordering)` cannot alias a free fn named `load`.
fn has_self_receiver(lx: &Lexed, name_tok: usize) -> bool {
    let mut angle = 0i32;
    let mut i = name_tok;
    while let Some(j) = lx.next_code(i) {
        i = j;
        if lx.toks[j].kind != TokKind::Punct {
            continue;
        }
        match lx.src.as_bytes()[lx.toks[j].lo as usize] {
            b'<' => angle += 1,
            b'>' => {
                let arrow = j > 0 && lx.is_punct(j - 1, '-') && lx.toks[j - 1].hi == lx.toks[j].lo;
                if !arrow && angle > 0 {
                    angle -= 1;
                }
            }
            b'(' if angle == 0 => {
                // Walk `& 'a mut` prefixes, then require the ident `self`.
                let mut k = j;
                while let Some(m) = lx.next_code(k) {
                    k = m;
                    match lx.toks[m].kind {
                        TokKind::Lifetime => {}
                        TokKind::Punct if lx.is_punct(m, '&') => {}
                        TokKind::Ident if lx.text(m) == "mut" => {}
                        TokKind::Ident => return lx.text(m) == "self",
                        _ => return false,
                    }
                }
                return false;
            }
            b'{' | b';' if angle == 0 => return false,
            _ => {}
        }
    }
    false
}

/// From the fn name token, locate the body brace pair: skip the generic
/// parameter list (tracking `<`/`>` depth, ignoring `->` arrows), jump
/// the argument parens via the pair map, then scan the return type and
/// where-clause for the opening `{` (body) or `;` (declaration only).
fn find_body(lx: &Lexed, name_tok: usize) -> Option<(usize, usize)> {
    let mut angle = 0i32;
    let mut i = name_tok;
    let mut seen_params = false;
    while let Some(j) = lx.next_code(i) {
        i = j;
        if lx.toks[j].kind == TokKind::Punct {
            let c = lx.src.as_bytes()[lx.toks[j].lo as usize];
            match c {
                b'<' => angle += 1,
                b'>' => {
                    // `->` is an arrow, not a generic close. The two
                    // puncts are adjacent in the source.
                    let arrow =
                        j > 0 && lx.is_punct(j - 1, '-') && lx.toks[j - 1].hi == lx.toks[j].lo;
                    if !arrow && angle > 0 {
                        angle -= 1;
                    }
                }
                b'(' | b'[' => {
                    let close = lx.pair(j)?;
                    if c == b'(' && angle == 0 && !seen_params {
                        seen_params = true;
                    }
                    i = close;
                }
                b'{' if angle == 0 => {
                    if !seen_params {
                        return None; // malformed; bail out
                    }
                    return lx.pair(j).map(|close| (j, close));
                }
                b';' if angle == 0 && seen_params => return None,
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items_of(src: &str) -> Vec<FnItem> {
        extract_file(0, &lex(src))
    }

    #[test]
    fn simple_fn_with_body() {
        let it = items_of("pub fn add(a: u32, b: u32) -> u32 { a + b }\n");
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].name, "add");
        assert!(!it[0].is_unsafe);
        assert!(it[0].body.is_some());
    }

    #[test]
    fn unsafe_and_target_feature_detected() {
        let src = "#[target_feature(enable = \"avx2\")]\n\
                   pub unsafe fn k(p: *const f64) {}\n";
        let it = items_of(src);
        assert_eq!(it.len(), 1);
        assert!(it[0].is_unsafe);
        assert_eq!(it[0].target_feature.as_deref(), Some("avx2"));
    }

    #[test]
    fn generics_and_return_types_do_not_confuse_body() {
        let src = "fn f<F: Fn(u32) -> u32, const N: usize>(x: F) -> [u64; N] { loop {} }\n";
        let it = items_of(src);
        assert_eq!(it.len(), 1);
        let (open, close) = it[0].body.unwrap();
        assert!(open < close);
    }

    #[test]
    fn trait_method_declaration_has_no_body() {
        let it = items_of("trait T { fn m(&self) -> u32; }\n");
        assert_eq!(it.len(), 1);
        assert!(it[0].body.is_none());
    }

    #[test]
    fn no_panic_and_contract_read_from_annotation_block() {
        let src = "// AUDIT: no_panic\n\
                   // SAFETY: (bounds=i < n, aliasing=disjoint) claimed ranges.\n\
                   #[inline]\n\
                   pub unsafe fn k(p: *mut f64, i: usize) {}\n";
        let it = items_of(src);
        assert!(it[0].no_panic);
        let c = it[0].contract.as_ref().unwrap();
        assert_eq!(c.get("bounds"), Some("i < n"));
        assert_eq!(c.get("aliasing"), Some("disjoint"));
    }

    #[test]
    fn contract_parser_accepts_both_spellings() {
        let colon = parse_contract("// SAFETY: (cpu=avx2) caller checked.", 1).unwrap();
        assert_eq!(colon.get("cpu"), Some("avx2"));
        let bare = parse_contract("// SAFETY(align=64, cpu=avx2)", 2).unwrap();
        assert_eq!(bare.get("align"), Some("64"));
        assert!(parse_contract("// SAFETY: plain prose only.", 3).is_none());
    }

    #[test]
    fn unknown_keys_reported() {
        let c = parse_contract("// SAFETY: (cpu=avx2, alignment=64)", 1).unwrap();
        assert_eq!(c.unknown_keys(), ["alignment"]);
    }

    #[test]
    fn waivers_cover_own_and_next_code_line() {
        let src = "fn f(v: &[u32]) -> u32 {\n\
                       // AUDIT: waiver(len checked at entry)\n\
                       v[0]\n\
                   }\n";
        let ann = annotations(&lex(src));
        assert_eq!(
            ann.waived.get(&2).map(String::as_str),
            Some("len checked at entry")
        );
        assert_eq!(
            ann.waived.get(&3).map(String::as_str),
            Some("len checked at entry")
        );
        assert!(!ann.waived.contains_key(&1));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let it = items_of("type Op = fn(u32) -> u32;\nfn real() {}\n");
        assert_eq!(it.len(), 1);
        assert_eq!(it[0].name, "real");
    }
}
