//! Workspace call graph and the panic-freedom pass.
//!
//! Call edges are extracted from body token streams (`name(...)`,
//! `path::name(...)`, `.method(...)`) and resolved *by name* against
//! the extracted item table — qualified paths first, then same file,
//! then same crate, then a unique workspace match. Unresolved calls are
//! assumed to target `std`/external code, which the pass treats as
//! panic-free: the panicking std surface that matters (`unwrap`,
//! `expect`, indexing, the panic macro family) is caught *directly* at
//! the call site by the token matchers below, so external resolution
//! gaps do not hide those sources.
//!
//! The panic-freedom pass walks the graph from every `AUDIT: no_panic`
//! root and reports each reachable panic source with the full call
//! chain. A `// AUDIT: waiver(reason)` on (or directly above) a line
//! suppresses both direct sources and outgoing call edges on that line.

use std::collections::HashMap;

use super::items::{FileAnn, FnItem};
use super::{AuditFinding, Corpus};
use crate::lex::{Lexed, TokKind};

/// Macros whose expansion can panic. (`debug_assert*` is exempt: the
/// audited kernels are release-mode hot paths where it compiles out.)
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Methods that panic on the error/none path.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Idents that look like calls but are control-flow keywords.
const NOT_CALLS: [&str; 8] = [
    "if", "while", "for", "match", "return", "loop", "move", "unsafe",
];

/// Keyword idents that can precede `[` without forming an index
/// expression (`&mut [T]` types, `dyn [..]`, `return [..]`).
const NOT_INDEX_PREFIX: [&str; 10] = [
    "mut", "dyn", "ref", "return", "in", "box", "const", "else", "impl", "as",
];

/// One resolved call edge.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Calling item (index into the item table).
    pub caller: usize,
    /// Called item (index into the item table).
    pub callee: usize,
    /// 1-based line of the call.
    pub line: u32,
    /// Was the call written as a method (`recv.name(..)`)?
    pub is_method: bool,
}

/// One direct panic source inside a body.
#[derive(Clone, Debug)]
pub struct PanicSource {
    /// 1-based line.
    pub line: u32,
    /// What panics there (`panic!`, `.unwrap()`, `slice index`, ...).
    pub what: String,
}

/// The resolved workspace call graph plus per-item direct sources.
#[derive(Debug)]
pub struct Graph {
    /// Outgoing resolved edges per item.
    pub calls: Vec<Vec<CallSite>>,
    /// Unwaived direct panic sources per item.
    pub sources: Vec<Vec<PanicSource>>,
    /// Total resolved edges (stats).
    pub edges: usize,
    /// Sources suppressed by waivers (stats).
    pub waived: usize,
}

/// Token indices belonging to nested `fn` items within `(open, close)`,
/// precomputed so a body scan attributes nested bodies to the nested
/// item, not the enclosing one.
fn nested_ranges(items: &[FnItem], file: usize, open: usize, close: usize) -> Vec<(usize, usize)> {
    items
        .iter()
        .filter(|it| it.file == file)
        .filter_map(|it| it.body)
        .filter(|&(o, c)| o > open && c < close)
        .collect()
}

fn in_ranges(i: usize, ranges: &[(usize, usize)]) -> bool {
    ranges.iter().any(|&(o, c)| i >= o && i <= c)
}

/// Build the call graph over every item with a body.
pub fn build(corpus: &Corpus, items: &[FnItem], anns: &[FileAnn]) -> Graph {
    // Name index over all items.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, it) in items.iter().enumerate() {
        by_name.entry(&it.name).or_default().push(idx);
    }

    let mut calls = vec![Vec::new(); items.len()];
    let mut sources = vec![Vec::new(); items.len()];
    let mut edges = 0usize;
    let mut waived = 0usize;

    for (idx, it) in items.iter().enumerate() {
        let Some((open, close)) = it.body else {
            continue;
        };
        let lx = &corpus.files[it.file].lx;
        let ann = &anns[it.file];
        let nested = nested_ranges(items, it.file, open, close);
        let mut i = open + 1;
        while i < close {
            if in_ranges(i, &nested) || lx.toks[i].kind.is_comment() {
                i += 1;
                continue;
            }
            let line = lx.toks[i].line;
            let waived_here = ann.waived.contains_key(&line);
            match lx.toks[i].kind {
                TokKind::Ident => {
                    let name = lx.text(i);
                    let next = lx.next_code(i);
                    let is_bang = next.is_some_and(|j| lx.is_punct(j, '!'));
                    let is_call = next.is_some_and(|j| lx.is_punct(j, '('));
                    if is_bang && PANIC_MACROS.contains(&name) {
                        if waived_here {
                            waived += 1;
                        } else {
                            sources[idx].push(PanicSource {
                                line,
                                what: format!("{name}!"),
                            });
                        }
                    } else if is_call && !is_bang && !NOT_CALLS.contains(&name) {
                        let is_method = lx.prev_code(i).is_some_and(|j| lx.is_punct(j, '.'));
                        if is_method && PANIC_METHODS.contains(&name) {
                            if waived_here {
                                waived += 1;
                            } else {
                                sources[idx].push(PanicSource {
                                    line,
                                    what: format!(".{name}()"),
                                });
                            }
                        } else if !waived_here {
                            if let Some(callee) =
                                resolve(corpus, items, &by_name, it, i, lx, is_method)
                            {
                                if callee != idx {
                                    calls[idx].push(CallSite {
                                        caller: idx,
                                        callee,
                                        line,
                                        is_method,
                                    });
                                    edges += 1;
                                }
                            }
                        } else {
                            waived += 1;
                        }
                    }
                }
                TokKind::Punct if lx.is_punct(i, '[') => {
                    // Index expression: `expr[...]` — the `[` follows a
                    // value-producing token. Attribute `#[..]`, array
                    // literals, and type positions do not match.
                    let indexes = lx.prev_code(i).is_some_and(|j| match lx.toks[j].kind {
                        TokKind::Ident => !NOT_INDEX_PREFIX.contains(&lx.text(j)),
                        TokKind::Punct => {
                            lx.is_punct(j, ')') || lx.is_punct(j, ']') || lx.is_punct(j, '?')
                        }
                        _ => false,
                    });
                    if indexes {
                        if waived_here {
                            waived += 1;
                        } else {
                            sources[idx].push(PanicSource {
                                line,
                                what: "slice index".into(),
                            });
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    Graph {
        calls,
        sources,
        edges,
        waived,
    }
}

/// Resolve the call at token `i` (an ident followed by `(`) to an item.
fn resolve(
    corpus: &Corpus,
    items: &[FnItem],
    by_name: &HashMap<&str, Vec<usize>>,
    caller: &FnItem,
    i: usize,
    lx: &Lexed,
    is_method: bool,
) -> Option<usize> {
    let name = lx.text(i);
    let all = by_name.get(name)?;
    // A method call can only land on a fn with a `self` receiver.
    let owned: Vec<usize>;
    let cands: &[usize] = if is_method {
        owned = all.iter().copied().filter(|&c| items[c].has_self).collect();
        &owned
    } else {
        all
    };
    if cands.is_empty() {
        return None;
    }
    // Qualified path `seg::name(...)`: prefer candidates whose file
    // path mentions the qualifying segment (module files and dirs).
    if !is_method {
        if let Some(seg) = path_qualifier(lx, i) {
            // `seg::name` names the item in module `seg` — the file
            // that *is* the module (`seg.rs` / `seg/mod.rs` /
            // `seg/lib.rs`) beats files merely inside `seg/`, which
            // hold same-named inner kernels (`simd::scale` is the
            // dispatcher in `simd/mod.rs`, not the AVX2 kernel in
            // `simd/avx2.rs`).
            let exact_file = format!("/{seg}.rs");
            let exact_mod = format!("/{seg}/mod.rs");
            let exact_lib = format!("/{seg}/src/lib.rs");
            let needle_dir = format!("/{seg}/");
            let rel_of = |c: usize| corpus.files[items[c].file].rel.as_str();
            let exact: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| {
                    let rel = rel_of(c);
                    rel.ends_with(&exact_file)
                        || rel.ends_with(&exact_mod)
                        || rel.ends_with(&exact_lib)
                })
                .collect();
            let qualified: Vec<usize> = if exact.is_empty() {
                cands
                    .iter()
                    .copied()
                    .filter(|&c| rel_of(c).contains(&needle_dir))
                    .collect()
            } else {
                exact
            };
            if qualified.len() == 1 {
                return Some(qualified[0]);
            }
            if !qualified.is_empty() {
                // Same-crate tiebreak among qualified candidates.
                let caller_crate = crate_of(&corpus.files[caller.file].rel);
                if let Some(&c) = qualified
                    .iter()
                    .find(|&&c| crate_of(&corpus.files[items[c].file].rel) == caller_crate)
                {
                    return Some(c);
                }
                return Some(qualified[0]);
            }
        }
    }
    // Same file.
    if let Some(&c) = cands.iter().find(|&&c| items[c].file == caller.file) {
        return Some(c);
    }
    // Beyond the defining file a method call is guesswork without type
    // information (`FORCED.load(..)` on a std atomic must not resolve to
    // a same-crate wrapper also named `load`). Audited cross-file entry
    // points carry their own `AUDIT: no_panic` marker instead.
    if is_method {
        return None;
    }
    // Same crate.
    let caller_crate = crate_of(&corpus.files[caller.file].rel);
    if let Some(&c) = cands
        .iter()
        .find(|&&c| crate_of(&corpus.files[items[c].file].rel) == caller_crate)
    {
        return Some(c);
    }
    // Workspace-wide only when unambiguous; method names like `len` or
    // `get` would otherwise resolve to unrelated same-named fns.
    if cands.len() == 1 && !is_method {
        return Some(cands[0]);
    }
    None
}

/// The path segment before `seg::name` at token `i`, if any.
fn path_qualifier(lx: &Lexed, i: usize) -> Option<String> {
    let c2 = lx.prev_code(i)?;
    if !lx.is_punct(c2, ':') {
        return None;
    }
    let c1 = lx.prev_code(c2)?;
    if !lx.is_punct(c1, ':') {
        return None;
    }
    let seg = lx.prev_code(c1)?;
    if lx.toks[seg].kind != TokKind::Ident {
        return None;
    }
    Some(lx.text(seg).to_string())
}

/// The crate prefix of a workspace-relative path (`crates/math`), or
/// the first component for non-crate roots.
pub fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    let first = parts.next().unwrap_or("");
    if first == "crates" {
        let second = parts.next().unwrap_or("");
        &rel[..first.len() + 1 + second.len()]
    } else {
        first
    }
}

/// Walk the graph from every `no_panic` root; report each reachable
/// panic source with the full call chain from the root.
pub fn check_no_panic(corpus: &Corpus, items: &[FnItem], graph: &Graph) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for (root, it) in items.iter().enumerate() {
        if !it.no_panic || it.body.is_none() {
            continue;
        }
        // Iterative DFS carrying the chain; `visited` is per root so
        // each root reports its own chains.
        let mut visited = vec![false; items.len()];
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(root, vec![root])];
        visited[root] = true;
        while let Some((cur, chain)) = stack.pop() {
            for src in &graph.sources[cur] {
                let frames: Vec<String> = chain
                    .iter()
                    .map(|&f| frame(corpus, items, f))
                    .chain(std::iter::once(format!(
                        "{}:{} {}",
                        corpus.files[items[cur].file].rel, src.line, src.what
                    )))
                    .collect();
                findings.push(AuditFinding {
                    path: corpus.files[items[cur].file].rel.clone(),
                    line: src.line as usize,
                    rule: "no-panic".into(),
                    message: format!(
                        "no_panic root `{}` reaches {} (waive with `// AUDIT: waiver(reason)` \
                         or remove the panic source)",
                        items[root].name, src.what
                    ),
                    chain: frames,
                });
            }
            for call in &graph.calls[cur] {
                if !visited[call.callee] && items[call.callee].body.is_some() {
                    visited[call.callee] = true;
                    let mut next = chain.clone();
                    next.push(call.callee);
                    stack.push((call.callee, next));
                }
            }
        }
    }
    findings
}

/// One chain frame: `path:line name`.
fn frame(corpus: &Corpus, items: &[FnItem], idx: usize) -> String {
    let it = &items[idx];
    format!("{}:{} {}", corpus.files[it.file].rel, it.line, it.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::items;

    fn corpus_of(files: &[(&str, &str)]) -> (Corpus, Vec<FnItem>, Vec<FileAnn>, Graph) {
        let corpus = Corpus::from_sources(
            files
                .iter()
                .map(|(r, s)| (r.to_string(), s.to_string()))
                .collect(),
        );
        let mut its = Vec::new();
        let mut anns = Vec::new();
        for (fi, f) in corpus.files.iter().enumerate() {
            its.extend(items::extract_file(fi, &f.lx));
            anns.push(items::annotations(&f.lx));
        }
        let graph = build(&corpus, &its, &anns);
        (corpus, its, anns, graph)
    }

    #[test]
    fn transitive_unwrap_reported_with_chain() {
        let src = "// AUDIT: no_panic\n\
                   pub fn root(v: &[u32]) -> u32 { helper(v) }\n\
                   fn helper(v: &[u32]) -> u32 { inner(v) }\n\
                   fn inner(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[("crates/x/src/lib.rs", src)]);
        let f = check_no_panic(&corpus, &its, &graph);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].chain.len(), 4); // root -> helper -> inner -> source
        assert!(f[0].chain[0].contains("root"));
        assert!(f[0].chain[3].contains(".unwrap()"));
    }

    #[test]
    fn waiver_suppresses_source() {
        let src = "// AUDIT: no_panic\n\
                   pub fn root(v: &[u32]) -> u32 {\n\
                       // AUDIT: waiver(entry assert guards len)\n\
                       v[0]\n\
                   }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[("crates/x/src/lib.rs", src)]);
        assert!(check_no_panic(&corpus, &its, &graph).is_empty());
        assert_eq!(graph.waived, 1);
    }

    #[test]
    fn slice_indexing_is_a_source() {
        let src = "// AUDIT: no_panic\n\
                   pub fn root(v: &[u32], i: usize) -> u32 { v[i] }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[("crates/x/src/lib.rs", src)]);
        let f = check_no_panic(&corpus, &its, &graph);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("slice index"));
    }

    #[test]
    fn cross_file_path_call_resolves() {
        let root = "// AUDIT: no_panic\n\
                    pub fn sweep(v: &mut [f64]) { simd::kernel(v) }\n";
        let simd = "pub fn kernel(v: &mut [f64]) { v.first().expect(\"empty\"); }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[
            ("crates/lfd/src/kinetic.rs", root),
            ("crates/math/src/simd/mod.rs", simd),
        ]);
        let f = check_no_panic(&corpus, &its, &graph);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].path.contains("simd/mod.rs"));
        assert_eq!(f[0].chain.len(), 3);
    }

    #[test]
    fn panic_macros_flagged_but_debug_assert_exempt() {
        let src = "// AUDIT: no_panic\n\
                   pub fn root(x: u32) {\n\
                       debug_assert!(x > 0);\n\
                       if x == 9 { unreachable!() }\n\
                   }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[("crates/x/src/lib.rs", src)]);
        let f = check_no_panic(&corpus, &its, &graph);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unreachable!"));
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn array_literals_and_types_not_flagged() {
        let src = "// AUDIT: no_panic\n\
                   pub fn root() -> [u32; 2] {\n\
                       let a: &mut [u32] = &mut [1, 2];\n\
                       let b = [3, 4];\n\
                       b\n\
                   }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[("crates/x/src/lib.rs", src)]);
        assert!(check_no_panic(&corpus, &its, &graph).is_empty());
    }

    #[test]
    fn unmarked_fns_are_not_roots() {
        let src = "pub fn free(v: &[u32]) -> u32 { v[0] }\n";
        let (corpus, its, _anns, graph) = corpus_of(&[("crates/x/src/lib.rs", src)]);
        assert!(check_no_panic(&corpus, &its, &graph).is_empty());
    }
}
