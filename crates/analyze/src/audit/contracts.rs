//! Machine checks for the structured SAFETY contract grammar.
//!
//! Five rules, all over the shared item table and call graph:
//!
//! * **contract-syntax** — a parenthesized contract may only use the
//!   keys in [`super::items::CONTRACT_KEYS`]; typos (`alignment=`)
//!   would otherwise silently claim nothing.
//! * **contract-cpu** — every `#[target_feature(enable = "X")]` fn
//!   must carry a contract declaring `cpu=X`: the claim a call-site
//!   audit can hold the dispatch layer to.
//! * **contract-callsite** — every resolved call to a
//!   `#[target_feature]` fn must come from the dispatch module
//!   ([`DISPATCH_MODULE`]), from a body that checks
//!   `is_x86_feature_detected!`, or from a fn carrying the same
//!   feature itself. Anything else could execute illegal instructions
//!   on older CPUs.
//! * **contract-align** — an `align=N` claim must match the arena's
//!   [`ALIGN`] constant (read out of `crates/pool/src/arena.rs`, not
//!   hard-coded here), so the claim goes stale loudly if the arena
//!   changes.
//! * **contract-bounds** — an audited (`no_panic`) fn whose body
//!   touches raw pointers (`from_raw_parts`, `get_unchecked`,
//!   `.add(..)`, unaligned load/store intrinsics) must claim `bounds=`
//!   in a covering contract: the claim states who proved the access
//!   in-range, since no bounds check will.

use super::callgraph::Graph;
use super::items::{FileAnn, FnItem};
use super::{AuditFinding, Corpus};
use crate::lex::TokKind;

/// The one module allowed to call `#[target_feature]` fns without a
/// runtime guard: it *is* the runtime guard.
pub const DISPATCH_MODULE: &str = "crates/math/src/simd/mod.rs";

/// The arena source the `align=` claims are checked against.
pub const ARENA_FILE: &str = "crates/pool/src/arena.rs";

/// Fallback when the corpus does not include the arena (fixture runs).
pub const DEFAULT_ALIGN: u64 = 64;

/// Idents that mark a raw-pointer dereference in a body.
const RAW_PTR_FNS: [&str; 4] = [
    "get_unchecked",
    "get_unchecked_mut",
    "from_raw_parts",
    "from_raw_parts_mut",
];

/// Method names that move or dereference raw pointers.
const RAW_PTR_METHODS: [&str; 6] = [
    "add",
    "offset",
    "read",
    "write",
    "read_unaligned",
    "write_unaligned",
];

/// Read `pub const ALIGN: usize = N;` out of the arena source in the
/// corpus. `None` when the corpus has no arena file.
pub fn arena_align(corpus: &Corpus) -> Option<u64> {
    let file = corpus.files.iter().find(|f| f.rel == ARENA_FILE)?;
    let lx = &file.lx;
    for i in 0..lx.toks.len() {
        if !lx.is_ident(i, "ALIGN") {
            continue;
        }
        // `ALIGN : usize = <num>`
        let mut j = i;
        for _ in 0..4 {
            j = lx.next_code(j)?;
        }
        if lx.toks[j].kind == TokKind::Num {
            if let Ok(v) = lx.text(j).parse::<u64>() {
                return Some(v);
            }
        }
    }
    None
}

/// Run every contract rule.
pub fn check(
    corpus: &Corpus,
    items: &[FnItem],
    graph: &Graph,
    anns: &[FileAnn],
) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    let align = arena_align(corpus).unwrap_or(DEFAULT_ALIGN);

    // contract-syntax and contract-align apply to every contract in
    // every file, attached to an item or not.
    for (fi, ann) in anns.iter().enumerate() {
        let rel = &corpus.files[fi].rel;
        for (_tok, c) in &ann.contracts {
            for key in c.unknown_keys() {
                findings.push(AuditFinding {
                    path: rel.clone(),
                    line: c.line as usize,
                    rule: "contract-syntax".into(),
                    message: format!(
                        "unknown contract key `{key}` (accepted: align, bounds, aliasing, cpu)"
                    ),
                    chain: Vec::new(),
                });
            }
            if let Some(claim) = c.get("align") {
                if claim.parse::<u64>() != Ok(align) {
                    findings.push(AuditFinding {
                        path: rel.clone(),
                        line: c.line as usize,
                        rule: "contract-align".into(),
                        message: format!(
                            "stale align= claim: contract says {claim}, arena ALIGN is {align}"
                        ),
                        chain: Vec::new(),
                    });
                }
            }
        }
    }

    // contract-cpu: target_feature fns must claim their feature.
    for it in items {
        let Some(feat) = &it.target_feature else {
            continue;
        };
        let rel = &corpus.files[it.file].rel;
        match it.contract.as_ref().and_then(|c| c.get("cpu")) {
            None => findings.push(AuditFinding {
                path: rel.clone(),
                line: it.line as usize,
                rule: "contract-cpu".into(),
                message: format!(
                    "#[target_feature(enable = \"{feat}\")] fn `{}` has no `cpu=` claim \
                     in its SAFETY contract",
                    it.name
                ),
                chain: Vec::new(),
            }),
            Some(cpu) if cpu != feat => findings.push(AuditFinding {
                path: rel.clone(),
                line: it.line as usize,
                rule: "contract-cpu".into(),
                message: format!(
                    "fn `{}` claims cpu={cpu} but enables target feature \"{feat}\"",
                    it.name
                ),
                chain: Vec::new(),
            }),
            Some(_) => {}
        }
    }

    // contract-callsite: every resolved edge into a target_feature fn.
    for edges in &graph.calls {
        for call in edges {
            let callee = &items[call.callee];
            let Some(feat) = &callee.target_feature else {
                continue;
            };
            let caller = &items[call.caller];
            let caller_rel = &corpus.files[caller.file].rel;
            let guarded = caller_rel == DISPATCH_MODULE
                || caller.target_feature.as_deref() == Some(feat.as_str())
                || body_checks_feature(corpus, caller);
            if !guarded {
                findings.push(AuditFinding {
                    path: caller_rel.clone(),
                    line: call.line as usize,
                    rule: "contract-callsite".into(),
                    message: format!(
                        "unguarded call to #[target_feature(enable = \"{feat}\")] fn `{}`: \
                         call from the dispatch module, behind is_x86_feature_detected!, or \
                         from a fn with the same target_feature",
                        callee.name
                    ),
                    chain: Vec::new(),
                });
            }
        }
    }

    // contract-bounds: audited fns touching raw pointers must claim
    // bounds= in a covering contract (their own, or one on an unsafe
    // block inside the body).
    for it in items {
        if !it.no_panic {
            continue;
        }
        let Some((open, close)) = it.body else {
            continue;
        };
        let lx = &corpus.files[it.file].lx;
        let covered = fn_claims_bounds(it, &anns[it.file], open, close);
        if covered {
            continue;
        }
        let mut first_signal: Option<(u32, String)> = None;
        for i in open + 1..close {
            if lx.toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = lx.text(i);
            let calls_paren = lx.next_code(i).is_some_and(|j| lx.is_punct(j, '('));
            if !calls_paren {
                continue;
            }
            let is_method = lx.prev_code(i).is_some_and(|j| lx.is_punct(j, '.'));
            let raw = RAW_PTR_FNS.contains(&name)
                || (is_method && RAW_PTR_METHODS.contains(&name))
                || name.contains("loadu")
                || name.contains("storeu");
            if raw {
                first_signal = Some((lx.toks[i].line, name.to_string()));
                break;
            }
        }
        if let Some((line, what)) = first_signal {
            findings.push(AuditFinding {
                path: corpus.files[it.file].rel.clone(),
                line: line as usize,
                rule: "contract-bounds".into(),
                message: format!(
                    "audited fn `{}` dereferences raw pointers ({what}) without a `bounds=` \
                     claim in a covering SAFETY contract",
                    it.name
                ),
                chain: Vec::new(),
            });
        }
    }

    findings
}

/// Does any covering contract of this fn claim `bounds=`? Covering
/// means the fn's own annotation-block contract or any contract comment
/// whose token lies inside the body (unsafe-block contracts).
fn fn_claims_bounds(it: &FnItem, ann: &FileAnn, open: usize, close: usize) -> bool {
    if it
        .contract
        .as_ref()
        .is_some_and(|c| c.get("bounds").is_some())
    {
        return true;
    }
    ann.contracts
        .iter()
        .any(|(tok, c)| *tok > open && *tok < close && c.get("bounds").is_some())
}

/// Does the caller's body invoke `is_x86_feature_detected!`?
fn body_checks_feature(corpus: &Corpus, caller: &FnItem) -> bool {
    let Some((open, close)) = caller.body else {
        return false;
    };
    let lx = &corpus.files[caller.file].lx;
    (open + 1..close).any(|i| lx.is_ident(i, "is_x86_feature_detected"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{callgraph, items};

    fn run(files: &[(&str, &str)]) -> Vec<AuditFinding> {
        let corpus = Corpus::from_sources(
            files
                .iter()
                .map(|(r, s)| (r.to_string(), s.to_string()))
                .collect(),
        );
        let mut its = Vec::new();
        let mut anns = Vec::new();
        for (fi, f) in corpus.files.iter().enumerate() {
            its.extend(items::extract_file(fi, &f.lx));
            anns.push(items::annotations(&f.lx));
        }
        let graph = callgraph::build(&corpus, &its, &anns);
        check(&corpus, &its, &graph, &anns)
    }

    const TF_FN: &str = "// SAFETY: (cpu=avx2) caller proves AVX2 before dispatch.\n\
                         #[target_feature(enable = \"avx2\")]\n\
                         pub unsafe fn kernel(p: *const f64) {}\n";

    #[test]
    fn missing_cpu_claim_flagged() {
        let src = "// SAFETY: (bounds=n) prose.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   pub unsafe fn kernel(p: *const f64) {}\n";
        let f = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "contract-cpu");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn mismatched_cpu_claim_flagged() {
        let src = "// SAFETY: (cpu=sse2) wrong claim.\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   pub unsafe fn kernel(p: *const f64) {}\n";
        let f = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "contract-cpu");
    }

    #[test]
    fn guarded_and_unguarded_callsites() {
        let caller_bad = "pub fn fast(p: *const f64) {\n\
                          // SAFETY: (cpu=avx2) wrong: nothing checked here.\n\
                          unsafe { kernel(p) }\n\
                          }\n";
        let caller_good = "pub fn safe_path(p: *const f64) {\n\
                           if std::arch::is_x86_feature_detected!(\"avx2\") {\n\
                           // SAFETY: (cpu=avx2) guarded by the detect above.\n\
                           unsafe { kernel(p) }\n\
                           }\n\
                           }\n";
        let f = run(&[
            ("crates/x/src/simd.rs", TF_FN),
            ("crates/x/src/bad.rs", caller_bad),
            ("crates/x/src/good.rs", caller_good),
        ]);
        let callsite: Vec<_> = f.iter().filter(|f| f.rule == "contract-callsite").collect();
        assert_eq!(callsite.len(), 1, "{f:?}");
        assert_eq!(callsite[0].path, "crates/x/src/bad.rs");
        assert_eq!(callsite[0].line, 3);
    }

    #[test]
    fn dispatch_module_is_exempt() {
        let caller = "pub fn dispatch(p: *const f64) {\n\
                      // SAFETY: (cpu=avx2) gate checked at registry build.\n\
                      unsafe { kernel(p) }\n\
                      }\n";
        let f = run(&[
            ("crates/math/src/simd/avx2.rs", TF_FN),
            ("crates/math/src/simd/mod.rs", caller),
        ]);
        assert!(f.iter().all(|f| f.rule != "contract-callsite"), "{f:?}");
    }

    #[test]
    fn same_feature_caller_is_exempt() {
        let caller = "// SAFETY: (cpu=avx2) part of the same feature island.\n\
                      #[target_feature(enable = \"avx2\")]\n\
                      pub unsafe fn outer(p: *const f64) { kernel(p) }\n";
        let f = run(&[
            ("crates/x/src/simd.rs", TF_FN),
            ("crates/x/src/outer.rs", caller),
        ]);
        assert!(f.iter().all(|f| f.rule != "contract-callsite"), "{f:?}");
    }

    #[test]
    fn stale_align_flagged_against_arena_constant() {
        let arena = "pub const ALIGN: usize = 64;\n";
        let src = "fn f(p: *mut u8) {\n\
                   // SAFETY: (align=32, aliasing=disjoint) stale claim.\n\
                   unsafe { p.write(0) }\n\
                   }\n";
        let f = run(&[(ARENA_FILE, arena), ("crates/x/src/lib.rs", src)]);
        let align: Vec<_> = f.iter().filter(|f| f.rule == "contract-align").collect();
        assert_eq!(align.len(), 1, "{f:?}");
        assert_eq!(align[0].line, 2);
        assert!(align[0].message.contains("32"));
        assert!(align[0].message.contains("64"));
    }

    #[test]
    fn missing_bounds_on_audited_raw_ptr_fn() {
        let src = "// AUDIT: no_panic\n\
                   // SAFETY: (aliasing=disjoint) no bounds claim.\n\
                   pub unsafe fn k(p: *const f64, n: usize) -> f64 {\n\
                       *p.add(n - 1)\n\
                   }\n";
        let f = run(&[("crates/x/src/lib.rs", src)]);
        let bounds: Vec<_> = f.iter().filter(|f| f.rule == "contract-bounds").collect();
        assert_eq!(bounds.len(), 1, "{f:?}");
        assert_eq!(bounds[0].line, 4);
    }

    #[test]
    fn bounds_claim_on_inner_unsafe_block_covers() {
        let src = "// AUDIT: no_panic\n\
                   pub fn k(v: &[f64], n: usize) -> f64 {\n\
                       // SAFETY: (bounds=n < v.len() by caller contract) in-range.\n\
                       unsafe { *v.get_unchecked(n) }\n\
                   }\n";
        let f = run(&[("crates/x/src/lib.rs", src)]);
        assert!(f.iter().all(|f| f.rule != "contract-bounds"), "{f:?}");
    }

    #[test]
    fn unknown_keys_flagged() {
        let src = "fn f(p: *mut u8) {\n\
                   // SAFETY: (alignment=64) typo for align.\n\
                   unsafe { p.write(0) }\n\
                   }\n";
        let f = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "contract-syntax");
        assert!(f[0].message.contains("alignment"));
    }
}
