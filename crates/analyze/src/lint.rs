//! Source-level hygiene lint for the repo's concurrency invariants.
//!
//! The rules are enforced over the shared lexed-token front end
//! ([`crate::lex`]) — one lex per file, shared with the [`crate::audit`]
//! passes — instead of the original regex/strip line scanner. The lexer
//! closes that scanner's two blind spots (raw string literals and
//! nested block comments) for good: banned patterns are matched on
//! *code tokens*, so nothing inside a comment or any string form can
//! trip a rule, and nothing after a raw string can hide from one.
//!
//! The rules `cargo` cannot express per-path:
//!
//! 1. **undocumented-unsafe** — every `unsafe` block or `unsafe impl`
//!    must carry a `// SAFETY:` comment on the same line or within the
//!    preceding comment block; every `unsafe fn` declaration must have a
//!    `# Safety` doc section (or a `// SAFETY:` comment). This backstops
//!    `clippy::undocumented_unsafe_blocks` for the vendored shims and
//!    for target configurations clippy does not visit. The structured
//!    contract form `// SAFETY: (key=value, ...)` (see `audit`) counts.
//! 2. **thread-spawn** — `thread::spawn` is allowed only inside
//!    `crates/pool` (the one owner of execution resources) and
//!    `crates/analyze` (the explorer must create controlled threads).
//!    Everything else must go through the pool, or scoped helpers.
//! 3. **wall-clock** — `Instant::now` is banned in kernel crates (math,
//!    grid, device, comm, tddft, qxmd): kernels are timed by the
//!    `dcmesh-obs` span layer and the modeled device clock; ad-hoc
//!    timers there skew the roofline accounting. Driver layers (lfd
//!    engine, core simulation, bench) and `crates/obs` itself may read
//!    wall clocks.
//! 4. **static-mut** — `static mut` is banned everywhere; use atomics,
//!    `OnceLock`, or interior mutability.
//! 5. **println-metrics** — `println!`/`eprintln!` are banned in kernel
//!    crates: ad-hoc printed "metrics" bypass the structured telemetry
//!    path (`dcmesh-obs` counters/gauges/histograms feeding the flight
//!    recorder and RunRecords) and cannot be compared across runs.
//!    Driver and bench layers own stdout.
//! 6. **raw-arch** — `std::arch` / `core::arch` intrinsics are allowed
//!    only inside `crates/math/src/simd/`, the one audited home for
//!    ISA-specific code (with its scalar fallback and dispatch gate).
//!    Intrinsics sprinkled anywhere else dodge the backend override and
//!    the equivalence test suite.
//! 7. **target-feature** — every `#[target_feature(...)]` function must
//!    carry a `SAFETY:` comment (or a `# Safety` doc section) stating
//!    the CPU-support contract: who proved the features are available
//!    before this code runs. (The `audit` pass additionally requires
//!    the structured `cpu=` key and checks every call site.)
//!
//! Paths containing `/fixtures/` are skipped — they hold deliberately
//! failing inputs for the negative-path tests.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{self, Lexed, TokKind};

/// Crates whose sources must not read wall clocks (rule 3).
const KERNEL_CRATES: [&str; 6] = [
    "crates/math",
    "crates/grid",
    "crates/device",
    "crates/comm",
    "crates/tddft",
    "crates/qxmd",
];

/// Directories scanned relative to the workspace root.
pub(crate) const SCAN_ROOTS: [&str; 5] = ["crates", "vendor/rayon", "src", "tests", "examples"];

/// Which invariant a finding violates.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a safety comment/doc section.
    UndocumentedUnsafe,
    /// `thread::spawn` outside the executor crates.
    ThreadSpawn,
    /// `Instant::now` inside a kernel crate.
    WallClock,
    /// `static mut` anywhere.
    StaticMut,
    /// `println!`/`eprintln!` inside a kernel crate.
    PrintlnMetrics,
    /// `std::arch`/`core::arch` outside the blessed SIMD module.
    RawArch,
    /// `#[target_feature]` without a SAFETY contract comment.
    TargetFeature,
}

impl Rule {
    /// Stable kebab-case name (CI log and JSON report key).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::WallClock => "wall-clock",
            Rule::StaticMut => "static-mut",
            Rule::PrintlnMetrics => "println-metrics",
            Rule::RawArch => "raw-arch",
            Rule::TargetFeature => "target-feature",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// How many preceding lines may carry the `SAFETY:` comment.
const SAFETY_LOOKBACK: usize = 6;

/// Does this comment/doc line carry safety evidence? Both the prose
/// form (`SAFETY: ...`) and the structured contract form
/// (`SAFETY(key=value, ...)`) count.
fn has_safety_evidence(line: &str) -> bool {
    line.contains("SAFETY:") || line.contains("SAFETY(")
}

/// Scan one file's contents. `rel_path` (workspace-relative, `/`
/// separators) selects the path-dependent rules. Lexes the file and
/// delegates to [`scan_lexed`]; when the caller already holds a
/// [`Lexed`] (the audit corpus), use [`scan_lexed`] directly so the
/// file is lexed exactly once across all rules and passes.
pub fn scan_source(rel_path: &str, contents: &str) -> Vec<Finding> {
    scan_lexed(rel_path, &lex::lex(contents))
}

/// Run every lint rule over an already-lexed file.
pub fn scan_lexed(rel_path: &str, lx: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = lx.src.lines().collect();
    let in_pool_or_analyze =
        rel_path.starts_with("crates/pool/") || rel_path.starts_with("crates/analyze/");
    let in_kernel_crate = KERNEL_CRATES
        .iter()
        .any(|k| rel_path.starts_with(&format!("{k}/")));
    let in_simd_module = rel_path.starts_with("crates/math/src/simd/");

    // One finding per line for the unsafe rule (a line with several
    // `unsafe` tokens is still one violation, as under the old scanner).
    let mut unsafe_flagged_line = 0usize;

    let toks = &lx.toks;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let line_no = tok.line as usize;
        let text = lx.text(i);
        match text {
            // `static mut NAME` — the `mut` directly follows.
            "static" if lx.next_code(i).is_some_and(|j| lx.is_ident(j, "mut")) => {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::StaticMut,
                    message: "mutable statics are banned; use atomics or OnceLock".into(),
                });
            }
            "spawn" if !in_pool_or_analyze && path_prefix_is(lx, i, "thread") => {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::ThreadSpawn,
                    message: "raw thread spawns belong to crates/pool; dispatch through \
                                 the pool"
                        .into(),
                });
            }
            "now" if in_kernel_crate && path_prefix_is(lx, i, "Instant") => {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::WallClock,
                    message: "kernel crates must not read wall clocks; use dcmesh-obs \
                                 spans"
                        .into(),
                });
            }
            "println" | "eprintln" | "print" if in_kernel_crate && macro_bang_paren(lx, i) => {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::PrintlnMetrics,
                    message: "kernel crates must not print; record dcmesh-obs metrics \
                                 instead"
                        .into(),
                });
            }
            "arch"
                if !in_simd_module
                    && (path_prefix_is(lx, i, "std") || path_prefix_is(lx, i, "core")) =>
            {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: line_no,
                    rule: Rule::RawArch,
                    message: "raw arch intrinsics live in crates/math/src/simd/ \
                                      only; dispatch through dcmesh_math::simd"
                        .into(),
                });
            }
            "target_feature" => {
                // `#[target_feature(...)]`: preceded by `#` `[`,
                // followed by `(`.
                let attr = lx.prev_code(i).is_some_and(|j| lx.is_punct(j, '['))
                    && lx
                        .prev_code(i)
                        .and_then(|j| lx.prev_code(j))
                        .is_some_and(|j| lx.is_punct(j, '#'))
                    && lx.next_code(i).is_some_and(|j| lx.is_punct(j, '('));
                if attr && !target_feature_is_documented(&lines, line_no - 1) {
                    findings.push(Finding {
                        path: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::TargetFeature,
                        message: "target_feature fn needs a SAFETY comment (or `# Safety` \
                                     doc) naming who verified CPU support"
                            .into(),
                    });
                }
            }
            "unsafe" => {
                let is_fn_decl = lx
                    .next_code(i)
                    .is_some_and(|j| lx.is_ident(j, "fn") || lx.is_ident(j, "trait"));
                if line_no != unsafe_flagged_line
                    && !unsafe_is_documented(&lines, line_no - 1, is_fn_decl)
                {
                    unsafe_flagged_line = line_no;
                    findings.push(Finding {
                        path: rel_path.to_string(),
                        line: line_no,
                        rule: Rule::UndocumentedUnsafe,
                        message: "missing SAFETY comment (or `# Safety` doc for an unsafe fn)"
                            .into(),
                    });
                }
            }
            _ => {}
        }
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Is token `i` the last segment of a path whose previous segment is
/// `seg` (i.e. the tokens read `seg :: <i>`)?
fn path_prefix_is(lx: &Lexed, i: usize, seg: &str) -> bool {
    let Some(c2) = lx.prev_code(i) else {
        return false;
    };
    if !lx.is_punct(c2, ':') {
        return false;
    }
    let Some(c1) = lx.prev_code(c2) else {
        return false;
    };
    if !lx.is_punct(c1, ':') {
        return false;
    }
    lx.prev_code(c1).is_some_and(|j| lx.is_ident(j, seg))
}

/// Is token `i` a macro invocation head `ident ! (`?
fn macro_bang_paren(lx: &Lexed, i: usize) -> bool {
    let Some(bang) = lx.next_code(i) else {
        return false;
    };
    if !lx.is_punct(bang, '!') {
        return false;
    }
    lx.next_code(bang).is_some_and(|j| lx.is_punct(j, '('))
}

/// Is the `unsafe` on `lines[idx]` covered by a safety comment?
///
/// Accepted evidence, searching the same line then up to
/// [`SAFETY_LOOKBACK`] preceding lines without leaving the contiguous
/// comment/attribute block above the item:
/// * a `SAFETY:` line comment (the clippy convention) or a structured
///   `SAFETY(...)` contract, or
/// * a `# Safety` doc heading for `unsafe fn` declarations (which may
///   sit further up, above the attributes and other doc text — for fn
///   declarations the whole contiguous doc block is searched).
fn unsafe_is_documented(lines: &[&str], idx: usize, is_fn_decl: bool) -> bool {
    if lines.get(idx).is_some_and(|l| has_safety_evidence(l)) {
        return true;
    }
    // Walk upward through the contiguous comment/attribute block.
    let mut steps = 0;
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let above = lines[i].trim_start();
        let is_annotation = above.starts_with("//") || above.starts_with('#') || above.is_empty();
        if has_safety_evidence(above) {
            return true;
        }
        if is_fn_decl && above.contains("# Safety") {
            return true;
        }
        if is_fn_decl {
            // Doc blocks for fns may be long; keep climbing while still
            // inside docs/attributes.
            if !is_annotation {
                return false;
            }
        } else {
            if !above.starts_with("//") {
                return false;
            }
            steps += 1;
            if steps >= SAFETY_LOOKBACK {
                return false;
            }
        }
    }
    false
}

/// Is the `#[target_feature]` on `lines[idx]` covered by a safety
/// contract? Accepted evidence: `SAFETY:` on the attribute line itself,
/// in the comment/attribute lines *between* the attribute and the fn
/// signature (the idiom for safe feature-gated helpers), or — searching
/// upward through the contiguous doc/attribute block — a `SAFETY:`
/// comment or `# Safety` doc heading.
fn target_feature_is_documented(lines: &[&str], idx: usize) -> bool {
    if lines.get(idx).is_some_and(|l| has_safety_evidence(l)) {
        return true;
    }
    let mut i = idx + 1;
    while i < lines.len() {
        let below = lines[i].trim_start();
        if has_safety_evidence(below) {
            return true;
        }
        if !(below.starts_with("//") || below.starts_with('#') || below.is_empty()) {
            break; // reached the fn signature
        }
        i += 1;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let above = lines[i].trim_start();
        if has_safety_evidence(above) || above.contains("# Safety") {
            return true;
        }
        if !(above.starts_with("//") || above.starts_with('#') || above.is_empty()) {
            return false;
        }
    }
    false
}

/// Recursively collect `.rs` files under `dir`, skipping fixtures and
/// build artifacts.
pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name == "target" || name == "fixtures" || name.starts_with('.') {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scan the workspace rooted at `root`; returns every lint finding.
///
/// This is the legacy entry point (the `lint` binary). The `audit`
/// binary runs the same rules *plus* the call-graph and contract passes
/// over a shared one-lex-per-file corpus — see [`crate::audit`].
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut files);
    }
    let mut findings = Vec::new();
    for file in files {
        let contents = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan_source(&rel, &contents));
    }
    Ok(findings)
}

/// Locate the workspace root: walk up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_unsafe_passes() {
        let src = "fn f() {\n    // SAFETY: disjoint by construction.\n    \
                   let x = unsafe { *p };\n}\n";
        assert!(scan_source("crates/pool/src/lib.rs", src).is_empty());
    }

    #[test]
    fn structured_contract_counts_as_documentation() {
        let src =
            "fn f() {\n    // SAFETY: (bounds=i<len, aliasing=disjoint) claimed ranges.\n    \
                   let x = unsafe { *p };\n}\n";
        assert!(scan_source("crates/pool/src/lib.rs", src).is_empty());
    }

    #[test]
    fn undocumented_unsafe_flagged() {
        let src = "fn f() {\n    let x = unsafe { *p };\n}\n";
        let f = scan_source("crates/pool/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UndocumentedUnsafe);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unsafe_fn_doc_section_accepted() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller keeps `p` live.\n\
                   #[inline]\npub unsafe fn f(p: *mut u8) {}\n";
        assert!(scan_source("crates/pool/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comment_or_string_ignored() {
        let src = "// this mentions unsafe in prose\nlet s = \"unsafe words\";\n";
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_raw_string_ignored() {
        // Regression: the legacy strip scanner lost sync on `r#"..."#`
        // and could mis-attribute the contents.
        let src = "fn f() -> &'static str {\n    r#\"let x = unsafe { *p }; \"quoted\" \"#\n}\n";
        assert!(scan_source("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn code_after_raw_string_still_scanned() {
        // Regression: after a raw string the scanner must be back in
        // sync — the undocumented unsafe below must still be caught.
        let src = "fn f() {\n    let s = r#\"some \" text\"#;\n    let x = unsafe { *p };\n}\n";
        let f = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UndocumentedUnsafe);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn nested_block_comments_ignored() {
        // Regression: the legacy scanner did not track block comments;
        // banned patterns inside nested block comments must not trip,
        // and code after them must still be scanned.
        let src = "/* outer /* static mut INNER: u8 = 0; */ tail */\n\
                   fn f() {\n    let x = unsafe { *p };\n}\n";
        let f = scan_source("crates/core/src/lib.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::UndocumentedUnsafe);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn spawn_rule_scoped_to_pool_and_analyze() {
        let line = format!(
            "let h = std::{}(|| {{}});\n",
            ["thread", "spawn"].join("::")
        );
        assert!(scan_source("crates/pool/src/lib.rs", &line).is_empty());
        assert!(scan_source("crates/analyze/src/sched.rs", &line).is_empty());
        let f = scan_source("crates/lfd/src/engine.rs", &line);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ThreadSpawn);
    }

    #[test]
    fn wall_clock_rule_only_in_kernel_crates() {
        let line = format!("let t = {}();\n", ["Instant", "now"].join("::"));
        assert!(scan_source("crates/lfd/src/engine.rs", &line).is_empty());
        assert!(scan_source("crates/obs/src/clock.rs", &line).is_empty());
        let f = scan_source("crates/math/src/gemm.rs", &line);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
    }

    #[test]
    fn println_rule_only_in_kernel_crates() {
        let line = format!(
            "{}\"step {{i}} took {{t}}s\");\n",
            ["println", "("].join("!")
        );
        // Driver/bench layers own stdout.
        assert!(scan_source("crates/bench/src/lib.rs", &line).is_empty());
        assert!(scan_source("crates/core/src/simulation.rs", &line).is_empty());
        let f = scan_source("crates/tddft/src/scf.rs", &line);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::PrintlnMetrics);
        // eprintln! is just as banned.
        let e = format!("{}\"residual {{r}}\");\n", ["eprintln", "("].join("!"));
        assert_eq!(
            scan_source("crates/math/src/gemm.rs", &e)[0].rule,
            Rule::PrintlnMetrics
        );
    }

    #[test]
    fn raw_arch_allowed_only_in_simd_module() {
        let line = format!(
            "use {}::x86_64::_mm256_fmadd_pd;\n",
            ["core", "arch"].join("::")
        );
        assert!(scan_source("crates/math/src/simd/avx2.rs", &line).is_empty());
        for bad in ["crates/math/src/gemm.rs", "crates/lfd/src/kinetic.rs"] {
            let f = scan_source(bad, &line);
            assert_eq!(f.len(), 1, "{bad}");
            assert_eq!(f[0].rule, Rule::RawArch);
        }
        let std_line = format!(
            "let ok = {}::is_x86_feature_detected!(\"avx2\");\n",
            ["std", "arch"].join("::")
        );
        assert_eq!(
            scan_source("crates/grid/src/lib.rs", &std_line)[0].rule,
            Rule::RawArch
        );
    }

    #[test]
    fn target_feature_requires_safety_contract() {
        let attr = ["#[target", "feature(enable = \"avx2\")]"].join("_");
        // Documented above (unsafe-fn idiom: # Safety doc section).
        let doc_above = format!("/// Kernel.\n///\n/// # Safety\n///\n/// Caller verified AVX2.\n{attr}\npub unsafe fn k() {{}}\n");
        assert!(
            scan_source("crates/math/src/simd/avx2.rs", &doc_above)
                .iter()
                .all(|f| f.rule != Rule::TargetFeature),
            "documented target_feature fn must pass"
        );
        // Documented between attribute and signature (safe-helper idiom).
        let doc_below = format!(
            "#[inline]\n{attr}\n// SAFETY: callable only from avx2 contexts.\nfn helper() {{}}\n"
        );
        assert!(scan_source("crates/math/src/simd/avx2.rs", &doc_below).is_empty());
        // Undocumented: flagged wherever it lives.
        let bare = format!("#[inline]\n{attr}\nfn helper() {{}}\n");
        let f = scan_source("crates/math/src/simd/avx2.rs", &bare);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::TargetFeature);
    }

    #[test]
    fn static_mut_flagged_everywhere() {
        let line = format!("{}COUNTER: u64 = 0;\n", ["static", "mut "].join(" "));
        let f = scan_source("crates/obs/src/lib.rs", &line);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::StaticMut);
    }
}
