//! Shadow-access race detector for the raw-pointer fan-out paths.
//!
//! The pool's dispatch API and `SlicePtr` hand out aliasing write access
//! on the *promise* of disjointness: (plane × orbital-block) kinetic
//! teams, GEMM column panels, per-domain stepping, and deferred lane
//! bodies all write through `SlicePtr::subslice_mut` / `get_mut` /
//! `as_mut_slice` with a comment asserting their ranges cannot overlap
//! concurrently. This module checks that promise at runtime.
//!
//! Armed via `DCMESH_RACECHECK=1` (or [`force_enable`] in tests); when
//! disarmed every hook is one relaxed atomic load.
//!
//! # Model
//!
//! * Every instrumented write is logged to a per-thread buffer as a
//!   **byte interval** `[lo, hi)` of real addresses, stamped with the
//!   logging thread's current **vector-clock snapshot**. Consecutive
//!   same-clock writes to adjacent ranges coalesce, so a chunked sweep
//!   costs one log entry per chunk, not per element.
//! * Happens-before edges mirror the executor's launch→settle structure:
//!   a dispatch [`fork`]s a packet that every claim-loop participant
//!   [`join`]s; participants fork completion packets the dispatcher joins
//!   before settling. Lane enqueues fork a packet the lane thread joins
//!   before the body runs; `wait_idle` joins completion packets. Within
//!   one thread, program order orders everything.
//! * At every **settle point** (dispatch return, `Lane::wait_idle`,
//!   `nowait_scope` exit) the logs are drained and checked: two writes
//!   from different threads that overlap without a happens-before edge
//!   in either direction are a violation. Violations are counted on the
//!   `race.violations` metric, printed, and panic the settling thread
//!   (unless a [`capture`] scope is collecting them, or the thread is
//!   already panicking).
//!
//! # Caveats (read before trusting a clean run)
//!
//! * Only writes through `SlicePtr` accessors are shadowed. A body that
//!   scribbles through its own raw pointers is invisible.
//! * Intervals are raw addresses: memory freed and reallocated between
//!   two compared accesses can alias. Three mitigations: settles drain
//!   and check eagerly; the retained cross-settle window is small
//!   ([`RETAIN`]); and `SlicePtr::new` [`claim`]s its range — the
//!   `&mut [T]` it takes proves exclusive ownership, so stale shadow
//!   state at a reused address is discarded when a new owner appears.
//!   Run race-checked suites with `--test-threads=1` (as
//!   `scripts/check.sh` does) so unrelated tests cannot interleave
//!   unordered allocations that never pass through `SlicePtr::new`.
//! * Detection is settle-scoped: a pair of writes is only compared when
//!   both have been drained before one of the checks. Launch→settle
//!   discipline in the executor guarantees that for everything it runs.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};

/// Cross-settle retention window (entries), bounding both memory and the
/// address-aliasing exposure described in the module docs.
const RETAIN: usize = 256;

static FORCED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the detector is armed. First call reads `DCMESH_RACECHECK`
/// (any value other than empty/`0` arms it); [`force_enable`] overrides.
#[inline]
pub fn enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DCMESH_RACECHECK")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    }) || FORCED.load(Ordering::Relaxed)
}

/// Arm the detector for this process regardless of the environment
/// (negative-path tests). There is deliberately no disarm: hooks may
/// already hold state.
pub fn force_enable() {
    FORCED.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Vector clocks and per-thread state
// ---------------------------------------------------------------------------

type Vc = Vec<u32>;

/// `a_clock` (thread `a_tid`'s component at the time of an access)
/// happened-before an access whose snapshot is `b_snap`?
fn hb(a_tid: usize, a_clock: u32, b_snap: &Vc) -> bool {
    b_snap.get(a_tid).copied().unwrap_or(0) >= a_clock
}

/// A happens-before edge in transit: fork on one thread, join on another.
#[derive(Clone, Debug)]
pub struct Packet(Arc<Vc>);

/// One shadowed write, as a byte interval of real addresses.
#[derive(Clone, Debug)]
struct Access {
    lo: usize,
    hi: usize,
    tid: usize,
    /// The writer's own clock component at access time.
    clock: u32,
    /// Full vector-clock snapshot at access time (shared between
    /// accesses logged between two happens-before events).
    snap: Arc<Vc>,
    label: &'static str,
}

struct ThreadState {
    tid: usize,
    name: String,
    vc: Vc,
    /// Cached snapshot; invalidated by fork/join.
    snap: Option<Arc<Vc>>,
    log: Vec<Access>,
}

impl ThreadState {
    fn snapshot(&mut self) -> Arc<Vc> {
        if let Some(s) = &self.snap {
            return Arc::clone(s);
        }
        let s = Arc::new(self.vc.clone());
        self.snap = Some(Arc::clone(&s));
        s
    }
}

struct Registry {
    threads: Vec<Arc<Mutex<ThreadState>>>,
    retained: Vec<Access>,
    /// When `Some`, violations are collected here instead of panicking.
    capture: Option<Vec<Violation>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            threads: Vec::new(),
            retained: Vec::new(),
            capture: None,
        })
    })
}

thread_local! {
    static MY_STATE: std::cell::RefCell<Option<Arc<Mutex<ThreadState>>>> =
        const { std::cell::RefCell::new(None) };
}

fn my_state() -> Arc<Mutex<ThreadState>> {
    MY_STATE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let tid = reg.threads.len();
        let name = std::thread::current().name().unwrap_or("?").to_string();
        let mut vc = vec![0u32; tid + 1];
        vc[tid] = 1;
        let state = Arc::new(Mutex::new(ThreadState {
            tid,
            name,
            vc,
            snap: None,
            log: Vec::new(),
        }));
        reg.threads.push(Arc::clone(&state));
        *slot = Some(Arc::clone(&state));
        state
    })
}

fn lock_state(s: &Arc<Mutex<ThreadState>>) -> std::sync::MutexGuard<'_, ThreadState> {
    s.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Public hook API (called by dcmesh-pool)
// ---------------------------------------------------------------------------

/// Advance this thread's clock and emit a packet carrying its history;
/// the matching [`join`] on another thread creates the happens-before
/// edge. Call at launch points (dispatch publish, lane enqueue) and at
/// completion points (participant exit, lane body end).
pub fn fork() -> Packet {
    let state = my_state();
    let mut st = lock_state(&state);
    let tid = st.tid;
    st.vc[tid] += 1;
    st.snap = None;
    Packet(Arc::new(st.vc.clone()))
}

/// Absorb `packet`'s history into this thread's clock: everything that
/// happened before the fork now happens before this thread's subsequent
/// accesses.
pub fn join(packet: &Packet) {
    let state = my_state();
    let mut st = lock_state(&state);
    if st.vc.len() < packet.0.len() {
        st.vc.resize(packet.0.len(), 0);
    }
    for (mine, theirs) in st.vc.iter_mut().zip(packet.0.iter()) {
        *mine = (*mine).max(*theirs);
    }
    st.snap = None;
}

/// Log a write to the byte interval `[lo, hi)` (real addresses). Adjacent
/// same-clock writes coalesce into one entry.
pub fn record_write(lo: usize, hi: usize, label: &'static str) {
    if hi <= lo {
        return; // zero-sized types / empty ranges
    }
    let state = my_state();
    let mut st = lock_state(&state);
    let snap = st.snapshot();
    let tid = st.tid;
    let clock = st.vc[tid];
    if let Some(last) = st.log.last_mut() {
        if last.clock == clock && last.label == label && last.lo <= hi && lo <= last.hi {
            last.lo = last.lo.min(lo);
            last.hi = last.hi.max(hi);
            return;
        }
    }
    st.log.push(Access {
        lo,
        hi,
        tid,
        clock,
        snap,
        label,
    });
}

/// Declare exclusive ownership of the byte interval `[lo, hi)`: all
/// shadow state overlapping it is discarded (partially overlapping
/// entries are trimmed to the part outside the claim).
///
/// Call this only where the type system already proves exclusivity —
/// `SlicePtr::new` does, because it takes `&mut [T]`. A fresh `&mut`
/// borrow means every prior access to those bytes is ordered before
/// every future one by the borrow checker, so stale entries add nothing
/// but address-reuse false positives: a buffer freed by one thread and
/// reallocated at the same address for another (the classic
/// one-test-per-thread harness pattern) would otherwise be compared
/// against the new owner's writes with no happens-before edge.
pub fn claim(lo: usize, hi: usize) {
    if hi <= lo {
        return;
    }
    fn cut(list: &mut Vec<Access>, lo: usize, hi: usize) {
        let mut split: Vec<Access> = Vec::new();
        list.retain_mut(|a| {
            if a.hi <= lo || a.lo >= hi {
                return true;
            }
            match (a.lo < lo, a.hi > hi) {
                (false, false) => false, // fully claimed
                (true, false) => {
                    a.hi = lo;
                    true
                }
                (false, true) => {
                    a.lo = hi;
                    true
                }
                (true, true) => {
                    let mut tail = a.clone();
                    tail.lo = hi;
                    a.hi = lo;
                    split.push(tail);
                    true
                }
            }
        });
        list.extend(split);
    }
    // Same lock order as `settle`: registry, then each thread state.
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    cut(&mut reg.retained, lo, hi);
    for t in &reg.threads {
        cut(&mut lock_state(t).log, lo, hi);
    }
}

/// A write-write overlap with no happens-before edge in either direction.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Settle point that detected the overlap.
    pub settle: &'static str,
    /// Labels of the two conflicting writes.
    pub labels: (&'static str, &'static str),
    /// Thread names of the two writers.
    pub threads: (String, String),
    /// Overlapping byte range (real addresses).
    pub overlap: (usize, usize),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "data race at settle '{}': unordered writes {:#x}..{:#x} \
             ({} on '{}' vs {} on '{}')",
            self.settle,
            self.overlap.0,
            self.overlap.1,
            self.labels.0,
            self.threads.0,
            self.labels.1,
            self.threads.1,
        )
    }
}

/// Drain every thread's log and check all pairs of overlapping writes
/// for a missing happens-before edge. Call after joining the region's
/// completion packets. Panics on violations unless capturing.
pub fn settle(settle_label: &'static str) {
    let mut violations: Vec<Violation> = Vec::new();
    {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let mut accesses: Vec<Access> = std::mem::take(&mut reg.retained);
        let names: Vec<String> = reg
            .threads
            .iter()
            .map(|t| lock_state(t).name.clone())
            .collect();
        for t in &reg.threads {
            accesses.append(&mut lock_state(t).log);
        }
        let fresh = accesses.len();

        // Interval sweep: sort by lo, compare each access against the
        // still-open ones before it.
        let mut order: Vec<usize> = (0..accesses.len()).collect();
        order.sort_by_key(|&i| accesses[i].lo);
        let mut open: Vec<usize> = Vec::new();
        for &i in &order {
            let a = &accesses[i];
            open.retain(|&j| accesses[j].hi > a.lo);
            for &j in &open {
                let b = &accesses[j];
                if a.tid == b.tid {
                    continue; // program order
                }
                if hb(a.tid, a.clock, &b.snap) || hb(b.tid, b.clock, &a.snap) {
                    continue;
                }
                violations.push(Violation {
                    settle: settle_label,
                    labels: (b.label, a.label),
                    threads: (
                        names.get(b.tid).cloned().unwrap_or_default(),
                        names.get(a.tid).cloned().unwrap_or_default(),
                    ),
                    overlap: (a.lo.max(b.lo), a.hi.min(b.hi)),
                });
                if violations.len() >= 32 {
                    break;
                }
            }
            open.push(i);
        }

        // Keep a bounded most-recent window for cross-settle pairs.
        if accesses.len() > RETAIN {
            accesses.drain(..accesses.len() - RETAIN);
        }
        reg.retained = accesses;

        if dcmesh_obs::enabled() {
            dcmesh_obs::metrics::counter_add("race.regions", 1);
            dcmesh_obs::metrics::counter_add("race.accesses", fresh as u64);
            if !violations.is_empty() {
                dcmesh_obs::metrics::counter_add("race.violations", violations.len() as u64);
            }
        }

        if !violations.is_empty() {
            if let Some(sink) = reg.capture.as_mut() {
                sink.extend(violations);
                return;
            }
        }
    } // release the registry lock before reporting
    if violations.is_empty() {
        return;
    }
    for v in &violations {
        eprintln!("DCMESH_RACECHECK: {v}");
    }
    if !std::thread::panicking() {
        panic!(
            "DCMESH_RACECHECK found {} unordered overlapping write(s); first: {}",
            violations.len(),
            violations[0]
        );
    }
}

/// Run `f` with violations collected instead of panicking; returns
/// `f`'s output and everything detected while it ran. Used by the
/// negative-path tests that seed a deliberate overlap.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, Vec<Violation>) {
    {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.capture = Some(Vec::new());
    }
    let out = f();
    let got = {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        reg.capture.take().unwrap_or_default()
    };
    (out, got)
}

/// Discard all logged accesses and the retained window (test isolation).
pub fn reset() {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.retained.clear();
    for t in &reg.threads {
        lock_state(t).log.clear();
    }
}
