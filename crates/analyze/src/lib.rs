//! dcmesh-analyze — the concurrency-correctness toolkit behind the
//! executor and stream layers.
//!
//! PR 2 moved the whole hot path onto raw-pointer fan-out: the pool's
//! claim-loop dispatch (`SlicePtr`, `JobRef`) and the deferred `nowait`
//! stream lanes are the Rust analogue of the paper's Algorithm 5
//! hierarchical offload, and their soundness rests on *protocol*
//! arguments (every index claimed exactly once; (plane × orbital-block)
//! teams write disjoint SoA slabs; FIFO lanes serialize same-stream
//! bodies). This crate turns those arguments from comments into checked
//! artifacts, with three layers:
//!
//! 1. [`sched`] — a deterministic schedule explorer ("loom-lite"): a
//!    controllable scheduler plus the instrumented primitives in
//!    [`sync`] that `dcmesh-pool` is built on. Tests run the *actual*
//!    pool and lane state machines under every interleaving reachable
//!    within a preemption bound, instead of trusting a hand-written
//!    handoff argument.
//! 2. [`race`] — a shadow-access race detector (`DCMESH_RACECHECK=1`):
//!    `SlicePtr` writes are logged as byte intervals with vector-clock
//!    snapshots; at every region settle (dispatch return, lane
//!    `wait_idle`, `nowait_scope` exit) overlapping writes without a
//!    happens-before edge are reported through `dcmesh-obs` and panic
//!    the offending test.
//! 3. [`lint`] — a source-level hygiene gate (`--bin lint`): walks the
//!    workspace and fails on undocumented `unsafe`, stray
//!    `thread::spawn`, wall-clock reads in kernel crates, and
//!    `static mut`.
//!
//! Layering: this crate sits *below* `dcmesh-pool` (which links the
//! [`sync`] primitives and [`race`] hooks into its hot path), so it
//! must depend only on `dcmesh-obs`. When neither tool is armed, every
//! instrumentation point costs one relaxed atomic load — the same
//! contract `dcmesh-obs` spans make.

pub mod audit;
pub mod lex;
pub mod lint;
pub mod race;
pub mod sched;
pub mod sync;
