//! Runtime autotuner for the SIMD microkernel layer.
//!
//! The packed split-complex GEMM (`dcmesh_math::simd`) and the kinetic
//! stencil are tile-parameterized; the best (mc, kc, nc) cache tiles and
//! orbital block size depend on the CPU, the thread count, and the problem
//! shape class. This crate searches those parameters **once per
//! (shape-class, ISA, thread-count)**, persists the winners to an on-disk
//! cache under `bench_results/tune/`, and installs them into the math
//! crate's tile registry so `gemm`/`gemm_colmajor` and the LFD engine
//! consult them with zero per-call cost.
//!
//! # Cache format
//!
//! One text file per fingerprint: `tune-v<SCHEMA>-<isa>-t<threads>.tsv`,
//! first line a schema header, then one `key<TAB>p=v,p=v` line per tuned
//! entry (sorted, so the file is diff- and `assert`-friendly for the
//! check.sh cold/warm smoke). A warm start is exactly one file read; a
//! schema or fingerprint mismatch ignores the file and re-tunes.
//!
//! # Telemetry
//!
//! Every consulted or tuned entry lands in the obs metrics as
//! `tune.<key>.<param>` gauges (flowing into the telemetry RunRecord, so
//! `compare` can flag tile-choice drift between runs) plus the
//! `tune.cache_hits` / `tune.cold_searches` counters.
//!
//! This crate deliberately lives *outside* the kernel crates: it owns the
//! only wall-clock timing loop (`Instant::now` is lint-banned in
//! `crates/math`), and kernels merely read the registry it fills.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use dcmesh_math::simd::{self, GemmTiles};
use dcmesh_math::Complex;
use dcmesh_obs::metrics::{counter_add, gauge_set};

#[cfg(target_arch = "x86_64")]
use rand::rngs::StdRng;
#[cfg(target_arch = "x86_64")]
use rand::{Rng, SeedableRng};

/// Bump when the cache line format changes; mismatched files are ignored.
pub const SCHEMA_VERSION: u32 = 1;

/// Tuned parameter assignment for one cache key.
pub type Params = BTreeMap<String, u64>;

// ---------------------------------------------------------------------------
// Cache location & state
// ---------------------------------------------------------------------------

static DIR_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Point the tuner at a different cache directory (tests, benches, the
/// check.sh smoke). Takes effect on the next cache access.
pub fn set_cache_dir(dir: impl Into<PathBuf>) {
    *DIR_OVERRIDE.lock().expect("tune dir lock") = Some(dir.into());
}

/// Resolve the cache directory: [`set_cache_dir`] > `DCMESH_TUNE_DIR` >
/// `<workspace>/bench_results/tune`.
pub fn cache_dir() -> PathBuf {
    if let Some(d) = DIR_OVERRIDE.lock().expect("tune dir lock").clone() {
        return d;
    }
    if let Ok(d) = std::env::var("DCMESH_TUNE_DIR") {
        if !d.trim().is_empty() {
            return PathBuf::from(d);
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results/tune")
}

/// ISA half of the cache fingerprint (the active SIMD backend label).
pub fn isa_label() -> &'static str {
    simd::active_backend().label()
}

/// Cache file for the current (schema, ISA, threads) fingerprint.
pub fn cache_file() -> PathBuf {
    let threads = dcmesh_pool::configured_threads();
    cache_dir().join(format!(
        "tune-v{SCHEMA_VERSION}-{}-t{threads}.tsv",
        isa_label()
    ))
}

struct CacheState {
    /// Which file `entries` mirrors (reload when the override changes).
    loaded_from: Option<PathBuf>,
    entries: HashMap<String, Params>,
}

fn cache() -> &'static Mutex<CacheState> {
    static CACHE: OnceLock<Mutex<CacheState>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(CacheState {
            loaded_from: None,
            entries: HashMap::new(),
        })
    })
}

fn expected_header() -> String {
    format!(
        "# dcmesh-tune schema={SCHEMA_VERSION} isa={} threads={}",
        isa_label(),
        dcmesh_pool::configured_threads()
    )
}

fn parse_cache(contents: &str) -> Option<HashMap<String, Params>> {
    let mut lines = contents.lines();
    if lines.next()?.trim() != expected_header() {
        return None;
    }
    let mut entries = HashMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = line.split_once('\t')?;
        let mut params = Params::new();
        for kv in rest.split(',') {
            let (p, v) = kv.split_once('=')?;
            params.insert(p.trim().to_string(), v.trim().parse().ok()?);
        }
        entries.insert(key.to_string(), params);
    }
    Some(entries)
}

/// Ensure the in-memory cache mirrors the current cache file. Warm start
/// is this single file read, performed at most once per file path.
fn ensure_loaded(state: &mut CacheState) {
    let path = cache_file();
    if state.loaded_from.as_deref() == Some(&path) {
        return;
    }
    state.entries = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| parse_cache(&s))
        .unwrap_or_default();
    state.loaded_from = Some(path);
}

fn persist(state: &CacheState) {
    let path = cache_file();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut body = expected_header();
    body.push('\n');
    let mut keys: Vec<_> = state.entries.keys().collect();
    keys.sort();
    for key in keys {
        let params = &state.entries[key];
        let rendered: Vec<String> = params.iter().map(|(p, v)| format!("{p}={v}")).collect();
        body.push_str(&format!("{key}\t{}\n", rendered.join(",")));
    }
    let tmp = path.with_extension("tsv.tmp");
    let ok = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(body.as_bytes()))
        .is_ok();
    if ok {
        let _ = std::fs::rename(&tmp, &path);
    }
}

/// Cached parameters for `key` under the current fingerprint, if tuned.
pub fn lookup(key: &str) -> Option<Params> {
    let mut state = cache().lock().expect("tune cache lock");
    ensure_loaded(&mut state);
    state.entries.get(key).cloned()
}

fn store(key: &str, params: Params) {
    let mut state = cache().lock().expect("tune cache lock");
    ensure_loaded(&mut state);
    state.entries.insert(key.to_string(), params);
    persist(&state);
}

fn publish_gauges(key: &str, params: &Params) {
    for (p, v) in params {
        gauge_set(&format!("tune.{key}.{p}"), *v as f64);
    }
}

// ---------------------------------------------------------------------------
// Timing helpers
// ---------------------------------------------------------------------------

/// Best-of-`reps` wall time of `f`, in nanoseconds, after one warmup run.
fn best_time_ns(reps: usize, mut f: impl FnMut()) -> u128 {
    f(); // warmup: page in scratch, resolve dispatch, warm caches
    let mut best = u128::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    best
}

// ---------------------------------------------------------------------------
// Generic scalar-parameter tuning
// ---------------------------------------------------------------------------

/// Pick the fastest of `candidates` for `key`, timing `run(candidate)`
/// (cold) or returning the cached winner (warm — one map lookup). The
/// winner is persisted and published as a `tune.<key>.v` gauge.
pub fn tuned_usize(key: &str, candidates: &[usize], mut run: impl FnMut(usize)) -> usize {
    assert!(!candidates.is_empty(), "need at least one candidate");
    if let Some(params) = lookup(key) {
        if let Some(&v) = params.get("v") {
            counter_add("tune.cache_hits", 1);
            publish_gauges(key, &params);
            return v as usize;
        }
    }
    let mut best = (u128::MAX, candidates[0]);
    for &c in candidates {
        let t = best_time_ns(3, || run(c));
        if t < best.0 {
            best = (t, c);
        }
    }
    let mut params = Params::new();
    params.insert("v".into(), best.1 as u64);
    counter_add("tune.cold_searches", 1);
    publish_gauges(key, &params);
    store(key, params);
    best.1
}

// ---------------------------------------------------------------------------
// GEMM tile tuning
// ---------------------------------------------------------------------------

/// Candidate (mc, kc, nc) grid searched on a cold tune.
fn tile_candidates() -> Vec<GemmTiles> {
    let mut out = Vec::new();
    for mc in [32usize, 64, 128] {
        for kc in [128usize, 256, 512] {
            for nc in [64usize, 128, 256] {
                out.push(GemmTiles { mc, kc, nc });
            }
        }
    }
    out
}

/// Representative (clipped) search shape for a class: big enough to show
/// cache effects, small enough that a 27-candidate cold search stays in
/// the low seconds.
#[cfg(target_arch = "x86_64")]
fn search_shape(m: usize, n: usize, k: usize) -> (usize, usize, usize) {
    let clip = |x: usize, cap: usize| x.max(1).next_power_of_two().min(cap);
    let (mut mr, nr, mut kr) = (clip(m, 256), clip(n, 256), clip(k, 2048));
    // Cap the work per timing rep at ~32M complex FMAs.
    while mr * nr * kr > 32 << 20 && kr > 64 {
        kr /= 2;
    }
    while mr * nr * kr > 32 << 20 && mr > 64 {
        mr /= 2;
    }
    (mr, nr, kr)
}

/// Ensure tuned GEMM tiles for the shape class of an (m, n, k) problem:
/// warm cache hit or cold search; either way the winner is installed into
/// the math tile registry and published to telemetry. Returns the tiles
/// the packed GEMM will use. On hardware without the AVX2 path the
/// heuristic defaults are returned (the packed kernel never runs there).
pub fn gemm_tiles(m: usize, n: usize, k: usize) -> GemmTiles {
    let class = simd::shape_class(m, n, k);
    if let Some(params) = lookup(&class) {
        if let (Some(&mc), Some(&kc), Some(&nc)) =
            (params.get("mc"), params.get("kc"), params.get("nc"))
        {
            let tiles = GemmTiles {
                mc: mc as usize,
                kc: kc as usize,
                nc: nc as usize,
            };
            simd::install_tiles(&class, tiles);
            counter_add("tune.cache_hits", 1);
            publish_gauges(&class, &params);
            return tiles;
        }
    }
    let tiles = cold_search_gemm(m, n, k);
    simd::install_tiles(&class, tiles);
    let mut params = Params::new();
    params.insert("mc".into(), tiles.mc as u64);
    params.insert("kc".into(), tiles.kc as u64);
    params.insert("nc".into(), tiles.nc as u64);
    counter_add("tune.cold_searches", 1);
    publish_gauges(&class, &params);
    store(&class, params);
    tiles
}

#[cfg(target_arch = "x86_64")]
fn cold_search_gemm(m: usize, n: usize, k: usize) -> GemmTiles {
    use dcmesh_math::gemm::Op;
    if !simd::avx2_available() || simd::active_backend() != simd::Backend::Avx2 {
        return simd::default_tiles();
    }
    let (mr, nr, kr) = search_shape(m, n, k);
    let mut rng = StdRng::seed_from_u64(0x0D0C_5EED);
    let mut rc = || Complex::new(rng.gen_range(-1.0..1.0f64), rng.gen_range(-1.0..1.0f64));
    let a: Vec<Complex<f64>> = (0..mr * kr).map(|_| rc()).collect();
    let b: Vec<Complex<f64>> = (0..kr * nr).map(|_| rc()).collect();
    let mut c: Vec<Complex<f64>> = vec![Complex::zero(); mr * nr];
    let mut best = (u128::MAX, simd::default_tiles());
    for tiles in tile_candidates() {
        let t = best_time_ns(3, || {
            simd::gemm_packed_f64(
                tiles,
                Complex::one(),
                &a,
                (mr, kr),
                Op::None,
                &b,
                (kr, nr),
                Op::None,
                Complex::zero(),
                &mut c,
                (mr, nr),
                kr,
            );
        });
        if t < best.0 {
            best = (t, tiles);
        }
    }
    best.1
}

#[cfg(not(target_arch = "x86_64"))]
fn cold_search_gemm(_m: usize, _n: usize, _k: usize) -> GemmTiles {
    simd::default_tiles()
}

/// Publish the tiles the packed GEMM *currently* consults for (m, n, k)
/// — tuned winner or heuristic default — as telemetry gauges, without
/// triggering any search. The LFD engine calls this at startup so every
/// RunRecord carries the consulted tiles and `compare` can flag drift.
pub fn report_gemm_tiles(m: usize, n: usize, k: usize) -> GemmTiles {
    let class = simd::shape_class(m, n, k);
    let tiles = simd::tiles_for(m, n, k);
    let mut params = Params::new();
    params.insert("mc".into(), tiles.mc as u64);
    params.insert("kc".into(), tiles.kc as u64);
    params.insert("nc".into(), tiles.nc as u64);
    publish_gauges(&class, &params);
    tiles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dcmesh-tune-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_roundtrip_and_warm_hit() {
        // Serialize all cache-dir-sensitive assertions in one test body
        // (the override is process-global).
        let dir = temp_cache_dir("roundtrip");
        set_cache_dir(&dir);

        // Cold: runs the closure for every candidate.
        let mut runs = 0;
        let v1 = tuned_usize("test.knob", &[8, 16, 32], |_| runs += 1);
        assert!(runs >= 3, "cold search must time every candidate");
        assert!([8, 16, 32].contains(&v1));

        // Warm: the closure must not run at all (cache hit = map lookup).
        let mut warm_runs = 0;
        let v2 = tuned_usize("test.knob", &[8, 16, 32], |_| warm_runs += 1);
        assert_eq!(warm_runs, 0, "warm start must not re-run candidates");
        assert_eq!(v1, v2);

        // The file round-trips through the parser.
        let contents = std::fs::read_to_string(cache_file()).unwrap();
        let parsed = parse_cache(&contents).expect("header must match");
        assert_eq!(parsed["test.knob"]["v"], v1 as u64);

        // gemm tile tuning persists and re-loads identically.
        let t_cold = gemm_tiles(48, 48, 300);
        let class = simd::shape_class(48, 48, 300);
        assert_eq!(simd::installed_tiles(&class), Some(t_cold));
        let t_warm = gemm_tiles(48, 48, 300);
        assert_eq!(t_cold, t_warm, "warm tiles must equal cold winners");

        // Mismatched header (other fingerprint) is ignored wholesale.
        assert!(parse_cache("# dcmesh-tune schema=999 isa=x threads=1\n").is_none());

        set_cache_dir(temp_cache_dir("post")); // detach from `dir`
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_does_not_search() {
        let tiles = report_gemm_tiles(1000, 1000, 1000);
        assert!(tiles.mc >= 4 && tiles.kc >= 1 && tiles.nc >= 4);
    }
}
