//! Tuning-cache smoke probe for check.sh.
//!
//! Tunes (or warm-loads) the GEMM tiles for the paper-relevant shape
//! classes plus a stencil block knob, printing the chosen parameters to
//! **stdout** (stable, diffable between a cold and a warm run) and the
//! cache temperature to **stderr**. The check.sh smoke runs this twice
//! against a fresh `DCMESH_TUNE_DIR` and asserts identical stdout: the
//! warm run must load exactly the tiles the cold run persisted.

use dcmesh_math::simd;

/// Paper-relevant GEMM shape classes (Table II system: norb=64, nu=16,
/// mesh 70x70x72 = 352800 points): the nonlocal overlap S = P^H psi and
/// a square-ish propagator block.
const SHAPES: [(usize, usize, usize); 2] = [(64, 16, 352800), (256, 256, 256)];

fn main() {
    let warm = SHAPES
        .iter()
        .all(|&(m, n, k)| dcmesh_tune::lookup(&simd::shape_class(m, n, k)).is_some())
        && dcmesh_tune::lookup("stencil.smoke").is_some();
    eprintln!(
        "tune_probe: cache={} file={}",
        if warm { "warm" } else { "cold" },
        dcmesh_tune::cache_file().display()
    );

    for (m, n, k) in SHAPES {
        let tiles = dcmesh_tune::gemm_tiles(m, n, k);
        println!(
            "{} mc={} kc={} nc={}",
            simd::shape_class(m, n, k),
            tiles.mc,
            tiles.kc,
            tiles.nc
        );
    }

    // A small pointwise workload standing in for the stencil plane tile.
    let mut buf = vec![dcmesh_math::C64::new(0.6, -0.2); 4096];
    let ph = dcmesh_math::C64::from_polar(1.0, 0.3);
    let block = dcmesh_tune::tuned_usize("stencil.smoke", &[256, 512, 1024], |b| {
        for chunk in buf.chunks_mut(b) {
            simd::scale(chunk, ph);
        }
    });
    println!("stencil.smoke v={block}");
}
