//! Roofline performance model for the paper's hardware.
//!
//! The reproduction has no physical A100; modeled kernel times come from the
//! classic roofline bound `t = max(bytes / BW, flops / peak) + overhead`,
//! with transfer times from interconnect bandwidths. Constants are taken
//! from the paper's §IV platform description of ALCF Polaris (A100 HBM2,
//! PCIe 64 GB/s, NVLink 600 GB/s, EPYC Milan 7543P) plus public datasheets.
//! Every report produced from this model is labeled "modeled".

/// Floating-point precision of a kernel (Table II compares SP vs DP).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit floats.
    Sp,
    /// 64-bit floats.
    Dp,
}

impl Precision {
    /// Bytes per real scalar.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Sp => 4,
            Precision::Dp => 8,
        }
    }

    /// Table label ("SP"/"DP").
    pub fn label(self) -> &'static str {
        match self {
            Precision::Sp => "SP",
            Precision::Dp => "DP",
        }
    }
}

/// What kind of host-device transfer a copy is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransferKind {
    /// Pageable host memory over PCIe (the default `omp target` path).
    Pageable,
    /// Pinned (page-locked) host memory over PCIe (§III-E optimization).
    Pinned,
    /// GPU-to-GPU over NVLink (used by the comm layer's on-node exchanges).
    NvLink,
}

/// Work performed by one kernel launch, counted by the *real* computation.
#[derive(Copy, Clone, Debug, Default)]
pub struct KernelWork {
    /// Bytes moved to/from device memory (reads + writes).
    pub bytes: u64,
    /// Real floating-point operations executed.
    pub flops: u64,
    /// Precision the kernel ran in.
    pub precision: Option<Precision>,
}

impl KernelWork {
    /// Convenience constructor.
    pub fn new(bytes: u64, flops: u64, precision: Precision) -> Self {
        Self {
            bytes,
            flops,
            precision: Some(precision),
        }
    }
}

/// Hardware description feeding the roofline model.
#[derive(Clone, Debug)]
pub struct HardwareSpec {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Main (device) memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Peak FP32 throughput, flops/second.
    pub peak_sp: f64,
    /// Peak FP64 throughput, flops/second.
    pub peak_dp: f64,
    /// Fixed kernel launch overhead, seconds (zero for a CPU "launch").
    pub launch_overhead: f64,
    /// PCIe bandwidth for pageable transfers, bytes/second.
    pub pcie_pageable_bw: f64,
    /// PCIe bandwidth for pinned transfers, bytes/second.
    pub pcie_pinned_bw: f64,
    /// NVLink bandwidth, bytes/second.
    pub nvlink_bw: f64,
    /// Per-transfer latency, seconds.
    pub transfer_latency: f64,
    /// Fraction of peak a real, well-tuned kernel sustains (occupancy,
    /// instruction mix); applied to both bandwidth and compute roofs.
    pub efficiency: f64,
}

impl HardwareSpec {
    /// Nvidia A100 (40 GB PCIe / HGX, Polaris node): HBM2 1555 GB/s,
    /// 19.5 TF/s FP32, 9.7 TF/s FP64, ~10 us kernel launch.
    pub fn a100() -> Self {
        Self {
            name: "NVIDIA A100",
            mem_bw: 1.555e12,
            peak_sp: 19.5e12,
            peak_dp: 9.7e12,
            launch_overhead: 10e-6,
            pcie_pageable_bw: 22e9, // pageable staging ~1/3 of the 64 GB/s link
            pcie_pinned_bw: 64e9,   // paper: "The GPU's PCIe bandwidth is 64 GB/s"
            nvlink_bw: 600e9,       // paper: "GPU interconnect bandwidth of 600 GB/s"
            transfer_latency: 8e-6,
            efficiency: 0.60,
        }
    }

    /// One core of the AMD EPYC Milan 7543P host CPU (2.8 GHz, AVX2):
    /// the paper's single-thread CPU baseline (Tables I-II use one
    /// OpenMP thread / one CPU core).
    pub fn epyc_7543_core() -> Self {
        Self {
            name: "AMD EPYC 7543P (1 core)",
            mem_bw: 20e9,          // per-core sustainable share of DDR4-3200 x8
            peak_sp: 2.8e9 * 16.0, // 2x AVX2 FMA units x 8 SP lanes
            peak_dp: 2.8e9 * 8.0,
            launch_overhead: 0.0,
            pcie_pageable_bw: f64::INFINITY,
            pcie_pinned_bw: f64::INFINITY,
            nvlink_bw: f64::INFINITY,
            transfer_latency: 0.0,
            efficiency: 0.35, // scalar-ish compiled stencil code
        }
    }

    /// The whole 32-core EPYC 7543P socket (used by the Fig. 4 throughput
    /// comparison where the CPU baseline runs fully threaded).
    pub fn epyc_7543_socket() -> Self {
        Self {
            name: "AMD EPYC 7543P (32 cores)",
            mem_bw: 204.8e9, // 8 channels DDR4-3200
            peak_sp: 32.0 * 2.8e9 * 16.0,
            peak_dp: 32.0 * 2.8e9 * 8.0,
            launch_overhead: 0.0,
            pcie_pageable_bw: f64::INFINITY,
            pcie_pinned_bw: f64::INFINITY,
            nvlink_bw: f64::INFINITY,
            transfer_latency: 0.0,
            efficiency: 0.45,
        }
    }

    /// Roofline execution time for one kernel (device-side only; host-side
    /// launch/synchronization overhead is charged by the [`crate::Device`]
    /// timeline according to the launch policy).
    pub fn kernel_time(&self, work: &KernelWork) -> f64 {
        let peak = match work.precision.unwrap_or(Precision::Dp) {
            Precision::Sp => self.peak_sp,
            Precision::Dp => self.peak_dp,
        };
        let t_mem = work.bytes as f64 / (self.mem_bw * self.efficiency);
        let t_cmp = work.flops as f64 / (peak * self.efficiency);
        t_mem.max(t_cmp)
    }

    /// Transfer time for `bytes` over the chosen path.
    pub fn transfer_time(&self, bytes: u64, kind: TransferKind) -> f64 {
        let bw = match kind {
            TransferKind::Pageable => self.pcie_pageable_bw,
            TransferKind::Pinned => self.pcie_pinned_bw,
            TransferKind::NvLink => self.nvlink_bw,
        };
        if bw.is_infinite() {
            return 0.0;
        }
        bytes as f64 / bw + self.transfer_latency
    }

    /// Arithmetic intensity (flops/byte) at which this machine transitions
    /// from bandwidth- to compute-bound.
    pub fn ridge_point(&self, precision: Precision) -> f64 {
        let peak = match precision {
            Precision::Sp => self.peak_sp,
            Precision::Dp => self.peak_dp,
        };
        peak / self.mem_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_beats_cpu_core_on_streaming_kernel() {
        let a100 = HardwareSpec::a100();
        let core = HardwareSpec::epyc_7543_core();
        // A big bandwidth-bound kernel: 1 GiB traffic, low intensity.
        let w = KernelWork::new(1 << 30, 1 << 28, Precision::Dp);
        let ta = a100.kernel_time(&w);
        let tc = core.kernel_time(&w);
        assert!(tc / ta > 50.0, "speedup {}", tc / ta);
    }

    #[test]
    fn tiny_kernels_are_overhead_free_device_side() {
        // Launch overhead is charged by the Device timeline, not the
        // roofline execution time: a tiny kernel executes in well under the
        // host-side launch overhead.
        let a100 = HardwareSpec::a100();
        let w = KernelWork::new(1024, 1024, Precision::Sp);
        let t = a100.kernel_time(&w);
        assert!(t > 0.0);
        assert!(t < a100.launch_overhead / 10.0);
    }

    #[test]
    fn sp_kernels_faster_than_dp_when_compute_bound() {
        let a100 = HardwareSpec::a100();
        // High arithmetic intensity (GEMM-like): compute-bound.
        let wsp = KernelWork::new(1 << 20, 1 << 36, Precision::Sp);
        let wdp = KernelWork::new(1 << 20, 1 << 36, Precision::Dp);
        assert!(a100.kernel_time(&wsp) < a100.kernel_time(&wdp));
    }

    #[test]
    fn pinned_transfers_beat_pageable() {
        let a100 = HardwareSpec::a100();
        let bytes = 256 << 20;
        let tp = a100.transfer_time(bytes, TransferKind::Pageable);
        let tn = a100.transfer_time(bytes, TransferKind::Pinned);
        assert!(tp / tn > 2.0, "ratio {}", tp / tn);
        let tv = a100.transfer_time(bytes, TransferKind::NvLink);
        assert!(tv < tn);
    }

    #[test]
    fn cpu_transfers_are_free() {
        let core = HardwareSpec::epyc_7543_core();
        assert_eq!(core.transfer_time(1 << 30, TransferKind::Pinned), 0.0);
    }

    #[test]
    fn ridge_point_orders_precisions() {
        let a100 = HardwareSpec::a100();
        assert!(a100.ridge_point(Precision::Sp) > a100.ridge_point(Precision::Dp));
    }

    #[test]
    fn precision_metadata() {
        assert_eq!(Precision::Sp.bytes(), 4);
        assert_eq!(Precision::Dp.bytes(), 8);
        assert_eq!(Precision::Sp.label(), "SP");
    }
}
