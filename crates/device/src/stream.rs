//! Device handle, stream timelines, and launch policies.
//!
//! Models the host/device timing relationship of OpenMP `target` offload:
//! a **synchronous** launch blocks the host until the kernel completes,
//! while a **`nowait`** launch only charges the host the launch overhead and
//! lets kernels on different streams overlap (paper §III-C and the Table I
//! `nowait` ablation, where asynchronous offloading gains ~10%).
//!
//! The real computation inside a launch **usually** executes immediately on
//! the CPU, with the *modeled clock* distinguishing policies. The exception
//! is [`Device::nowait_scope`]: inside a scope, `Async` launches enqueue
//! their body on a persistent per-stream FIFO lane (a `dcmesh_pool::Lane`
//! thread) and return immediately — genuine host/"device" overlap, not just
//! a modeled one. Deferred bodies are settled (run to completion) at
//! [`Device::synchronize`] or at scope exit, whichever comes first, so
//! borrows captured by deferred bodies never outlive their data — the same
//! guarantee `std::thread::scope` gives.

use crate::perf::{HardwareSpec, KernelWork, TransferKind};
use parking_lot::Mutex;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Identifier of a device stream (CUDA-stream analog).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct StreamId(pub usize);

/// How a kernel launch interacts with the host clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LaunchPolicy {
    /// Host blocks until the kernel finishes (no `nowait`).
    Sync,
    /// Host continues after paying launch overhead (`nowait`); work lands on
    /// the stream's timeline and is settled at the next synchronize.
    Async,
}

/// Cumulative statistics of a device's modeled activity.
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Kernel launches issued.
    pub kernels_launched: u64,
    /// Total modeled kernel busy time (sum over streams), seconds.
    pub kernel_busy: f64,
    /// Host-to-device transfers issued.
    pub h2d_transfers: u64,
    /// Device-to-host transfers issued.
    pub d2h_transfers: u64,
    /// Bytes moved host->device.
    pub h2d_bytes: u64,
    /// Bytes moved device->host.
    pub d2h_bytes: u64,
    /// Total modeled transfer time, seconds.
    pub transfer_time: f64,
    /// Currently mapped (device-resident) bytes.
    pub resident_bytes: u64,
    /// High-water mark of mapped bytes.
    pub peak_resident_bytes: u64,
    /// enter-data mappings performed.
    pub maps: u64,
    /// exit-data unmappings performed.
    pub unmaps: u64,
}

#[derive(Debug)]
struct DeviceInner {
    host_clock: f64,
    streams: Vec<f64>, // busy-until per stream
    stats: DeviceStats,
}

/// A simulated accelerator with a roofline [`HardwareSpec`], per-stream
/// timelines, and residency accounting. Cheap to clone (shared state).
#[derive(Clone, Debug)]
pub struct Device {
    spec: Arc<HardwareSpec>,
    inner: Arc<Mutex<DeviceInner>>,
    /// Per-stream FIFO executor threads for deferred (`nowait`) bodies,
    /// created lazily on first deferred launch per stream.
    lanes: Arc<Mutex<Vec<Option<dcmesh_pool::Lane>>>>,
}

impl Device {
    /// Create a device with `num_streams` streams.
    pub fn new(spec: HardwareSpec, num_streams: usize) -> Self {
        assert!(num_streams >= 1, "need at least one stream");
        Self {
            spec: Arc::new(spec),
            inner: Arc::new(Mutex::new(DeviceInner {
                host_clock: 0.0,
                streams: vec![0.0; num_streams],
                stats: DeviceStats::default(),
            })),
            lanes: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Default A100-like device with 4 streams.
    pub fn a100() -> Self {
        Self::new(HardwareSpec::a100(), 4)
    }

    /// The hardware description backing this device.
    pub fn spec(&self) -> &HardwareSpec {
        &self.spec
    }

    /// Launch a kernel: executes `body` immediately (real compute), charges
    /// the modeled roofline time to `stream` under the given policy.
    /// Returns the value produced by `body`.
    ///
    /// Timing semantics mirror OpenMP target offload: a **synchronous**
    /// launch blocks the host until the kernel completes *and* pays the
    /// full launch/synchronization overhead each time; an **asynchronous**
    /// (`nowait`) launch only pays a small enqueue cost, so back-to-back
    /// kernels on one stream run with no host-side gaps — exactly the
    /// ~10% gain the paper's Table I `nowait` ablation measures.
    pub fn launch<T>(
        &self,
        stream: StreamId,
        policy: LaunchPolicy,
        work: KernelWork,
        body: impl FnOnce() -> T,
    ) -> T {
        self.launch_named("device.kernel", stream, policy, work, body)
    }

    /// [`Device::launch`] with a phase name for the trace: the modeled
    /// kernel slice lands on the device track under `name`, tagged with
    /// its stream and roofline duration.
    pub fn launch_named<T>(
        &self,
        name: &'static str,
        stream: StreamId,
        policy: LaunchPolicy,
        work: KernelWork,
        body: impl FnOnce() -> T,
    ) -> T {
        let out = body();
        self.charge_kernel(name, stream, policy, work);
        out
    }

    /// Advance the modeled clock for one kernel launch (shared by immediate
    /// and deferred launches — the timeline model is identical; only *when
    /// the body actually runs* differs).
    fn charge_kernel(
        &self,
        name: &'static str,
        stream: StreamId,
        policy: LaunchPolicy,
        work: KernelWork,
    ) {
        let dt = self.spec.kernel_time(&work);
        let start;
        {
            let mut g = self.inner.lock();
            start = g.host_clock.max(g.streams[stream.0]);
            let end = start + dt;
            g.streams[stream.0] = end;
            g.stats.kernels_launched += 1;
            g.stats.kernel_busy += dt;
            match policy {
                LaunchPolicy::Sync => g.host_clock = end + self.spec.launch_overhead,
                LaunchPolicy::Async => g.host_clock += self.spec.launch_overhead * 0.1,
            }
        }
        if dcmesh_obs::enabled() {
            dcmesh_obs::trace::record(dcmesh_obs::Event::complete(
                name,
                dcmesh_obs::Track::Device {
                    stream: stream.0 as u32,
                },
                start * 1e6,
                dt * 1e6,
            ));
            dcmesh_obs::metrics::counter_add("device.kernels_launched", 1);
        }
    }

    /// Enqueue an already-lifetime-erased task on `stream`'s FIFO lane,
    /// creating the lane thread on first use.
    fn enqueue_on_lane(&self, stream: StreamId, task: Box<dyn FnOnce() + Send + 'static>) {
        assert!(
            stream.0 < self.num_streams(),
            "stream {} out of range",
            stream.0
        );
        let mut lanes = self.lanes.lock();
        if lanes.len() <= stream.0 {
            lanes.resize_with(stream.0 + 1, || None);
        }
        let lane = lanes[stream.0]
            .get_or_insert_with(|| dcmesh_pool::Lane::new(&format!("dcmesh-lane-{}", stream.0)));
        lane.enqueue(task);
        if dcmesh_obs::enabled() {
            dcmesh_obs::metrics::counter_add("device.deferred_launches", 1);
        }
    }

    /// Run every enqueued deferred body to completion; returns the first
    /// captured panic payload, if any.
    fn drain_lanes(&self) -> Option<Box<dyn std::any::Any + Send + 'static>> {
        let lanes = self.lanes.lock();
        let mut panic = None;
        for lane in lanes.iter().flatten() {
            if let Some(p) = lane.wait_idle() {
                panic.get_or_insert(p);
            }
        }
        panic
    }

    /// Open a deferred-launch scope: inside `f`, [`NowaitScope::launch_named`]
    /// with [`LaunchPolicy::Async`] enqueues its body on the stream's
    /// persistent lane and returns immediately, so the host thread runs
    /// ahead of the "device" — the real overlap behind the paper's `nowait`
    /// ablation (Table I). All deferred bodies are settled before
    /// `nowait_scope` returns (even on panic), which is what lets them
    /// borrow data owned by the caller, exactly like `std::thread::scope`.
    pub fn nowait_scope<'env, T>(
        &'env self,
        f: impl for<'scope> FnOnce(&'scope NowaitScope<'scope, 'env>) -> T,
    ) -> T {
        let scope = NowaitScope {
            device: self,
            _scope: PhantomData,
            _env: PhantomData,
        };
        let out = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Settle before returning regardless of how `f` exited: deferred
        // bodies may borrow caller data that dies right after this frame.
        let lane_panic = self.drain_lanes();
        match out {
            Err(payload) => resume_unwind(payload),
            Ok(_) if lane_panic.is_some() => resume_unwind(lane_panic.unwrap()),
            Ok(v) => v,
        }
    }

    /// Record a host-to-device transfer of `bytes` over `kind`, on `stream`.
    pub fn transfer_h2d(&self, stream: StreamId, bytes: u64, kind: TransferKind) {
        self.transfer(stream, bytes, kind, true);
    }

    /// Record a device-to-host transfer of `bytes` over `kind`, on `stream`.
    pub fn transfer_d2h(&self, stream: StreamId, bytes: u64, kind: TransferKind) {
        self.transfer(stream, bytes, kind, false);
    }

    fn transfer(&self, stream: StreamId, bytes: u64, kind: TransferKind, h2d: bool) {
        let dt = self.spec.transfer_time(bytes, kind);
        let start;
        {
            let mut g = self.inner.lock();
            start = g.host_clock.max(g.streams[stream.0]);
            let end = start + dt;
            g.streams[stream.0] = end;
            // Transfers from pageable memory block the host; pinned + streams
            // overlap (this is exactly the §III-E optimization).
            match kind {
                TransferKind::Pageable => g.host_clock = end,
                TransferKind::Pinned | TransferKind::NvLink => {}
            }
            g.stats.transfer_time += dt;
            if h2d {
                g.stats.h2d_transfers += 1;
                g.stats.h2d_bytes += bytes;
            } else {
                g.stats.d2h_transfers += 1;
                g.stats.d2h_bytes += bytes;
            }
        }
        if dcmesh_obs::enabled() {
            let name = if h2d { "device.h2d" } else { "device.d2h" };
            dcmesh_obs::trace::record(
                dcmesh_obs::Event::complete(
                    name,
                    dcmesh_obs::Track::Device {
                        stream: stream.0 as u32,
                    },
                    start * 1e6,
                    dt * 1e6,
                )
                .with_bytes(bytes),
            );
            dcmesh_obs::metrics::counter_add(
                if h2d {
                    "device.h2d_bytes"
                } else {
                    "device.d2h_bytes"
                },
                bytes,
            );
        }
    }

    /// Block the host until all streams drain; returns the host clock.
    ///
    /// Also settles any deferred (`nowait`) bodies still queued on the
    /// stream lanes; a panic captured from a deferred body re-raises here.
    pub fn synchronize(&self) -> f64 {
        if let Some(payload) = self.drain_lanes() {
            resume_unwind(payload);
        }
        let max_end = {
            let mut g = self.inner.lock();
            let max_end = g.streams.iter().copied().fold(g.host_clock, f64::max);
            g.host_clock = max_end;
            max_end
        };
        if dcmesh_obs::enabled() {
            dcmesh_obs::trace::record(
                dcmesh_obs::Event::complete(
                    "device.synchronize",
                    dcmesh_obs::Track::Device { stream: 0 },
                    max_end * 1e6,
                    0.0,
                )
                .with_kind(dcmesh_obs::EventKind::Instant),
            );
        }
        max_end
    }

    /// Current modeled host clock (seconds), without synchronizing.
    pub fn host_clock(&self) -> f64 {
        self.inner.lock().host_clock
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        self.inner.lock().stats.clone()
    }

    /// Reset the clock and statistics (not the residency bookkeeping).
    pub fn reset_clock(&self) {
        let mut g = self.inner.lock();
        g.host_clock = 0.0;
        for s in g.streams.iter_mut() {
            *s = 0.0;
        }
        let resident = g.stats.resident_bytes;
        let peak = g.stats.peak_resident_bytes;
        let maps = g.stats.maps;
        let unmaps = g.stats.unmaps;
        g.stats = DeviceStats {
            resident_bytes: resident,
            peak_resident_bytes: peak,
            maps,
            unmaps,
            ..DeviceStats::default()
        };
    }

    /// `omp target enter data map(alloc: ...)` — reserve device residency.
    pub fn enter_data(&self, bytes: u64) {
        let mut g = self.inner.lock();
        g.stats.maps += 1;
        g.stats.resident_bytes += bytes;
        g.stats.peak_resident_bytes = g.stats.peak_resident_bytes.max(g.stats.resident_bytes);
    }

    /// `omp target exit data map(delete: ...)` — release device residency.
    pub fn exit_data(&self, bytes: u64) {
        let mut g = self.inner.lock();
        g.stats.unmaps += 1;
        g.stats.resident_bytes = g.stats.resident_bytes.saturating_sub(bytes);
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.inner.lock().streams.len()
    }
}

/// Handle for launching deferred kernels inside [`Device::nowait_scope`].
///
/// The lifetimes mirror `std::thread::Scope`: `'scope` is the scope itself
/// (invariant), `'env` the environment it may borrow from. A deferred body
/// must satisfy `F: 'scope`, and the scope settles every body before
/// returning, so borrowed captures are sound.
pub struct NowaitScope<'scope, 'env: 'scope> {
    device: &'env Device,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for NowaitScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NowaitScope").finish_non_exhaustive()
    }
}

impl<'scope, 'env> NowaitScope<'scope, 'env> {
    /// The device this scope defers onto.
    pub fn device(&self) -> &'env Device {
        self.device
    }

    /// Launch a kernel under this scope's deferred-execution rules:
    ///
    /// * [`LaunchPolicy::Sync`] — runs `body` immediately (identical to
    ///   [`Device::launch_named`]).
    /// * [`LaunchPolicy::Async`] — charges the modeled enqueue cost now,
    ///   pushes `body` onto `stream`'s FIFO lane, and returns immediately.
    ///   Bodies on one stream run in launch order; the scope (or
    ///   [`Device::synchronize`]) settles them.
    pub fn launch_named<F>(
        &'scope self,
        name: &'static str,
        stream: StreamId,
        policy: LaunchPolicy,
        work: KernelWork,
        body: F,
    ) where
        F: FnOnce() + Send + 'scope,
    {
        match policy {
            LaunchPolicy::Sync => {
                self.device.launch_named(name, stream, policy, work, body);
            }
            LaunchPolicy::Async => {
                let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(body);
                // SAFETY: (bounds=nowait_scope drains every lane before its
                // frame returns — on success and on panic — so the task
                // cannot outlive 'scope, aliasing=lifetime erasure only; the
                // captured borrows stay live because 'env outlives 'scope)
                // `Device::synchronize` offers an earlier settle point.
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(task)
                };
                self.device.charge_kernel(name, stream, policy, work);
                self.device.enqueue_on_lane(stream, task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::Precision;

    fn work(bytes: u64) -> KernelWork {
        KernelWork::new(bytes, bytes / 8, Precision::Dp)
    }

    #[test]
    fn sync_launch_advances_host_clock() {
        let d = Device::a100();
        let out = d.launch(StreamId(0), LaunchPolicy::Sync, work(1 << 30), || 42);
        assert_eq!(out, 42);
        assert!(d.host_clock() > 0.0);
        assert_eq!(d.host_clock(), d.synchronize());
    }

    #[test]
    fn async_launches_overlap_across_streams() {
        let spec = HardwareSpec::a100();
        let w = work(1 << 30);
        let kt = spec.kernel_time(&w);

        // Synchronous: two kernels serialize.
        let d_sync = Device::new(spec.clone(), 2);
        d_sync.launch(StreamId(0), LaunchPolicy::Sync, w, || ());
        d_sync.launch(StreamId(1), LaunchPolicy::Sync, w, || ());
        let t_sync = d_sync.synchronize();

        // Asynchronous on two streams: they overlap.
        let d_async = Device::new(spec, 2);
        d_async.launch(StreamId(0), LaunchPolicy::Async, w, || ());
        d_async.launch(StreamId(1), LaunchPolicy::Async, w, || ());
        let t_async = d_async.synchronize();

        assert!(t_sync > 1.9 * kt, "sync {t_sync} vs kernel {kt}");
        assert!(t_async < 1.2 * kt, "async {t_async} vs kernel {kt}");
    }

    #[test]
    fn async_on_same_stream_still_serializes() {
        let spec = HardwareSpec::a100();
        let w = work(1 << 30);
        let kt = spec.kernel_time(&w);
        let d = Device::new(spec, 2);
        d.launch(StreamId(0), LaunchPolicy::Async, w, || ());
        d.launch(StreamId(0), LaunchPolicy::Async, w, || ());
        let t = d.synchronize();
        assert!(t > 1.9 * kt);
    }

    #[test]
    fn pageable_transfer_blocks_host_pinned_does_not() {
        let d = Device::a100();
        d.transfer_h2d(StreamId(0), 1 << 30, TransferKind::Pageable);
        let after_pageable = d.host_clock();
        assert!(after_pageable > 0.0);

        let d2 = Device::a100();
        d2.transfer_h2d(StreamId(0), 1 << 30, TransferKind::Pinned);
        assert_eq!(d2.host_clock(), 0.0);
        assert!(d2.synchronize() > 0.0);
        assert!(d2.synchronize() < after_pageable); // pinned is also faster
    }

    #[test]
    fn stats_accumulate() {
        let d = Device::a100();
        d.launch(StreamId(0), LaunchPolicy::Sync, work(1024), || ());
        d.transfer_h2d(StreamId(0), 100, TransferKind::Pinned);
        d.transfer_d2h(StreamId(0), 50, TransferKind::Pinned);
        let s = d.stats();
        assert_eq!(s.kernels_launched, 1);
        assert_eq!(s.h2d_bytes, 100);
        assert_eq!(s.d2h_bytes, 50);
        assert!(s.kernel_busy > 0.0 && s.transfer_time > 0.0);
    }

    #[test]
    fn residency_tracking() {
        let d = Device::a100();
        d.enter_data(1000);
        d.enter_data(500);
        assert_eq!(d.stats().resident_bytes, 1500);
        d.exit_data(1000);
        assert_eq!(d.stats().resident_bytes, 500);
        assert_eq!(d.stats().peak_resident_bytes, 1500);
        assert_eq!(d.stats().maps, 2);
        assert_eq!(d.stats().unmaps, 1);
    }

    #[test]
    fn reset_clock_keeps_residency() {
        let d = Device::a100();
        d.enter_data(1000);
        d.launch(StreamId(0), LaunchPolicy::Sync, work(1 << 20), || ());
        d.reset_clock();
        assert_eq!(d.host_clock(), 0.0);
        assert_eq!(d.stats().kernels_launched, 0);
        assert_eq!(d.stats().resident_bytes, 1000);
    }

    #[test]
    fn clone_shares_state() {
        let d = Device::a100();
        let d2 = d.clone();
        d.enter_data(64);
        assert_eq!(d2.stats().resident_bytes, 64);
    }

    #[test]
    fn nowait_scope_defers_async_bodies_and_settles_on_exit() {
        let d = Device::a100();
        let mut data = vec![0u64; 256];
        d.nowait_scope(|scope| {
            let cells = &mut data;
            scope.launch_named(
                "k1",
                StreamId(0),
                LaunchPolicy::Async,
                work(1024),
                move || {
                    for x in cells.iter_mut() {
                        *x += 1;
                    }
                },
            );
        });
        // Scope exit settled the body; the borrow is usable again.
        assert!(data.iter().all(|&x| x == 1));
        assert_eq!(d.stats().kernels_launched, 1);
    }

    #[test]
    fn nowait_bodies_on_one_stream_run_fifo() {
        let d = Device::a100();
        let log = Arc::new(Mutex::new(Vec::new()));
        d.nowait_scope(|scope| {
            for i in 0..32 {
                let log = Arc::clone(&log);
                scope.launch_named("k", StreamId(1), LaunchPolicy::Async, work(64), move || {
                    log.lock().push(i);
                });
            }
        });
        assert_eq!(*log.lock(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn synchronize_settles_deferred_bodies_mid_scope() {
        let d = Device::a100();
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        d.nowait_scope(|scope| {
            let f = Arc::clone(&flag);
            scope.launch_named("k", StreamId(0), LaunchPolicy::Async, work(64), move || {
                f.store(true, std::sync::atomic::Ordering::SeqCst);
            });
            d.synchronize();
            assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
        });
    }

    #[test]
    fn sync_policy_inside_scope_runs_inline() {
        let d = Device::a100();
        let mut hit = false;
        d.nowait_scope(|scope| {
            scope.launch_named("k", StreamId(0), LaunchPolicy::Sync, work(64), || {
                hit = true;
            });
        });
        assert!(hit);
    }

    #[test]
    fn deferred_body_panic_propagates_at_scope_exit() {
        let d = Device::a100();
        let result = catch_unwind(AssertUnwindSafe(|| {
            d.nowait_scope(|scope| {
                scope.launch_named("k", StreamId(0), LaunchPolicy::Async, work(64), || {
                    panic!("deferred boom");
                });
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "deferred boom");
        // The device remains usable after the panic.
        d.nowait_scope(|scope| {
            scope.launch_named("k", StreamId(0), LaunchPolicy::Async, work(64), || {});
        });
    }

    #[test]
    fn deferred_body_panic_reraises_at_synchronize() {
        // A panic in a deferred body must surface at the *first* settle
        // point — an explicit mid-scope synchronize() — not silently wait
        // for scope exit; and consuming it there must not re-trip the
        // scope-exit drain.
        let d = Device::a100();
        let result = catch_unwind(AssertUnwindSafe(|| {
            d.nowait_scope(|scope| {
                scope.launch_named("k", StreamId(0), LaunchPolicy::Async, work(64), || {
                    panic!("sync boom");
                });
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    scope.device().synchronize();
                }))
                .expect_err("synchronize must re-raise the deferred panic");
                let msg = caught.downcast_ref::<&str>().copied().unwrap_or_default();
                assert_eq!(msg, "sync boom");
            });
        }));
        assert!(
            result.is_ok(),
            "payload already consumed at synchronize(); scope exit must not re-panic"
        );
        // The device (and its lanes) remain usable afterwards.
        let hit = Arc::new(std::sync::atomic::AtomicBool::new(false));
        d.nowait_scope(|scope| {
            let h = Arc::clone(&hit);
            scope.launch_named("k", StreamId(0), LaunchPolicy::Async, work(64), move || {
                h.store(true, std::sync::atomic::Ordering::SeqCst);
            });
        });
        d.synchronize();
        assert!(hit.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn deferred_launches_charge_async_clock_semantics() {
        let spec = HardwareSpec::a100();
        let w = work(1 << 30);
        let kt = spec.kernel_time(&w);
        // Deferred nowait launches on two streams overlap on the modeled
        // timeline exactly like immediate Async launches do.
        let d = Device::new(spec, 2);
        d.nowait_scope(|scope| {
            scope.launch_named("k", StreamId(0), LaunchPolicy::Async, w, || {});
            scope.launch_named("k", StreamId(1), LaunchPolicy::Async, w, || {});
        });
        let t = d.synchronize();
        assert!(t < 1.2 * kt, "deferred async {t} vs kernel {kt}");
    }
}
