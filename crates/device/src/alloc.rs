//! RAII device-resident containers — the `OMPallocator` of paper Alg. 6.
//!
//! The paper wraps `std::vector` allocation in a custom allocator whose
//! `allocate` issues `#pragma omp target enter data map(alloc: ...)` and
//! whose `deallocate` issues `exit data map(delete: ...)`, making large
//! wavefunction arrays persistently GPU-resident with zero use-site noise.
//! [`DeviceVec`] is the Rust equivalent: construction maps, `Drop` unmaps,
//! and explicit `update_to_device`/`update_to_host` calls model the only
//! transfers shadow dynamics allows (occupation-number-sized, §II).

use crate::perf::TransferKind;
use crate::stream::{Device, StreamId};
use std::ops::{Deref, DerefMut};

/// A vector whose storage is mirrored on a [`Device`] for its whole
/// lifetime. The host copy is the `Vec<T>` inside; the device copy is
/// represented by residency accounting plus explicit update transfers.
///
/// ```
/// use dcmesh_device::{Device, DeviceVec};
/// let device = Device::a100();
/// {
///     let psi: DeviceVec<f64> = DeviceVec::new(&device, 1024);
///     assert_eq!(device.stats().resident_bytes, 8 * 1024);
///     psi.update_to_device();
/// } // drop unmaps, like OMPallocator's deallocate
/// assert_eq!(device.stats().resident_bytes, 0);
/// ```
#[derive(Debug)]
pub struct DeviceVec<T> {
    host: Vec<T>,
    device: Device,
    stream: StreamId,
    transfer_kind: TransferKind,
}

impl<T: Copy + Default> DeviceVec<T> {
    /// Allocate `len` default elements, mapped onto `device`
    /// (`enter data map(alloc)`).
    pub fn new(device: &Device, len: usize) -> Self {
        Self::from_vec(device, vec![T::default(); len])
    }

    /// Adopt an existing host vector and map it (`enter data map(alloc)`).
    pub fn from_vec(device: &Device, host: Vec<T>) -> Self {
        let bytes = (host.len() * std::mem::size_of::<T>()) as u64;
        device.enter_data(bytes);
        Self {
            host,
            device: device.clone(),
            stream: StreamId(0),
            transfer_kind: TransferKind::Pageable,
        }
    }

    /// Use pinned host memory for subsequent updates (§III-E optimization).
    pub fn pinned(mut self) -> Self {
        self.transfer_kind = TransferKind::Pinned;
        self
    }

    /// Route updates through a specific stream.
    pub fn on_stream(mut self, stream: StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// Size of the mapped region in bytes.
    pub fn bytes(&self) -> u64 {
        (self.host.len() * std::mem::size_of::<T>()) as u64
    }

    /// `omp target update to(...)`: push the host copy to the device.
    pub fn update_to_device(&self) {
        self.device
            .transfer_h2d(self.stream, self.bytes(), self.transfer_kind);
    }

    /// `omp target update from(...)`: pull the device copy to the host.
    pub fn update_to_host(&self) {
        self.device
            .transfer_d2h(self.stream, self.bytes(), self.transfer_kind);
    }

    /// Push only a prefix of `n` elements (e.g. the occupation-number
    /// handshake, which is tiny compared to the wavefunctions).
    pub fn update_prefix_to_device(&self, n: usize) {
        let bytes = (n.min(self.host.len()) * std::mem::size_of::<T>()) as u64;
        self.device
            .transfer_h2d(self.stream, bytes, self.transfer_kind);
    }

    /// Pull only a prefix of `n` elements from the device.
    pub fn update_prefix_to_host(&self, n: usize) {
        let bytes = (n.min(self.host.len()) * std::mem::size_of::<T>()) as u64;
        self.device
            .transfer_d2h(self.stream, bytes, self.transfer_kind);
    }

    /// The device this vector is mapped on.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl<T> Deref for DeviceVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.host
    }
}

impl<T> DerefMut for DeviceVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.host
    }
}

impl<T> Drop for DeviceVec<T> {
    fn drop(&mut self) {
        let bytes = (self.host.len() * std::mem::size_of::<T>()) as u64;
        self.device.exit_data(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raii_map_unmap() {
        let d = Device::a100();
        {
            let v: DeviceVec<f64> = DeviceVec::new(&d, 128);
            assert_eq!(v.bytes(), 1024);
            assert_eq!(d.stats().resident_bytes, 1024);
            assert_eq!(d.stats().maps, 1);
        }
        assert_eq!(d.stats().resident_bytes, 0);
        assert_eq!(d.stats().unmaps, 1);
    }

    #[test]
    fn nested_lifetimes_stack_correctly() {
        let d = Device::a100();
        let a: DeviceVec<u8> = DeviceVec::new(&d, 100);
        {
            let _b: DeviceVec<u8> = DeviceVec::new(&d, 50);
            assert_eq!(d.stats().resident_bytes, 150);
        }
        assert_eq!(d.stats().resident_bytes, 100);
        drop(a);
        assert_eq!(d.stats().resident_bytes, 0);
        assert_eq!(d.stats().peak_resident_bytes, 150);
    }

    #[test]
    fn update_transfers_are_accounted() {
        let d = Device::a100();
        let v: DeviceVec<f32> = DeviceVec::new(&d, 256);
        v.update_to_device();
        v.update_to_host();
        let s = d.stats();
        assert_eq!(s.h2d_bytes, 1024);
        assert_eq!(s.d2h_bytes, 1024);
    }

    #[test]
    fn prefix_updates_move_fewer_bytes() {
        // The shadow-dynamics handshake: only occupations move, not psi.
        let d = Device::a100();
        let psi: DeviceVec<f64> = DeviceVec::new(&d, 1_000_000);
        psi.update_prefix_to_device(64); // 64 occupation numbers
        assert_eq!(d.stats().h2d_bytes, 64 * 8);
        assert!(d.stats().h2d_bytes < psi.bytes() / 1000);
    }

    #[test]
    fn pinned_updates_do_not_block_host() {
        let d = Device::a100();
        let v: DeviceVec<f64> = DeviceVec::new(&d, 1 << 20);
        let v = v.pinned();
        v.update_to_device();
        assert_eq!(d.host_clock(), 0.0); // async pinned copy
        assert!(d.synchronize() > 0.0);
    }

    #[test]
    fn host_access_via_deref() {
        let d = Device::a100();
        let mut v: DeviceVec<f64> = DeviceVec::new(&d, 4);
        v[2] = 3.5;
        assert_eq!(v[2], 3.5);
        assert_eq!(v.len(), 4);
    }
}
