//! Hierarchical execution: `teams distribute` + `parallel for simd`.
//!
//! Paper §III-C offloads the stencil with a two-level hierarchy: coarse
//! parallelism over (y-z plane x orbital-block) via `teams distribute
//! collapse(3)` and fine parallelism over orbitals via `parallel for simd`.
//! Here teams map to claim-loop tasks on the persistent `dcmesh-pool`
//! executor (each owning a disjoint chunk of the output — data-race freedom
//! by construction) and the inner level maps to a plain vectorizable loop,
//! which is exactly what `simd` asks of the compiler. Dispatch is
//! zero-allocation: launching a team grid costs a couple of atomic ops and
//! a condvar broadcast, the host-side analogue of the paper's cheap
//! repeated kernel launches over a resident device (§III-C).

/// `#pragma omp target teams distribute`: run `body(team_index)` for every
/// index in `0..num_teams`, in parallel on the persistent pool. One team
/// per claim, so imbalanced teams are stolen by whichever worker frees up.
pub fn teams_distribute<F>(num_teams: usize, body: F)
where
    F: Fn(usize) + Sync + Send,
{
    dcmesh_pool::global().for_each_index_coarse(0..num_teams, body);
}

/// `teams distribute` over mutable chunks: splits `data` into `num_teams`
/// nearly equal contiguous chunks and hands each (team_index, chunk) to
/// `body`. Chunk boundaries are computed the same way OpenMP distributes
/// iterations: `ceil(len / num_teams)` per team.
pub fn teams_distribute_mut<T, F>(data: &mut [T], num_teams: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    dcmesh_pool::global().for_each_chunk_mut(data, num_teams, body);
}

/// `#pragma omp parallel for simd` inside a team: a plain sequential loop
/// the compiler can vectorize. Kept as a named function so kernels written
/// against the hierarchy read like the paper's Algorithm 5.
#[inline(always)]
pub fn parallel_for<F>(range: std::ops::Range<usize>, mut body: F)
where
    F: FnMut(usize),
{
    for i in range {
        body(i);
    }
}

/// 3-way collapsed team index decoding, mirroring
/// `teams distribute collapse(3)` over loops of extent `(n0, n1, n2)`.
#[inline(always)]
pub fn decollapse3(t: usize, n1: usize, n2: usize) -> (usize, usize, usize) {
    let i2 = t % n2;
    let i1 = (t / n2) % n1;
    let i0 = t / (n1 * n2);
    (i0, i1, i2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn teams_cover_all_indices_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        teams_distribute(n, |t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunked_teams_partition_exactly() {
        let mut data = vec![0u64; 1003]; // non-divisible length
        teams_distribute_mut(&mut data, 16, |t, chunk| {
            for x in chunk.iter_mut() {
                *x = t as u64 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        // Chunks are contiguous and ordered.
        let mut last_team = 0;
        for &x in &data {
            assert!(x >= last_team, "chunks out of order");
            last_team = x;
        }
    }

    #[test]
    fn chunked_teams_handle_edge_cases() {
        let mut empty: Vec<u8> = vec![];
        teams_distribute_mut(&mut empty, 4, |_, _| panic!("no teams on empty data"));
        let mut tiny = vec![0u8; 2];
        teams_distribute_mut(&mut tiny, 8, |_, c| {
            for x in c.iter_mut() {
                *x = 1;
            }
        });
        assert_eq!(tiny, vec![1, 1]);
    }

    #[test]
    fn parallel_for_is_sequentially_consistent() {
        let mut acc = 0usize;
        parallel_for(0..10, |i| acc += i);
        assert_eq!(acc, 45);
    }

    #[test]
    fn decollapse_roundtrip() {
        let (n0, n1, n2) = (3, 5, 7);
        let mut seen = vec![false; n0 * n1 * n2];
        for t in 0..n0 * n1 * n2 {
            let (i0, i1, i2) = decollapse3(t, n1, n2);
            assert!(i0 < n0 && i1 < n1 && i2 < n2);
            let flat = i2 + n2 * (i1 + n1 * i0);
            assert_eq!(flat, t);
            seen[flat] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn teams_parallelism_produces_same_result_as_serial() {
        let n = 64 * 64;
        let mut parallel_out = vec![0.0f64; n];
        teams_distribute_mut(&mut parallel_out, 32, |t, chunk| {
            let chunk_len = n.div_ceil(32);
            let base = t * chunk_len;
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = ((base + i) as f64).sin();
            }
        });
        let serial_out: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert_eq!(parallel_out, serial_out);
    }
}
