//! # dcmesh-device
//!
//! A simulated GPU offload runtime standing in for OpenMP `target`
//! constructs on an Nvidia A100 (see DESIGN.md, substitution table).
//!
//! The paper's GPU port rests on four mechanisms, all reproduced here:
//!
//! 1. **Hierarchical offload** — `#pragma omp target teams distribute` over
//!    coarse work items with nested `parallel for simd` over fine items
//!    (paper §III-C). [`exec`] provides the same two-level structure on the
//!    persistent `dcmesh-pool` executor: teams are claim-loop tasks owning
//!    disjoint output, threads are the inner SIMD-style loop. Workers park
//!    between launches, so a team-grid dispatch costs atomics + a condvar
//!    broadcast instead of thread spawns.
//! 2. **Persistent device data** — `OMPallocator` RAII mapping (paper
//!    Alg. 6). [`alloc::DeviceVec`] calls `enter_data`/`exit_data` on
//!    construction/drop and keeps wavefunctions device-resident across the
//!    N_QD inner steps (shadow dynamics, §II).
//! 3. **Asynchronous streams** — `nowait` offload and CUDA streams with
//!    pinned-memory transfers (§III-E, Table I/II ablations). [`stream`]
//!    models per-stream timelines with a host clock, so synchronous and
//!    asynchronous launch policies produce different makespans.
//! 4. **A calibrated roofline timing model** — [`perf`] converts counted
//!    bytes and flops into modeled kernel/transfer durations for A100 and
//!    EPYC-7543 presets. Real computation always executes on the CPU; the
//!    model only supplies the *timeline*, clearly labeled "modeled" in every
//!    benchmark report.

pub mod alloc;
pub mod exec;
pub mod perf;
pub mod stream;

pub use alloc::DeviceVec;
pub use exec::{parallel_for, teams_distribute, teams_distribute_mut};
pub use perf::{HardwareSpec, KernelWork, Precision, TransferKind};
pub use stream::{Device, LaunchPolicy, NowaitScope, StreamId};
