//! Fault-injection matrix for the comm fabric: each injected fault must be
//! *detected* (typed error or named failed rank, never a hang) and, where
//! the fabric promises recovery (duplicates), recovered from.
//!
//! The fault plan and the metrics registry are process-global, so every
//! test that installs a plan runs under `fault::with_installed`, which
//! serializes them through the plan's test lock.

use dcmesh_ckpt::fault::{self, FaultPlan};
use dcmesh_comm::{CommError, NetworkModel, World};

/// The original hang: a rank panicking *before* its send left every peer
/// blocked forever in an unbounded `recv`. Now the survivor gets a typed
/// `RankFailed` within one poll interval and the world names the culprit.
#[test]
fn rank_panicking_before_send_is_detected_not_deadlocked() {
    let _guard = fault::test_lock();
    let err = World::try_run(2, NetworkModel::ideal(), |r| {
        if r.id() == 0 {
            panic!("rank 0 dies before sending");
        }
        // Rank 1 waits on a message rank 0 never sends.
        let got = r.try_recv(0, 7);
        assert_eq!(got, Err(CommError::RankFailed { rank: 0 }));
        got.is_err()
    })
    .expect_err("a failed rank must surface as a WorldError");
    assert!(
        err.failures.iter().any(|(rank, _)| *rank == 0),
        "rank 0 must be reported: {err}"
    );
    assert!(
        err.failures
            .iter()
            .any(|(_, reason)| reason.contains("dies before sending")),
        "panic message must be carried: {err}"
    );
}

/// A message the rank *did* send before dying must still deliver: queued
/// data outranks failure flags.
#[test]
fn message_sent_before_death_still_delivers() {
    let _guard = fault::test_lock();
    let err = World::try_run(2, NetworkModel::ideal(), |r| {
        if r.id() == 0 {
            r.send(1, 3, &[42.0]);
            panic!("rank 0 dies after sending");
        }
        let got = r.try_recv(0, 3).expect("sent message must deliver");
        assert_eq!(got, vec![42.0]);
        got[0]
    })
    .expect_err("rank 0 still failed overall");
    assert_eq!(err.failures.len(), 1, "only rank 0 failed: {err}");
}

#[test]
fn dropped_message_surfaces_as_timeout() {
    let plan = FaultPlan {
        seed: 1,
        drop_prob: 1.0,
        ..FaultPlan::none()
    };
    fault::with_installed(plan, || {
        let out = World::try_run(2, NetworkModel::ideal(), |r| {
            r.set_deadline_ms(50);
            if r.id() == 0 {
                r.try_send(1, 9, &[1.0]).expect("send itself succeeds");
                Ok(vec![])
            } else {
                r.try_recv(0, 9)
            }
        })
        .expect("timeout is an error value, not a rank failure");
        match &out[1] {
            Err(CommError::Timeout {
                from: 0,
                tag: 9,
                waited_ms,
            }) => {
                assert!(*waited_ms >= 50, "deadline honoured: {waited_ms}")
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    });
}

#[test]
fn delayed_message_arrives_with_extra_modeled_latency() {
    let plan = FaultPlan {
        seed: 2,
        delay_prob: 1.0,
        delay_s: 0.5,
        ..FaultPlan::none()
    };
    fault::with_installed(plan, || {
        let out = World::run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                r.send(1, 4, &[1.0]);
                0.0
            } else {
                r.recv(0, 4);
                r.time()
            }
        });
        assert!(
            out[1] >= 0.5,
            "receiver clock must include the injected delay, got {}",
            out[1]
        );
    });
}

/// Duplicates are injected with the sender's original sequence number;
/// the receiver's dedup window must absorb the copy so each payload is
/// seen exactly once and subsequent traffic is unaffected.
#[test]
fn duplicated_messages_are_deduplicated() {
    let plan = FaultPlan {
        seed: 3,
        dup_prob: 1.0,
        ..FaultPlan::none()
    };
    fault::with_installed(plan, || {
        dcmesh_obs::enable();
        dcmesh_obs::metrics::clear();
        let out = World::run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                for i in 0..8 {
                    r.send(1, i, &[i as f64]);
                }
                vec![]
            } else {
                (0..8).map(|i| r.recv(0, i)[0]).collect::<Vec<f64>>()
            }
        });
        dcmesh_obs::disable();
        assert_eq!(out[1], (0..8).map(|i| i as f64).collect::<Vec<f64>>());
        let snap = dcmesh_obs::metrics::snapshot();
        assert!(
            snap.counters.get("faults.injected").copied().unwrap_or(0) >= 8,
            "duplicate injections must be counted"
        );
        // The dup of the final message can still sit in the channel when
        // the world exits (nothing receives after it), so 7 of the 8
        // injected copies are guaranteed to have been drained and dropped.
        assert!(
            snap.counters.get("comm.dup_dropped").copied().unwrap_or(0) >= 7,
            "dedup window must drop the injected copies"
        );
    });
}

#[test]
fn killed_rank_is_named_in_world_error() {
    let plan = FaultPlan {
        kill_rank: Some((1, 2)),
        ..FaultPlan::none()
    };
    fault::with_installed(plan, || {
        let err = World::try_run(3, NetworkModel::ideal(), |r| {
            r.set_deadline_ms(200);
            // Three barriers; rank 1 dies at its third comm op.
            for _ in 0..3 {
                let mut v = [r.id() as f64];
                if r.try_allreduce_with(&mut v, |a, b| a + b).is_err() {
                    break;
                }
            }
            r.id()
        })
        .expect_err("the kill must surface");
        assert!(
            err.failures
                .iter()
                .any(|(rank, reason)| *rank == 1 && reason.contains("fault injection")),
            "rank 1's kill must be reported: {err}"
        );
    });
}

/// The dedup-window regression: a duplicate deferred beyond any bounded
/// receive-side window (the old implementation remembered only the last
/// 64 sequence numbers) used to be re-delivered as a fresh message. The
/// low-water-mark admission has no window to fall out of: a copy of
/// sequence 0 surfacing 70 posts later must still be dropped.
#[test]
fn duplicate_deferred_beyond_any_bounded_window_is_still_deduped() {
    let plan = FaultPlan {
        seed: 5,
        dup_prob: 1.0,
        dup_defer_msgs: 70,
        ..FaultPlan::none()
    };
    fault::with_installed(plan, || {
        dcmesh_obs::enable();
        dcmesh_obs::metrics::clear();
        let n = 80u64;
        let out = World::run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                for i in 0..n {
                    r.send(1, i, &[i as f64]);
                }
                vec![]
            } else {
                (0..n).map(|i| r.recv(0, i)[0]).collect::<Vec<f64>>()
            }
        });
        dcmesh_obs::disable();
        assert_eq!(
            out[1],
            (0..n).map(|i| i as f64).collect::<Vec<f64>>(),
            "every payload must deliver exactly once, in order"
        );
        // Duplicates of messages 0..=9 replay at posts 70..=79, each
        // queued ahead of that post's own message — so by the time tag 79
        // is received, all ten stale copies have been drained and must
        // have died at admission, not been re-delivered.
        let snap = dcmesh_obs::metrics::snapshot();
        assert!(
            snap.counters.get("comm.dup_dropped").copied().unwrap_or(0) >= 10,
            "stale duplicates must be dropped by the low-water mark: {:?}",
            snap.counters.get("comm.dup_dropped")
        );
    });
}

/// A rank dying *between* a peer's post and its wait: the receive is
/// outstanding when the sender is killed, so the failure must surface at
/// `try_wait` as a typed `RankFailed`, not a hang or a bare timeout.
#[test]
fn wait_on_rank_that_died_after_post_returns_rank_failed() {
    let plan = FaultPlan {
        kill_rank: Some((1, 0)),
        ..FaultPlan::none()
    };
    fault::with_installed(plan, || {
        let seen: std::sync::Mutex<Option<CommError>> = std::sync::Mutex::new(None);
        let err = World::try_run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                r.set_deadline_ms(2_000);
                let req = r.irecv(1, 8);
                let got = r.try_wait(req).expect_err("peer died before sending");
                *seen.lock().unwrap() = Some(got.clone());
                Err::<(), _>(got)
            } else {
                // First comm op trips the kill before anything is sent.
                let _ = r.try_send(0, 8, &[1.0]);
                Ok(())
            }
        })
        .expect_err("the killed rank must surface as a WorldError");
        assert!(
            err.failures
                .iter()
                .any(|(rank, reason)| *rank == 1 && reason.contains("fault injection")),
            "rank 1's kill must be reported: {err}"
        );
        assert_eq!(
            *seen.lock().unwrap(),
            Some(CommError::RankFailed { rank: 1 }),
            "the outstanding wait must resolve to RankFailed, not Timeout"
        );
    });
}

/// Deadlock-freedom at large halo sizes: 8 ranks on a ring exchange
/// ~1 MiB faces with both neighbours for several rounds, posting every
/// receive before waiting on any. Buffered sends plus posted receives
/// must complete on every round — no rendezvous cycle, no timeout.
#[test]
fn posted_receive_ring_exchange_is_deadlock_free_at_large_halos() {
    let _guard = fault::test_lock();
    let p = 8usize;
    let face = 131_072; // 1 MiB of f64 per face
    let out = World::run(p, NetworkModel::slingshot11(), |r| {
        let me = r.id();
        let next = (me + 1) % p;
        let prev = (me + p - 1) % p;
        let payload = vec![me as f64; face];
        let mut checked = 0usize;
        for round in 0..3u64 {
            let tag_fwd = 2 * round;
            let tag_bwd = 2 * round + 1;
            r.isend(next, tag_fwd, &payload).wait();
            r.isend(prev, tag_bwd, &payload).wait();
            let from_prev = r.irecv(prev, tag_fwd);
            let from_next = r.irecv(next, tag_bwd);
            r.advance(1e-3);
            let got_prev = r.wait(from_prev);
            let got_next = r.wait(from_next);
            for (src, got) in [(prev, got_prev), (next, got_next)] {
                assert_eq!(got.len(), face);
                assert!(got.iter().all(|&v| v == src as f64));
                checked += 1;
            }
        }
        checked
    });
    assert!(
        out.iter().all(|&c| c == 6),
        "every face must arrive: {out:?}"
    );
}

/// The deadline itself: a receive on a tag nobody ever sends must come
/// back as `Timeout` (bounded), not hang.
#[test]
fn recv_on_silent_peer_times_out() {
    let _guard = fault::test_lock();
    let out = World::try_run(2, NetworkModel::ideal(), |r| {
        if r.id() == 1 {
            r.set_deadline_ms(30);
            r.try_recv(0, 99)
        } else {
            Ok(vec![])
        }
    })
    .expect("timeouts are values");
    assert!(
        matches!(out[1], Err(CommError::Timeout { .. })),
        "got {:?}",
        out[1]
    );
}
