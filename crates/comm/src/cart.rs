//! Cartesian process topology — `MPI_Cart_create` for the DC domain grid.
//!
//! QXMD maps MPI ranks onto the 3D divide-and-conquer domain grid; halo
//! exchanges go to the six face neighbours with periodic wraparound. This
//! mirrors the hybrid space-band decomposition the paper's LDC-DFT uses.

/// A periodic 3D Cartesian layout of `dims[0] * dims[1] * dims[2]` ranks.
#[derive(Clone, Debug)]
pub struct Cart3d {
    /// Ranks per axis.
    pub dims: [usize; 3],
}

/// The six face-neighbour directions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Face {
    /// -x neighbour.
    XLo,
    /// +x neighbour.
    XHi,
    /// -y neighbour.
    YLo,
    /// +y neighbour.
    YHi,
    /// -z neighbour.
    ZLo,
    /// +z neighbour.
    ZHi,
}

impl Face {
    /// All six faces, paired lo/hi per axis.
    pub fn all() -> [Face; 6] {
        [
            Face::XLo,
            Face::XHi,
            Face::YLo,
            Face::YHi,
            Face::ZLo,
            Face::ZHi,
        ]
    }

    /// The opposite face (what the neighbour calls this exchange).
    pub fn opposite(self) -> Face {
        match self {
            Face::XLo => Face::XHi,
            Face::XHi => Face::XLo,
            Face::YLo => Face::YHi,
            Face::YHi => Face::YLo,
            Face::ZLo => Face::ZHi,
            Face::ZHi => Face::ZLo,
        }
    }

    /// Axis (0..3) and direction (-1 or +1).
    pub fn axis_dir(self) -> (usize, isize) {
        match self {
            Face::XLo => (0, -1),
            Face::XHi => (0, 1),
            Face::YLo => (1, -1),
            Face::YHi => (1, 1),
            Face::ZLo => (2, -1),
            Face::ZHi => (2, 1),
        }
    }
}

impl Cart3d {
    /// New topology; total rank count is the product of `dims`.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d > 0), "dims must be positive");
        Self { dims }
    }

    /// Factor `nranks` into a near-cubic 3D grid (row-major best effort).
    pub fn balanced(nranks: usize) -> Self {
        assert!(nranks > 0);
        let mut best = [nranks, 1, 1];
        let mut best_surface = usize::MAX;
        for a in 1..=nranks {
            if !nranks.is_multiple_of(a) {
                continue;
            }
            let rest = nranks / a;
            for b in 1..=rest {
                if !rest.is_multiple_of(b) {
                    continue;
                }
                let c = rest / b;
                let surface = a * b + b * c + a * c;
                if surface < best_surface {
                    best_surface = surface;
                    best = [a, b, c];
                }
            }
        }
        Self::new(best)
    }

    /// Total ranks.
    pub fn len(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// True if the topology is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank id of Cartesian coordinates (z fastest, matching the mesh
    /// index convention).
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        c[2] + self.dims[2] * (c[1] + self.dims[1] * c[0])
    }

    /// Cartesian coordinates of a rank id.
    pub fn coords_of(&self, rank: usize) -> [usize; 3] {
        debug_assert!(rank < self.len());
        let z = rank % self.dims[2];
        let y = (rank / self.dims[2]) % self.dims[1];
        let x = rank / (self.dims[2] * self.dims[1]);
        [x, y, z]
    }

    /// Rank of the periodic neighbour across `face`.
    pub fn neighbor(&self, rank: usize, face: Face) -> usize {
        let mut c = self.coords_of(rank);
        let (ax, dir) = face.axis_dir();
        let n = self.dims[ax] as isize;
        c[ax] = ((c[ax] as isize + dir + n) % n) as usize;
        self.rank_of(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::World;
    use crate::network::NetworkModel;

    #[test]
    fn rank_coords_roundtrip() {
        let cart = Cart3d::new([3, 4, 5]);
        for r in 0..cart.len() {
            assert_eq!(cart.rank_of(cart.coords_of(r)), r);
        }
        assert_eq!(cart.len(), 60);
    }

    #[test]
    fn neighbors_are_mutual() {
        let cart = Cart3d::new([2, 3, 2]);
        for r in 0..cart.len() {
            for face in Face::all() {
                let n = cart.neighbor(r, face);
                assert_eq!(
                    cart.neighbor(n, face.opposite()),
                    r,
                    "rank {r} face {face:?}"
                );
            }
        }
    }

    #[test]
    fn periodic_wraparound() {
        let cart = Cart3d::new([4, 1, 1]);
        assert_eq!(cart.neighbor(0, Face::XLo), 3);
        assert_eq!(cart.neighbor(3, Face::XHi), 0);
        // Singleton axes wrap to self.
        assert_eq!(cart.neighbor(0, Face::YLo), 0);
    }

    #[test]
    fn balanced_factorization_minimizes_surface() {
        assert_eq!(Cart3d::balanced(8).dims, [2, 2, 2]);
        assert_eq!(Cart3d::balanced(64).dims, [4, 4, 4]);
        let c = Cart3d::balanced(12);
        assert_eq!(c.len(), 12);
        // Near-cubic: no dimension more than 4x another.
        let mx = *c.dims.iter().max().unwrap();
        let mn = *c.dims.iter().min().unwrap();
        assert!(mx <= 4 * mn, "unbalanced {:?}", c.dims);
    }

    #[test]
    fn halo_exchange_over_the_topology() {
        // Each rank sends its id to all six neighbours and checks what
        // arrives — the DC halo pattern over the simulated fabric.
        let cart = Cart3d::new([2, 2, 2]);
        let n = cart.len();
        let cart2 = cart.clone();
        let out = World::run(n, NetworkModel::slingshot11(), move |rank| {
            let me = rank.id();
            for (f, face) in Face::all().iter().enumerate() {
                let to = cart2.neighbor(me, *face);
                rank.send(to, f as u64, &[me as f64]);
            }
            let mut got = Vec::new();
            for (f, face) in Face::all().iter().enumerate() {
                // The message arriving across `face` was sent by the
                // neighbour using the opposite face's tag.
                let from = cart2.neighbor(me, *face);
                let tag = Face::all()
                    .iter()
                    .position(|x| *x == face.opposite())
                    .unwrap();
                let _ = f;
                let v = rank.recv(from, tag as u64);
                got.push(v[0] as usize);
            }
            got
        });
        for (me, got) in out.iter().enumerate() {
            for (f, face) in Face::all().iter().enumerate() {
                assert_eq!(got[f], cart.neighbor(me, *face), "rank {me} face {face:?}");
            }
        }
    }
}
