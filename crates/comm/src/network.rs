//! Analytic network model of the Polaris Slingshot-11 dragonfly fabric.
//!
//! Paper §IV: "Polaris uses Slingshot 11 with a node interconnect bandwidth
//! of 200 GB/s" on "high radix 64-port switches arranged in dragonfly
//! topology". Four ranks share a node (one per GPU), so the per-rank share
//! of the injection bandwidth is ~50 GB/s. Collectives are modeled as
//! binomial trees: `ceil(log2 P)` rounds of (latency + bytes/bandwidth) —
//! exactly the `beta * log P` term in the paper's parallel-efficiency
//! analysis (§IV-A).

/// Latency/bandwidth description of the interconnect.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// One-way small-message latency, seconds (off-node / MPI over the
    /// fabric).
    pub latency: f64,
    /// Per-rank injection bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Ranks per node (on-node messages use shared memory, modeled faster).
    pub ranks_per_node: usize,
    /// On-node small-message latency, seconds (shared memory/NVLink — an
    /// on-node hop never pays the fabric's injection latency).
    pub on_node_latency: f64,
    /// On-node bandwidth (NVLink/shared memory), bytes/second.
    pub on_node_bandwidth: f64,
}

impl NetworkModel {
    /// Polaris Slingshot-11: ~2 us MPI latency, 200 GB/s per node shared by
    /// 4 ranks, 600 GB/s NVLink on-node with ~0.4 us shared-memory latency.
    pub fn slingshot11() -> Self {
        Self {
            latency: 2.0e-6,
            bandwidth: 50.0e9,
            ranks_per_node: 4,
            on_node_latency: 4.0e-7,
            on_node_bandwidth: 600.0e9,
        }
    }

    /// An ideal zero-cost network (for efficiency-model ablations).
    pub fn ideal() -> Self {
        Self {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            ranks_per_node: 4,
            on_node_latency: 0.0,
            on_node_bandwidth: f64::INFINITY,
        }
    }

    /// Time for one hop of `bytes` at the given latency/bandwidth pair.
    fn hop_time(latency: f64, bandwidth: f64, bytes: usize) -> f64 {
        if bandwidth.is_infinite() {
            latency
        } else {
            latency + bytes as f64 / bandwidth
        }
    }

    /// Point-to-point time for `bytes` between `src` and `dst` ranks.
    /// Ranks on the same node pay the on-node latency and bandwidth
    /// (shared memory/NVLink), not the fabric's.
    pub fn p2p_time(&self, bytes: usize, src: usize, dst: usize) -> f64 {
        if src == dst {
            return 0.0;
        }
        let same_node = src / self.ranks_per_node == dst / self.ranks_per_node;
        if same_node {
            Self::hop_time(self.on_node_latency, self.on_node_bandwidth, bytes)
        } else {
            Self::hop_time(self.latency, self.bandwidth, bytes)
        }
    }

    /// Binomial-tree collective time over `p` ranks for a payload of
    /// `bytes` (allreduce, broadcast, barrier with bytes = 0).
    ///
    /// Rounds are node-aware: the first `ceil(log2(min(p, ranks_per_node)))`
    /// doubling rounds stay within a node (shared-memory pricing); only the
    /// remaining rounds cross the fabric. A communicator that fits on one
    /// node never pays off-node injection latency at all.
    pub fn tree_collective_time(&self, bytes: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let total_rounds = (p as f64).log2().ceil();
        let on_rounds = (p.min(self.ranks_per_node.max(1)) as f64).log2().ceil();
        let off_rounds = (total_rounds - on_rounds).max(0.0);
        on_rounds * Self::hop_time(self.on_node_latency, self.on_node_bandwidth, bytes)
            + off_rounds * Self::hop_time(self.latency, self.bandwidth, bytes)
    }

    /// Gather/scatter time: root receives (p-1) messages, pipelined; modeled
    /// as latency * log2(p) + total bytes / bandwidth.
    pub fn gather_time(&self, bytes_per_rank: usize, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let total = bytes_per_rank.saturating_mul(p - 1);
        let bw_term = if self.bandwidth.is_infinite() {
            0.0
        } else {
            total as f64 / self.bandwidth
        };
        self.latency * (p as f64).log2().ceil() + bw_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_messages_are_free() {
        let n = NetworkModel::slingshot11();
        assert_eq!(n.p2p_time(1 << 20, 3, 3), 0.0);
    }

    #[test]
    fn on_node_faster_than_off_node() {
        let n = NetworkModel::slingshot11();
        let on = n.p2p_time(1 << 24, 0, 1); // ranks 0,1 share node 0
        let off = n.p2p_time(1 << 24, 0, 5); // rank 5 is node 1
        assert!(on < off, "on={on} off={off}");
        // Pin the latency term too: a zero-byte on-node hop costs exactly
        // the shared-memory latency, not the 2 us fabric injection.
        assert_eq!(n.p2p_time(0, 0, 1), n.on_node_latency);
        assert_eq!(n.p2p_time(0, 0, 5), n.latency);
        assert!(n.on_node_latency < n.latency);
    }

    #[test]
    fn collective_time_grows_logarithmically() {
        // Uniform fabric (one rank per node) so every round is priced the
        // same and the pure log2 round counts show through exactly.
        let n = NetworkModel {
            latency: 2.0e-6,
            bandwidth: 50.0e9,
            ranks_per_node: 1,
            on_node_latency: 2.0e-6,
            on_node_bandwidth: 50.0e9,
        };
        let t4 = n.tree_collective_time(1024, 4);
        let t16 = n.tree_collective_time(1024, 16);
        let t256 = n.tree_collective_time(1024, 256);
        // log2: 2, 4, 8 rounds.
        assert!((t16 / t4 - 2.0).abs() < 1e-9);
        assert!((t256 / t4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_node_allreduce_beats_two_node() {
        // Same 4-rank communicator: packed on one node (2 shared-memory
        // rounds) vs split across two nodes (1 on-node + 1 fabric round).
        let single = NetworkModel::slingshot11(); // ranks_per_node: 4
        let two_node = NetworkModel {
            ranks_per_node: 2,
            ..NetworkModel::slingshot11()
        };
        for bytes in [0usize, 1024, 1 << 20] {
            let t_single = single.tree_collective_time(bytes, 4);
            let t_two = two_node.tree_collective_time(bytes, 4);
            assert!(
                t_single < t_two,
                "bytes={bytes}: single-node {t_single} vs two-node {t_two}"
            );
        }
    }

    #[test]
    fn single_rank_collectives_free() {
        let n = NetworkModel::slingshot11();
        assert_eq!(n.tree_collective_time(1 << 20, 1), 0.0);
        assert_eq!(n.gather_time(1 << 20, 1), 0.0);
    }

    #[test]
    fn ideal_network_latency_free() {
        let n = NetworkModel::ideal();
        assert_eq!(n.tree_collective_time(1 << 30, 1024), 0.0);
        assert_eq!(n.p2p_time(1 << 30, 0, 999), 0.0);
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        let n = NetworkModel::slingshot11();
        let small = n.tree_collective_time(0, 64);
        let big = n.tree_collective_time(1 << 30, 64);
        assert!(big > small);
        // 2 on-node rounds x 1 GiB / 600 GB/s + 4 fabric rounds x
        // 1 GiB / 50 GB/s ~ 0.089 s dominates latency.
        assert!(big > 0.05 && big < 0.15, "big={big}");
    }
}
