//! # dcmesh-comm
//!
//! A message-passing substrate standing in for MPI on ALCF Polaris.
//!
//! The paper runs DC-MESH on up to 1,024 MPI ranks over a Slingshot-11
//! dragonfly fabric. This crate substitutes (DESIGN.md):
//!
//! * [`comm::World`] — ranks as OS threads with selective point-to-point
//!   receive, barriers, reductions, broadcasts and gathers (the collective
//!   set QXMD's global-local SCF actually uses), and
//! * [`network::NetworkModel`] — an analytic latency/bandwidth model of the
//!   Slingshot dragonfly (tree collectives cost `ceil(log2 P)` rounds),
//!   driving per-rank **simulated clocks** so scaling experiments measure
//!   real computation but model communication at full machine scale.
//!
//! Every collective synchronizes the participants' simulated clocks exactly
//! the way a real bulk-synchronous code would: the operation completes at
//! `max(entry clocks) + modeled collective time`.

pub mod cart;
pub mod comm;
pub mod network;

pub use cart::{Cart3d, Face};
pub use comm::{CommError, Rank, World, WorldError};
pub use network::NetworkModel;
