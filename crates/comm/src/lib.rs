//! # dcmesh-comm
//!
//! A message-passing substrate standing in for MPI on ALCF Polaris.
//!
//! The paper runs DC-MESH on up to 1,024 MPI ranks over a Slingshot-11
//! dragonfly fabric. This crate substitutes (DESIGN.md):
//!
//! * [`comm::World`] — ranks as OS threads with selective point-to-point
//!   receive, barriers, reductions, broadcasts and gathers (the collective
//!   set QXMD's global-local SCF actually uses), and
//! * [`network::NetworkModel`] — an analytic latency/bandwidth model of the
//!   Slingshot dragonfly (tree collectives cost `ceil(log2 P)` rounds,
//!   priced node-aware: on-node rounds ride shared memory/NVLink),
//!   driving per-rank **simulated clocks** so scaling experiments measure
//!   real computation but model communication at full machine scale.
//!
//! Every collective synchronizes the participants' simulated clocks exactly
//! the way a real bulk-synchronous code would: the operation completes at
//! `max(entry clocks) + modeled collective time`.
//!
//! Point-to-point traffic additionally has a nonblocking face —
//! [`comm::Rank::isend`] / [`comm::Rank::irecv`] returning typed request
//! handles settled at [`comm::Rank::wait`] — with per-rank
//! [`comm::OverlapStats`] accounting how much modeled transfer time was
//! hidden behind compute (the paper's Alg. 5 `nowait` discipline, applied
//! at the MPI layer; see DESIGN.md's substitution table).

pub mod cart;
pub mod comm;
pub mod network;

pub use cart::{Cart3d, Face};
pub use comm::{CommError, OverlapStats, Rank, RecvRequest, SendRequest, World, WorldError};
pub use network::NetworkModel;
