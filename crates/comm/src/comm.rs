//! Rank-per-thread message passing with simulated clocks.
//!
//! QXMD's global-local SCF needs: point-to-point exchange of domain
//! boundaries, allreduce of the global density/energy, broadcast of the
//! global potential, and gathers for diagnostics. Each rank carries a
//! simulated clock: `advance()` adds *measured* local compute time, and
//! every communication operation adds *modeled* network time from
//! [`NetworkModel`], so a laptop reproduces full-machine timing structure.
//!
//! ## Nonblocking API and overlap accounting
//!
//! The paper's multi-node headroom (§IV) comes from hiding halo exchange
//! behind per-domain compute — the same async `nowait` discipline its
//! Alg. 5 applies on-device. The fabric therefore exposes MPI-style
//! requests: [`Rank::isend`] / [`Rank::irecv`] post an operation and
//! return a typed handle ([`SendRequest`] / [`RecvRequest`]); the payload
//! is claimed at [`Rank::wait`] / [`Rank::wait_all`], probed with
//! [`Rank::test`]. The simulated clock makes the overlap *measurable*: a
//! receive posted at clock `t0` whose message arrives at `t0 + L` and is
//! waited on after `C` seconds of compute costs `max(C, L)`, not `C + L` —
//! the blocking [`Rank::recv`] (post and wait at the same instant)
//! degenerates to the sum. Per-rank [`OverlapStats`] split every modeled
//! transfer into a hidden part (behind compute) and a stall part (exposed
//! at the wait), and feed the `comm.wait_ns` counter.
//!
//! ## Transport
//!
//! Each rank owns a mailbox — a queue guarded by the explorer-aware
//! `dcmesh_analyze::sync` mutex/condvar pair. Outside a schedule
//! exploration those delegate to `std` after one relaxed load; under
//! [`dcmesh_analyze::sched::explore`] every mailbox operation becomes a
//! scheduling point, so the *real* request lifecycle (post → fault
//! resolution → wait) is model-checked exhaustively, the way the pool's
//! dispatch protocol is. [`World::endpoints`] hands out the connected
//! [`Rank`] endpoints without spawning threads, so a model check can own
//! thread creation. Receive deadlines are a wall-clock escape hatch and
//! never fire under exploration: a receive that can block forever there
//! surfaces as a detected deadlock, not a timeout.
//!
//! ## Failure handling
//!
//! Production campaigns lose ranks, so the fabric must fail loudly rather
//! than hang. Three mechanisms work together:
//!
//! * Every rank thread runs under `catch_unwind`; a panic marks the rank
//!   failed in the shared world control block, and [`World::try_run`]
//!   reports *which* rank died (with its panic message) instead of
//!   deadlocking the survivors.
//! * Receives are deadline-bounded: [`Rank::try_recv`] polls in short
//!   chunks, checking the failed-rank flags between chunks, and returns a
//!   typed [`CommError`] on peer failure or deadline expiry
//!   (`DCMESH_COMM_DEADLINE_MS`, default 5000). Messages a rank managed to
//!   send before dying still deliver — queued data outranks failure flags.
//!   A rank that dies *between* a posted receive and its wait surfaces as
//!   [`CommError::RankFailed`] from the wait.
//! * Messages carry per-sender sequence numbers; receivers drop duplicates
//!   by a low-water-mark rule (per-sender delivery is FIFO, so any arrival
//!   at or below the sender's admission high-water mark is a replayed
//!   copy). Unlike a bounded recent-sequence window, the rule is immune to
//!   duplicates deferred arbitrarily far past the original — the
//!   adversarial case `dcmesh-ckpt`'s `dup=P@N` fault injects.
//!
//! Fault injection hooks (drop/delay/duplicate/kill) live on the send path
//! but *resolve at the wait*, like real network faults: a dropped message
//! is a receive deadline, a delay moves the modeled arrival clock, a
//! duplicate is absorbed at admission time. The hooks cost one relaxed
//! atomic load when no plan is installed.

use crate::network::NetworkModel;
use dcmesh_analyze::sync::{Condvar, Mutex};
use dcmesh_ckpt::fault::{self, MessageAction};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message between ranks: payload of f64 words plus the sender's clock.
/// `logical_bytes` lets scaling drivers model full-size transfers without
/// materializing the data. `seq` is unique per sender and drives duplicate
/// suppression on the receive side.
#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u64,
    seq: u64,
    payload: Vec<f64>,
    clock: f64,
    logical_bytes: Option<u64>,
}

/// Internal tag namespace for collectives (user tags must stay below).
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

/// Receive poll granularity. The deadline is accumulated from these
/// chunks rather than read off a wall clock (kernel crates are
/// wall-clock-free; see the lint regime).
const POLL_MS: u64 = 1;

/// Default receive deadline when `DCMESH_COMM_DEADLINE_MS` is unset.
const DEFAULT_DEADLINE_MS: u64 = 5000;

/// A typed communication failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank died (panicked) while this rank was communicating.
    RankFailed {
        /// The rank that failed.
        rank: usize,
    },
    /// No matching message arrived within the receive deadline.
    Timeout {
        /// Sender the receive was waiting on.
        from: usize,
        /// Tag the receive was waiting on.
        tag: u64,
        /// How long the receive polled before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// The channel closed without a recorded rank failure.
    Disconnected,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout {
                from,
                tag,
                waited_ms,
            } => write!(
                f,
                "receive from rank {from} (tag {tag}) timed out after {waited_ms} ms"
            ),
            CommError::Disconnected => write!(f, "communication channel disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

/// One or more ranks failed during a [`World::try_run`].
#[derive(Clone, Debug)]
pub struct WorldError {
    /// `(rank, panic message)` for every failed rank, ordered by rank id.
    pub failures: Vec<(usize, String)>,
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rank(s) failed:", self.failures.len())?;
        for (rank, reason) in &self.failures {
            write!(f, "\n  rank {rank}: {reason}")?;
        }
        Ok(())
    }
}

impl std::error::Error for WorldError {}

// ---------------------------------------------------------------------------
// Mailbox transport
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MailboxState {
    queue: VecDeque<Message>,
    closed: bool,
}

/// One rank's inbox: a queue on the explorer-aware mutex/condvar pair, so
/// under `sched::explore` every push/drain/wait is a scheduling point and
/// a receive with no matching send is a *detected deadlock*.
#[derive(Debug, Default)]
struct Mailbox {
    state: Mutex<MailboxState>,
    available: Condvar,
}

/// What a bounded wait on a mailbox observed.
enum WaitOutcome {
    /// Messages are queued (or the wait should simply be retried).
    Ready,
    /// The timeout elapsed with the queue still empty.
    TimedOut,
    /// The receiver endpoint was dropped and the queue is empty.
    Closed,
}

impl Mailbox {
    /// Enqueue one message; `Err` if the owning endpoint was dropped.
    fn push(&self, msg: Message) -> Result<(), ()> {
        {
            let mut st = self.state.lock();
            if st.closed {
                return Err(());
            }
            st.queue.push_back(msg);
        }
        self.available.notify_one();
        Ok(())
    }

    /// Mark the owning endpoint gone; pending messages stay poppable.
    fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Take everything currently queued (per-sender FIFO order preserved).
    fn drain(&self) -> Vec<Message> {
        let mut st = self.state.lock();
        st.queue.drain(..).collect()
    }

    /// Block until a message is queued, the box closes, or `timeout`
    /// elapses. Spurious wakeups report [`WaitOutcome::Ready`]; callers
    /// loop around a drain anyway. Under schedule exploration the timeout
    /// never fires (see [`dcmesh_analyze::sync::Condvar::wait_timeout`]).
    fn wait_nonempty(&self, timeout: Duration) -> WaitOutcome {
        let st = self.state.lock();
        if !st.queue.is_empty() {
            return WaitOutcome::Ready;
        }
        if st.closed {
            return WaitOutcome::Closed;
        }
        let (st, timed_out) = self.available.wait_timeout(st, timeout);
        if !st.queue.is_empty() {
            WaitOutcome::Ready
        } else if st.closed {
            WaitOutcome::Closed
        } else if timed_out {
            WaitOutcome::TimedOut
        } else {
            WaitOutcome::Ready
        }
    }
}

/// Shared world state: which ranks have failed, and why. Ranks poll the
/// flags between receive chunks, so a dead peer surfaces as a typed error
/// within one poll interval instead of a deadlock.
#[derive(Debug)]
struct WorldCtrl {
    failed: Vec<AtomicBool>,
    reasons: std::sync::Mutex<Vec<Option<String>>>,
}

impl WorldCtrl {
    fn new(nranks: usize) -> Self {
        Self {
            failed: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
            reasons: std::sync::Mutex::new(vec![None; nranks]),
        }
    }

    fn mark_failed(&self, rank: usize, reason: String) {
        {
            let mut reasons = self.reasons.lock().unwrap_or_else(|e| e.into_inner());
            reasons[rank] = Some(reason);
        }
        // Flag set after the reason so a reader that sees the flag finds
        // the message.
        self.failed[rank].store(true, Ordering::Release);
    }

    fn first_failed(&self) -> Option<usize> {
        self.failed.iter().position(|f| f.load(Ordering::Acquire))
    }

    fn failures(&self) -> Vec<(usize, String)> {
        let reasons = self.reasons.lock().unwrap_or_else(|e| e.into_inner());
        reasons
            .iter()
            .enumerate()
            .filter_map(|(rank, r)| r.as_ref().map(|s| (rank, s.clone())))
            .collect()
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn deadline_from_env() -> u64 {
    std::env::var("DCMESH_COMM_DEADLINE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_DEADLINE_MS)
}

/// The communicator world; spawns one OS thread per rank.
#[derive(Debug)]
pub struct World;

impl World {
    /// Run `f` on `nranks` ranks in parallel and return each rank's result,
    /// ordered by rank id. Panics in any rank propagate.
    ///
    /// ```
    /// use dcmesh_comm::{NetworkModel, World};
    /// let sums = World::run(4, NetworkModel::ideal(), |rank| {
    ///     rank.allreduce_sum_scalar(rank.id() as f64)
    /// });
    /// assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
    /// ```
    pub fn run<T, F>(nranks: usize, net: NetworkModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        Self::try_run(nranks, net, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the `nranks` connected endpoints of a world *without*
    /// spawning threads. Each returned [`Rank`] is `Send` and owns its
    /// transport, so the caller controls thread creation — the hook the
    /// `analyze::sched` model checks use to run the real request
    /// machinery under `dcmesh_analyze::sync::spawn_named`.
    pub fn endpoints(nranks: usize, net: NetworkModel) -> Vec<Rank> {
        assert!(nranks >= 1, "need at least one rank");
        let mailboxes: Vec<Arc<Mailbox>> =
            (0..nranks).map(|_| Arc::new(Mailbox::default())).collect();
        let ctrl = Arc::new(WorldCtrl::new(nranks));
        let deadline_ms = deadline_from_env();
        (0..nranks)
            .map(|id| Rank {
                id,
                size: nranks,
                inbox: Arc::clone(&mailboxes[id]),
                outboxes: mailboxes.clone(),
                pending: Vec::new(),
                clock: 0.0,
                net: net.clone(),
                collective_seq: 0,
                ctrl: Arc::clone(&ctrl),
                deadline_ms,
                send_seq: Cell::new(0),
                comm_ops: Cell::new(0),
                dedup_floor: vec![0; nranks],
                dup_stash: RefCell::new(Vec::new()),
                overlap: OverlapStats::default(),
                p2p_names: vec![None; nranks],
            })
            .collect()
    }

    /// Like [`World::run`], but rank failures are reported instead of
    /// propagated: if any rank panics (including a comm failure escalated
    /// to a panic by the legacy API), the returned [`WorldError`] names
    /// every failed rank with its panic message. Surviving ranks observe
    /// the failure as a typed [`CommError`] from their next receive rather
    /// than deadlocking.
    pub fn try_run<T, F>(nranks: usize, net: NetworkModel, f: F) -> Result<Vec<T>, WorldError>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        let ranks = Self::endpoints(nranks, net);
        let ctrl = Arc::clone(&ranks[0].ctrl);
        let f_ref = &f;
        let results: Vec<Option<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranks
                .into_iter()
                .map(|mut rank| {
                    let ctrl = Arc::clone(&ctrl);
                    scope.spawn(move || {
                        let id = rank.id;
                        match catch_unwind(AssertUnwindSafe(|| f_ref(&mut rank))) {
                            Ok(t) => Some(t),
                            Err(payload) => {
                                // The failure flag is published before
                                // `rank` drops (closing its inbox), so
                                // peers that see the closed box also see
                                // which rank died.
                                ctrl.mark_failed(id, panic_reason(payload.as_ref()));
                                None
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread join"))
                .collect()
        });
        let failures = ctrl.failures();
        if failures.is_empty() {
            Ok(results
                .into_iter()
                .map(|t| t.expect("rank with no failure returns a value"))
                .collect())
        } else {
            Err(WorldError { failures })
        }
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Handle for a posted send. Sends are eagerly buffered (the mailbox is
/// unbounded), so the request is complete the moment it is posted; the
/// handle exists so send/receive code reads symmetrically and so a future
/// rendezvous transport has a place to block.
#[derive(Debug)]
#[must_use = "a send request should be waited on (wait is free for buffered sends)"]
pub struct SendRequest {
    to: usize,
    tag: u64,
}

impl SendRequest {
    /// Destination rank.
    pub fn peer(&self) -> usize {
        self.to
    }

    /// Message tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Complete the send. Trivial for the buffered transport.
    pub fn wait(self) {}

    /// Whether the send has completed (always, for buffered sends).
    pub fn test(&self) -> bool {
        true
    }
}

#[derive(Debug)]
enum RecvState {
    /// No matching message claimed yet.
    Pending,
    /// A matching message was claimed by [`Rank::test`]; the clock
    /// settlement still happens at the wait.
    Done(Message),
}

/// Handle for a posted receive. Created by [`Rank::irecv`] /
/// [`Rank::irecv_modeled`]; consumed by [`Rank::wait`] and friends, which
/// perform the modeled-clock settlement. The post captures the rank's
/// clock, so the settlement can split the transfer into hidden and
/// stalled time (see [`OverlapStats`]).
#[derive(Debug)]
#[must_use = "an unwaited receive leaves its message (and modeled time) unclaimed"]
pub struct RecvRequest {
    from: usize,
    tag: u64,
    posted_clock: f64,
    modeled: bool,
    state: RecvState,
}

impl RecvRequest {
    /// Source rank this receive is matched against.
    pub fn peer(&self) -> usize {
        self.from
    }

    /// Tag this receive is matched against.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Simulated clock at which the receive was posted.
    pub fn posted_clock(&self) -> f64 {
        self.posted_clock
    }
}

/// Per-rank accounting of how much modeled communication time was hidden
/// behind compute versus exposed as a stall at a wait point.
///
/// For one receive posted at clock `t_post`, waited on at `t_wait`, with
/// modeled arrival `t_arr` (sender clock + p2p time):
///
/// * `span_s` accumulates `max(0, t_arr - t_post)` — the transfer's
///   in-flight window,
/// * `hidden_s` accumulates `max(0, min(t_wait, t_arr) - t_post)` — the
///   part of that window the rank spent computing,
/// * `wait_s` accumulates `max(0, t_arr - t_wait)` — the exposed stall
///   (what `MPI_Wait` would block for).
///
/// Blocking receives have `t_post == t_wait`, so they hide nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OverlapStats {
    /// Receives settled (blocking and nonblocking).
    pub receives: u64,
    /// Total exposed stall time at wait points, seconds.
    pub wait_s: f64,
    /// Total in-flight transfer window, seconds.
    pub span_s: f64,
    /// Portion of the transfer window hidden behind compute, seconds.
    pub hidden_s: f64,
}

impl OverlapStats {
    /// Fraction of the modeled transfer window hidden behind compute, in
    /// `[0, 1]`; zero when nothing was in flight.
    pub fn overlap_ratio(&self) -> f64 {
        if self.span_s > 0.0 {
            (self.hidden_s / self.span_s).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Accumulate another rank's stats (for world-level aggregation).
    pub fn merge(&mut self, other: &OverlapStats) {
        self.receives += other.receives;
        self.wait_s += other.wait_s;
        self.span_s += other.span_s;
        self.hidden_s += other.hidden_s;
    }
}

/// A duplicate copy the fault plan asked to replay later: it is pushed to
/// `to` once the owning rank has posted `remaining` further messages.
#[derive(Debug)]
struct DeferredDup {
    to: usize,
    remaining: u64,
    msg: Message,
}

/// One rank's endpoint: identity, point-to-point plumbing, collectives,
/// and the simulated clock.
pub struct Rank {
    id: usize,
    size: usize,
    /// This rank's own mailbox (closed when the endpoint drops).
    inbox: Arc<Mailbox>,
    /// Every rank's mailbox, indexed by rank id (the send fabric).
    outboxes: Vec<Arc<Mailbox>>,
    pending: Vec<Message>,
    clock: f64,
    net: NetworkModel,
    collective_seq: u64,
    ctrl: Arc<WorldCtrl>,
    deadline_ms: u64,
    /// Per-sender sequence stamp; `Cell` keeps `send` at `&self`.
    send_seq: Cell<u64>,
    /// Communication-operation counter driving the kill fault.
    comm_ops: Cell<u64>,
    /// Per-sender duplicate-suppression low-water mark: the next sequence
    /// number still admissible from that sender. Because per-sender
    /// delivery is FIFO, any arrival below the mark is a replayed copy —
    /// no bounded window to age out of.
    dedup_floor: Vec<u64>,
    /// Fault-injected duplicates awaiting their deferred replay.
    dup_stash: RefCell<Vec<DeferredDup>>,
    /// Hidden-vs-stalled communication time accounting.
    overlap: OverlapStats,
    /// Lazily built per-neighbor latency metric names, so the receive hot
    /// path never allocates a metric key.
    p2p_names: Vec<Option<String>>,
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("id", &self.id)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Drop for Rank {
    fn drop(&mut self) {
        // Closing the inbox turns sends to a gone rank into typed errors
        // instead of silent buffering; already-queued messages stay
        // deliverable (not that a dropped endpoint will read them).
        self.inbox.close();
    }
}

impl Rank {
    /// This rank's id in `0..size()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Simulated wall-clock of this rank, seconds.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Add measured local compute time to the simulated clock.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance clock backwards");
        self.clock += seconds;
    }

    /// Network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// This rank's hidden-vs-stalled communication accounting so far.
    pub fn overlap(&self) -> OverlapStats {
        self.overlap
    }

    /// Receive deadline in milliseconds (see `DCMESH_COMM_DEADLINE_MS`).
    pub fn deadline_ms(&self) -> u64 {
        self.deadline_ms
    }

    /// Override the receive deadline for this rank (tests mostly).
    pub fn set_deadline_ms(&mut self, ms: u64) {
        assert!(ms >= POLL_MS, "deadline below poll granularity");
        self.deadline_ms = ms;
    }

    /// Panic with a structured comm failure; the legacy (non-`try`) API
    /// escalates typed errors this way, and `World` converts the panic
    /// into a [`WorldError`] entry instead of a deadlock.
    fn escalate(&self, e: CommError) -> ! {
        panic!("communication failure on rank {}: {e}", self.id)
    }

    /// Count a communication operation and fire the kill fault if the
    /// installed plan targets this rank at this operation.
    fn fault_op(&self) {
        let op = self.comm_ops.get();
        self.comm_ops.set(op + 1);
        if fault::armed() && fault::should_kill(self.id, op) {
            panic!("fault injection: rank {} killed at comm op {op}", self.id);
        }
    }

    /// Stamp an outgoing message with this sender's next sequence number.
    fn make_msg(
        &self,
        tag: u64,
        payload: Vec<f64>,
        clock: f64,
        logical_bytes: Option<u64>,
    ) -> Message {
        let seq = self.send_seq.get();
        self.send_seq.set(seq + 1);
        Message {
            from: self.id,
            tag,
            seq,
            payload,
            clock,
            logical_bytes,
        }
    }

    fn channel_error(&self) -> CommError {
        match self.ctrl.first_failed() {
            Some(rank) => CommError::RankFailed { rank },
            None => CommError::Disconnected,
        }
    }

    /// Enqueue `msg` at rank `to`. A closed peer inbox means the peer is
    /// gone: if any rank has *failed*, that is a typed error the sender
    /// must see; if the peer simply exited cleanly (it already received
    /// everything it wanted — e.g. its last wait was satisfied by an
    /// injected duplicate while the original was still in flight), the
    /// buffered send completes locally and the payload is dropped, as a
    /// real fabric would once the receiver has finalized.
    fn push_to(&self, to: usize, msg: Message) -> Result<(), CommError> {
        match self.outboxes[to].push(msg) {
            Ok(()) => Ok(()),
            Err(()) => match self.ctrl.first_failed() {
                Some(rank) => Err(CommError::RankFailed { rank }),
                None => {
                    dcmesh_obs::metrics::counter_add("comm.sent_after_exit", 1);
                    Ok(())
                }
            },
        }
    }

    /// Advance the deferred-duplicate countdowns by one posted message and
    /// replay any copy that came due. Replays bypass the fault hooks (a
    /// copy is not re-dropped or re-duplicated) and ignore closed peers.
    fn tick_dup_stash(&self) {
        let mut stash = self.dup_stash.borrow_mut();
        if stash.is_empty() {
            return;
        }
        let mut due = Vec::new();
        stash.retain_mut(|d| {
            if d.remaining <= 1 {
                due.push((
                    d.to,
                    std::mem::replace(
                        &mut d.msg,
                        Message {
                            from: 0,
                            tag: 0,
                            seq: 0,
                            payload: Vec::new(),
                            clock: 0.0,
                            logical_bytes: None,
                        },
                    ),
                ));
                false
            } else {
                d.remaining -= 1;
                true
            }
        });
        drop(stash);
        for (to, msg) in due {
            let _ = self.outboxes[to].push(msg);
        }
    }

    /// Push one message to `to`, applying any installed fault plan:
    /// drop, extra modeled latency, or duplication. An immediate duplicate
    /// carries the same sequence number and is absorbed by the receiver's
    /// low-water-mark admission; a deferred duplicate (`dup=P@N`) is
    /// replayed after `N` further posts from this rank — the fault
    /// *resolves* at the receiver's wait, not here.
    fn post(&self, to: usize, mut msg: Message) -> Result<(), CommError> {
        if fault::armed() {
            self.tick_dup_stash();
            match fault::message_action(msg.from, to, msg.tag, msg.seq) {
                MessageAction::Deliver => {}
                MessageAction::Drop => return Ok(()),
                MessageAction::Delay(s) => msg.clock += s,
                MessageAction::Duplicate => {
                    let defer = fault::dup_defer();
                    if defer == 0 {
                        self.push_to(to, msg.clone())?;
                    } else {
                        self.dup_stash.borrow_mut().push(DeferredDup {
                            to,
                            remaining: defer,
                            msg: msg.clone(),
                        });
                    }
                }
            }
        }
        self.push_to(to, msg)
    }

    /// Non-blocking send of `payload` to rank `to` with a user `tag`
    /// (must be < 2^60; higher tags are reserved for collectives).
    /// Panics on a dead peer; see [`Rank::try_send`] for the typed form.
    pub fn send(&self, to: usize, tag: u64, payload: &[f64]) {
        if let Err(e) = self.try_send(to, tag, payload) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::send`].
    pub fn try_send(&self, to: usize, tag: u64, payload: &[f64]) -> Result<(), CommError> {
        self.try_isend(to, tag, payload).map(SendRequest::wait)
    }

    /// Post a send and return its request handle. Buffered transport:
    /// the send is complete at post, so [`SendRequest::wait`] is free.
    /// Panics on a dead peer; see [`Rank::try_isend`].
    pub fn isend(&self, to: usize, tag: u64, payload: &[f64]) -> SendRequest {
        match self.try_isend(to, tag, payload) {
            Ok(req) => req,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::isend`].
    pub fn try_isend(
        &self,
        to: usize,
        tag: u64,
        payload: &[f64],
    ) -> Result<SendRequest, CommError> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        self.send_raw(to, tag, payload.to_vec())?;
        Ok(SendRequest { to, tag })
    }

    fn send_raw(&self, to: usize, tag: u64, payload: Vec<f64>) -> Result<(), CommError> {
        dcmesh_obs::metrics::counter_add("comm.messages", 1);
        dcmesh_obs::metrics::counter_add("comm.send_bytes", (payload.len() * 8) as u64);
        let msg = self.make_msg(tag, payload, self.clock, None);
        self.post(to, msg)
    }

    /// Blocking selective receive from rank `from` with matching `tag`.
    /// Advances the clock to the modeled arrival time. Panics on peer
    /// failure or deadline expiry; see [`Rank::try_recv`] for the typed
    /// form.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        match self.try_recv(from, tag) {
            Ok(payload) => payload,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::recv`]: returns a typed error when a peer
    /// rank has failed, the channel closed, or no matching message arrived
    /// within the deadline. Equivalent to an [`Rank::irecv`] waited on
    /// immediately (post clock == wait clock, so nothing is hidden).
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let req = self.irecv(from, tag);
        self.try_wait(req)
    }

    /// Post a selective receive and return its request handle. The rank's
    /// current clock is captured as the post time; compute advanced before
    /// the matching [`Rank::wait`] overlaps the modeled transfer.
    pub fn irecv(&mut self, from: usize, tag: u64) -> RecvRequest {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        dcmesh_obs::metrics::counter_add("comm.recv_posted", 1);
        RecvRequest {
            from,
            tag,
            posted_clock: self.clock,
            modeled: false,
            state: RecvState::Pending,
        }
    }

    /// [`Rank::irecv`] for modeled messages (see [`Rank::send_modeled`]).
    pub fn irecv_modeled(&mut self, from: usize, tag: u64) -> RecvRequest {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        dcmesh_obs::metrics::counter_add("comm.recv_posted", 1);
        RecvRequest {
            from,
            tag,
            posted_clock: self.clock,
            modeled: true,
            state: RecvState::Pending,
        }
    }

    /// Non-blocking completion probe: true once a matching message has
    /// been claimed for `req`, after which the corresponding wait settles
    /// without blocking. Does not advance the clock — modeled time is
    /// charged at the wait.
    pub fn test(&mut self, req: &mut RecvRequest) -> bool {
        if matches!(req.state, RecvState::Done(_)) {
            return true;
        }
        if let Some(msg) = self.claim_pending(req.from, req.tag) {
            req.state = RecvState::Done(msg);
            return true;
        }
        let drained = self.inbox.drain();
        for msg in drained {
            if let Some(m) = self.admit(msg) {
                self.pending.push(m);
            }
        }
        if let Some(msg) = self.claim_pending(req.from, req.tag) {
            req.state = RecvState::Done(msg);
            return true;
        }
        false
    }

    /// Complete a posted receive, returning its payload. Panics
    /// (structured) on peer failure or deadline expiry; see
    /// [`Rank::try_wait`].
    pub fn wait(&mut self, req: RecvRequest) -> Vec<f64> {
        match self.try_wait(req) {
            Ok(payload) => payload,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::wait`]. A peer that died after the post
    /// surfaces here as [`CommError::RankFailed`]; a message the fault
    /// plan dropped surfaces as [`CommError::Timeout`] — faults resolve at
    /// the wait.
    pub fn try_wait(&mut self, req: RecvRequest) -> Result<Vec<f64>, CommError> {
        debug_assert!(!req.modeled, "modeled request waited as a payload receive");
        self.settle(req).map(|(_bytes, payload)| payload)
    }

    /// Complete a posted modeled receive, returning the logical byte
    /// count. Panics (structured) on failure; see
    /// [`Rank::try_wait_modeled`].
    pub fn wait_modeled(&mut self, req: RecvRequest) -> u64 {
        match self.try_wait_modeled(req) {
            Ok(bytes) => bytes,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::wait_modeled`].
    pub fn try_wait_modeled(&mut self, req: RecvRequest) -> Result<u64, CommError> {
        debug_assert!(req.modeled, "payload request waited as a modeled receive");
        self.settle(req).map(|(bytes, _payload)| bytes)
    }

    /// Complete a batch of posted receives in order, returning their
    /// payloads. Panics (structured) on the first failure; see
    /// [`Rank::try_wait_all`].
    pub fn wait_all(&mut self, reqs: Vec<RecvRequest>) -> Vec<Vec<f64>> {
        match self.try_wait_all(reqs) {
            Ok(payloads) => payloads,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::wait_all`]: settles requests in order and
    /// returns the first error (e.g. [`CommError::RankFailed`] when a peer
    /// died between the posts and this wait). Requests after the failed
    /// one are abandoned — their messages, if any, stay claimable.
    pub fn try_wait_all(&mut self, reqs: Vec<RecvRequest>) -> Result<Vec<Vec<f64>>, CommError> {
        reqs.into_iter().map(|r| self.try_wait(r)).collect()
    }

    /// Batch form of [`Rank::wait_modeled`].
    pub fn wait_all_modeled(&mut self, reqs: Vec<RecvRequest>) -> Vec<u64> {
        match self.try_wait_all_modeled(reqs) {
            Ok(bytes) => bytes,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible batch form of [`Rank::wait_modeled`].
    pub fn try_wait_all_modeled(&mut self, reqs: Vec<RecvRequest>) -> Result<Vec<u64>, CommError> {
        reqs.into_iter().map(|r| self.try_wait_modeled(r)).collect()
    }

    /// Settle one posted receive: obtain the matching message (claimed by
    /// an earlier [`Rank::test`] or received now), charge the modeled
    /// transfer to the clock, and split it into hidden vs stalled time.
    fn settle(&mut self, req: RecvRequest) -> Result<(u64, Vec<f64>), CommError> {
        let msg = match req.state {
            RecvState::Done(msg) => msg,
            RecvState::Pending => self.recv_raw(req.from, req.tag)?,
        };
        let bytes = if req.modeled {
            msg.logical_bytes.unwrap_or((msg.payload.len() * 8) as u64)
        } else {
            (msg.payload.len() * 8) as u64
        };
        let latency = self.net.p2p_time(bytes as usize, req.from, self.id);
        let arrival = msg.clock + latency;
        let wait_clock = self.clock;
        let stall = (arrival - wait_clock).max(0.0);
        self.overlap.receives += 1;
        self.overlap.wait_s += stall;
        self.overlap.span_s += (arrival - req.posted_clock).max(0.0);
        self.overlap.hidden_s += (wait_clock.min(arrival) - req.posted_clock).max(0.0);
        self.clock = wait_clock.max(arrival);
        dcmesh_obs::metrics::counter_add("comm.wait_ns", (stall * 1e9) as u64);
        self.record_p2p(req.from, bytes, latency);
        Ok((bytes, msg.payload))
    }

    /// Feed modeled p2p traffic into the metrics registry: total exchanged
    /// bytes plus a per-neighbor latency histogram. No-op (and no
    /// allocation) when the collector is disabled; the metric name for
    /// each neighbor is built once and cached, not formatted per receive.
    fn record_p2p(&mut self, from: usize, bytes: u64, latency_s: f64) {
        if !dcmesh_obs::enabled() {
            return;
        }
        dcmesh_obs::metrics::counter_add("comm.recv_bytes", bytes);
        let name =
            self.p2p_names[from].get_or_insert_with(|| format!("comm.p2p_latency_s.from_{from}"));
        dcmesh_obs::metrics::histogram_record(name, latency_s);
    }

    /// Non-blocking send of a *modeled* message: no payload is
    /// materialized, but the receiver's clock advances as if
    /// `logical_bytes` had crossed the fabric. Scaling drivers use this to
    /// model full-size halo exchanges without allocating them.
    pub fn send_modeled(&self, to: usize, tag: u64, logical_bytes: u64) {
        if let Err(e) = self.try_send_modeled(to, tag, logical_bytes) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::send_modeled`].
    pub fn try_send_modeled(
        &self,
        to: usize,
        tag: u64,
        logical_bytes: u64,
    ) -> Result<(), CommError> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        dcmesh_obs::metrics::counter_add("comm.send_bytes", logical_bytes);
        let msg = self.make_msg(tag, Vec::new(), self.clock, Some(logical_bytes));
        self.post(to, msg)
    }

    /// Blocking receive of a modeled message; advances the clock by the
    /// modeled transfer time of its logical size.
    pub fn recv_modeled(&mut self, from: usize, tag: u64) -> u64 {
        match self.try_recv_modeled(from, tag) {
            Ok(bytes) => bytes,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::recv_modeled`].
    pub fn try_recv_modeled(&mut self, from: usize, tag: u64) -> Result<u64, CommError> {
        let req = self.irecv_modeled(from, tag);
        self.try_wait_modeled(req)
    }

    /// Admit a message off the wire, dropping duplicates by the per-sender
    /// low-water mark: per-sender delivery is FIFO, so a fresh message
    /// always carries a higher sequence number than everything admitted
    /// before it — any arrival at or below the mark is an injected (or
    /// retransmitted) copy, no matter how long it was deferred.
    fn admit(&mut self, msg: Message) -> Option<Message> {
        let floor = &mut self.dedup_floor[msg.from];
        if msg.seq < *floor {
            dcmesh_obs::metrics::counter_add("comm.dup_dropped", 1);
            return None;
        }
        *floor = msg.seq + 1;
        Some(msg)
    }

    /// Take the first pending message matching `(from, tag)`, if any.
    fn claim_pending(&mut self, from: usize, tag: u64) -> Option<Message> {
        self.pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
            .map(|pos| self.pending.remove(pos))
    }

    /// Deadline-bounded selective receive. Polls in `POLL_MS` chunks:
    /// queued messages are drained first (data a rank sent before dying
    /// still delivers), then the failed-rank flags are checked, then one
    /// timed wait on the mailbox. The deadline accumulates from the
    /// timed-out chunks — no wall clock is read — and never fires under
    /// schedule exploration, where a stuck receive must surface as a
    /// detected deadlock instead.
    fn recv_raw(&mut self, from: usize, tag: u64) -> Result<Message, CommError> {
        if let Some(m) = self.claim_pending(from, tag) {
            return Ok(m);
        }
        let mut waited_ms: u64 = 0;
        loop {
            // Drain whatever is already queued before consulting failure
            // flags, so delivered-then-died messages win.
            let drained = self.inbox.drain();
            let mut found = None;
            for msg in drained {
                if let Some(m) = self.admit(msg) {
                    if found.is_none() && m.from == from && m.tag == tag {
                        found = Some(m);
                    } else {
                        self.pending.push(m);
                    }
                }
            }
            if let Some(m) = found {
                return Ok(m);
            }
            if let Some(rank) = self.ctrl.first_failed() {
                return Err(CommError::RankFailed { rank });
            }
            match self.inbox.wait_nonempty(Duration::from_millis(POLL_MS)) {
                WaitOutcome::Ready => {}
                WaitOutcome::TimedOut => {
                    waited_ms += POLL_MS;
                    if waited_ms >= self.deadline_ms {
                        dcmesh_obs::metrics::counter_add("comm.timeouts", 1);
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited_ms,
                        });
                    }
                }
                WaitOutcome::Closed => return Err(self.channel_error()),
            }
        }
    }

    fn next_collective_tag(&mut self) -> u64 {
        self.collective_seq += 1;
        COLLECTIVE_TAG_BASE + self.collective_seq
    }

    /// Allreduce with an arbitrary elementwise combiner; result replaces
    /// `data` on every rank. Clocks synchronize to
    /// `max(entry clocks) + tree_collective_time`. Panics (structured)
    /// on rank failure or deadline expiry.
    pub fn allreduce_with(&mut self, data: &mut [f64], combine: impl Fn(f64, f64) -> f64) {
        if let Err(e) = self.try_allreduce_with(data, combine) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::allreduce_with`].
    pub fn try_allreduce_with(
        &mut self,
        data: &mut [f64],
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<(), CommError> {
        let tag = self.next_collective_tag();
        let bytes = data.len() * 8;
        if self.size == 1 {
            return Ok(());
        }
        self.fault_op();
        if self.id == 0 {
            let mut max_clock = self.clock;
            for from in 1..self.size {
                let msg = self.recv_raw(from, tag)?;
                max_clock = max_clock.max(msg.clock);
                for (d, v) in data.iter_mut().zip(&msg.payload) {
                    *d = combine(*d, *v);
                }
            }
            let coll = self.net.tree_collective_time(bytes, self.size);
            let done = max_clock + coll;
            self.clock = done;
            dcmesh_obs::metrics::counter_add("comm.collective_bytes", bytes as u64);
            dcmesh_obs::metrics::histogram_record("comm.collective_latency_s", coll);
            for to in 1..self.size {
                let msg = self.make_msg(tag, data.to_vec(), done, None);
                self.post(to, msg)?;
            }
        } else {
            self.send_raw(0, tag, data.to_vec())?;
            let msg = self.recv_raw(0, tag)?;
            data.copy_from_slice(&msg.payload);
            self.clock = msg.clock; // collective completion time
        }
        Ok(())
    }

    /// Elementwise sum allreduce.
    pub fn allreduce_sum(&mut self, data: &mut [f64]) {
        self.allreduce_with(data, |a, b| a + b);
    }

    /// Elementwise max allreduce.
    pub fn allreduce_max(&mut self, data: &mut [f64]) {
        self.allreduce_with(data, f64::max);
    }

    /// Scalar sum allreduce convenience.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Barrier: zero-byte allreduce.
    pub fn barrier(&mut self) {
        self.allreduce_with(&mut [], |a, _| a);
    }

    /// Broadcast `data` from `root` to all ranks. Panics (structured) on
    /// rank failure or deadline expiry.
    pub fn broadcast(&mut self, root: usize, data: &mut Vec<f64>) {
        if let Err(e) = self.try_broadcast(root, data) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::broadcast`].
    pub fn try_broadcast(&mut self, root: usize, data: &mut Vec<f64>) -> Result<(), CommError> {
        let tag = self.next_collective_tag();
        if self.size == 1 {
            return Ok(());
        }
        self.fault_op();
        let bytes = data.len() * 8;
        if self.id == root {
            let done = self.clock + self.net.tree_collective_time(bytes, self.size);
            self.clock = done;
            for to in 0..self.size {
                if to != root {
                    let msg = self.make_msg(tag, data.clone(), done, None);
                    self.post(to, msg)?;
                }
            }
        } else {
            let msg = self.recv_raw(root, tag)?;
            *data = msg.payload;
            self.clock = self.clock.max(msg.clock);
        }
        Ok(())
    }

    /// Gather each rank's `data` to the root; `Some(rows)` on root (indexed
    /// by rank), `None` elsewhere. Panics (structured) on rank failure or
    /// deadline expiry.
    pub fn gather(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        match self.try_gather(root, data) {
            Ok(rows) => rows,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::gather`].
    pub fn try_gather(
        &mut self,
        root: usize,
        data: &[f64],
    ) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        let tag = self.next_collective_tag();
        self.fault_op();
        if self.id == root {
            let mut rows: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            rows[root] = data.to_vec();
            let mut max_clock = self.clock;
            // Index loop: `recv_raw` needs `&mut self`, so `rows` cannot be
            // borrowed through `iter_mut` across the receives.
            #[allow(clippy::needless_range_loop)]
            for from in 0..self.size {
                if from == root {
                    continue;
                }
                let msg = self.recv_raw(from, tag)?;
                max_clock = max_clock.max(msg.clock);
                rows[from] = msg.payload;
            }
            self.clock = max_clock + self.net.gather_time(data.len() * 8, self.size);
            Ok(Some(rows))
        } else {
            self.send_raw(root, tag, data.to_vec())?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, NetworkModel::ideal(), |r| {
            r.barrier();
            let s = r.allreduce_sum_scalar(5.0);
            (r.id(), s)
        });
        assert_eq!(out, vec![(0, 5.0)]);
    }

    #[test]
    fn point_to_point_ring() {
        let n = 6;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let next = (r.id() + 1) % n;
            let prev = (r.id() + n - 1) % n;
            r.send(next, 7, &[r.id() as f64]);
            let got = r.recv(prev, 7);
            got[0] as usize
        });
        for (id, got) in out.iter().enumerate() {
            assert_eq!(*got, (id + n - 1) % n);
        }
    }

    #[test]
    fn allreduce_sum_correct() {
        let n = 8;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let mut v = vec![r.id() as f64, 1.0];
            r.allreduce_sum(&mut v);
            v
        });
        let want = vec![(0..8).sum::<usize>() as f64, 8.0];
        for v in out {
            assert_eq!(v, want);
        }
    }

    #[test]
    fn allreduce_max_correct() {
        let out = World::run(5, NetworkModel::ideal(), |r| {
            let mut v = vec![-(r.id() as f64), r.id() as f64];
            r.allreduce_max(&mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![0.0, 4.0]);
        }
    }

    #[test]
    fn collective_synchronizes_clocks() {
        let out = World::run(4, NetworkModel::slingshot11(), |r| {
            // Rank 2 is slow.
            r.advance(if r.id() == 2 { 1.0 } else { 0.1 });
            r.barrier();
            r.time()
        });
        // Everyone ends at the same completion time >= slowest entry.
        let t0 = out[0];
        assert!(t0 >= 1.0);
        for t in &out {
            assert!((t - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_delivers_root_data() {
        let out = World::run(4, NetworkModel::slingshot11(), |r| {
            let mut v = if r.id() == 1 {
                vec![3.5, -2.0]
            } else {
                vec![0.0, 0.0]
            };
            r.broadcast(1, &mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![3.5, -2.0]);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let out = World::run(3, NetworkModel::ideal(), |r| {
            r.gather(0, &[r.id() as f64 * 10.0])
        });
        let rows = out[0].as_ref().expect("root has rows");
        assert_eq!(rows[0], vec![0.0]);
        assert_eq!(rows[1], vec![10.0]);
        assert_eq!(rows[2], vec![20.0]);
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn tags_demultiplex_out_of_order_sends() {
        let out = World::run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                // Send tag 2 first, tag 1 second.
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                // Receive tag 1 first: must skip the tag-2 message.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn comm_time_grows_with_rank_count() {
        let time_for = |p: usize| {
            let out = World::run(p, NetworkModel::slingshot11(), |r| {
                let mut v = vec![0.0; 1024];
                for _ in 0..10 {
                    r.allreduce_sum(&mut v);
                }
                r.time()
            });
            out[0]
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        assert!(t16 > t4, "t4={t4} t16={t16}");
    }

    #[test]
    fn modeled_messages_cost_time_without_payload() {
        let out = World::run(2, NetworkModel::slingshot11(), |r| {
            if r.id() == 0 {
                r.send_modeled(1, 9, 1 << 30); // "1 GiB" halo
                0.0
            } else {
                let bytes = r.recv_modeled(0, 9);
                assert_eq!(bytes, 1 << 30);
                r.time()
            }
        });
        // 1 GiB over NVLink (same node) at 600 GB/s ~ 1.8 ms.
        assert!(out[1] > 1e-3, "modeled transfer time {}", out[1]);
    }

    #[test]
    fn repeated_collectives_use_distinct_tags() {
        // Two back-to-back allreduces must not cross-talk.
        let out = World::run(3, NetworkModel::ideal(), |r| {
            let mut a = vec![1.0];
            r.allreduce_sum(&mut a);
            let mut b = vec![10.0];
            r.allreduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in out {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
        }
    }

    // --- Nonblocking request API ---

    #[test]
    fn irecv_wait_delivers_payload() {
        let out = World::run(2, NetworkModel::slingshot11(), |r| {
            if r.id() == 0 {
                r.isend(1, 4, &[2.5, -1.0]).wait();
                Vec::new()
            } else {
                let req = r.irecv(0, 4);
                r.wait(req)
            }
        });
        assert_eq!(out[1], vec![2.5, -1.0]);
    }

    #[test]
    fn posted_receive_overlaps_compute() {
        // Symmetric halo-style exchange: posting the exchange before the
        // 1 s compute slice hides the modeled transfer entirely
        // (max(compute, comm)); the blocking order stamps the send after
        // the slice and pays the sum.
        let step = |overlap: bool| {
            let out = World::run(2, NetworkModel::slingshot11(), move |r| {
                let peer = 1 - r.id();
                if overlap {
                    r.send_modeled(peer, 9, 1 << 28);
                    let req = r.irecv_modeled(peer, 9);
                    r.advance(1.0);
                    r.wait_modeled(req);
                } else {
                    r.advance(1.0);
                    r.send_modeled(peer, 9, 1 << 28);
                    r.recv_modeled(peer, 9);
                }
                (r.time(), r.overlap())
            });
            out[1]
        };
        let (t_overlap, s_overlap) = step(true);
        let (t_blocking, s_blocking) = step(false);
        // 256 MiB on-node at 600 GB/s ~ 0.45 ms of modeled transfer.
        assert!((t_overlap - 1.0).abs() < 1e-9, "fully hidden: {t_overlap}");
        assert!(t_blocking > 1.0003, "blocking pays the sum: {t_blocking}");
        assert!(s_overlap.overlap_ratio() > 0.99, "{s_overlap:?}");
        assert_eq!(s_blocking.hidden_s, 0.0, "{s_blocking:?}");
        assert!(s_blocking.wait_s > 3e-4, "{s_blocking:?}");
    }

    #[test]
    fn exposed_stall_when_compute_is_short() {
        let out = World::run(2, NetworkModel::slingshot11(), |r| {
            if r.id() == 0 {
                r.send_modeled(1, 9, 1 << 30);
                OverlapStats::default()
            } else {
                let req = r.irecv_modeled(0, 9);
                r.advance(1e-6); // far less than the ~21 ms transfer
                r.wait_modeled(req);
                r.overlap()
            }
        });
        let s = out[1];
        assert!(s.wait_s > 1e-3, "stall must be exposed: {s:?}");
        assert!(s.hidden_s > 0.0 && s.hidden_s < s.span_s, "{s:?}");
    }

    #[test]
    fn test_probe_claims_without_clock_advance() {
        let out = World::run(2, NetworkModel::slingshot11(), |r| {
            if r.id() == 0 {
                r.send(1, 6, &[7.0]);
                true
            } else {
                let mut req = r.irecv(0, 6);
                // Spin until the probe claims the message.
                let mut probes = 0u32;
                while !r.test(&mut req) {
                    probes += 1;
                    assert!(probes < 1_000_000, "probe never completed");
                    std::thread::yield_now();
                }
                let t_before = r.time();
                assert_eq!(t_before, 0.0, "test must not advance the clock");
                let got = r.wait(req);
                assert_eq!(got, vec![7.0]);
                r.time() >= t_before
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn wait_all_settles_in_order() {
        let n = 4;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let id = r.id();
            for to in 0..n {
                if to != id {
                    r.send(to, 30 + id as u64, &[id as f64]);
                }
            }
            let reqs: Vec<RecvRequest> = (0..n)
                .filter(|&from| from != id)
                .map(|from| r.irecv(from, 30 + from as u64))
                .collect();
            let got = r.wait_all(reqs);
            got.iter().map(|v| v[0] as usize).collect::<Vec<_>>()
        });
        for (id, got) in out.iter().enumerate() {
            let want: Vec<usize> = (0..n).filter(|&f| f != id).collect();
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn endpoints_work_without_world_threads() {
        let mut ranks = World::endpoints(2, NetworkModel::ideal());
        let r1 = ranks.pop().expect("rank 1");
        let mut r0 = ranks.pop().expect("rank 0");
        let h = dcmesh_analyze::sync::spawn_named("endpoint-sender", move || {
            let r1 = r1;
            r1.send(0, 5, &[9.0]);
        });
        let req = r0.irecv(1, 5);
        let got = r0.wait(req);
        assert_eq!(got, vec![9.0]);
        h.join().expect("sender thread");
    }
}
