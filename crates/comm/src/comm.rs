//! Rank-per-thread message passing with simulated clocks.
//!
//! QXMD's global-local SCF needs: point-to-point exchange of domain
//! boundaries, allreduce of the global density/energy, broadcast of the
//! global potential, and gathers for diagnostics. Each rank carries a
//! simulated clock: `advance()` adds *measured* local compute time, and
//! every communication operation adds *modeled* network time from
//! [`NetworkModel`], so a laptop reproduces full-machine timing structure.
//!
//! ## Failure handling
//!
//! Production campaigns lose ranks, so the fabric must fail loudly rather
//! than hang. Three mechanisms work together:
//!
//! * Every rank thread runs under `catch_unwind`; a panic marks the rank
//!   failed in the shared world control block, and [`World::try_run`]
//!   reports *which* rank died (with its panic message) instead of
//!   deadlocking the survivors.
//! * Receives are deadline-bounded: [`Rank::try_recv`] polls in short
//!   chunks, checking the failed-rank flags between chunks, and returns a
//!   typed [`CommError`] on peer failure or deadline expiry
//!   (`DCMESH_COMM_DEADLINE_MS`, default 5000). Messages a rank managed to
//!   send before dying still deliver — queued data outranks failure flags.
//! * Messages carry per-sender sequence numbers; receivers drop duplicates
//!   (windowed dedup), which is what makes the duplicate fault in
//!   `dcmesh-ckpt`'s [`dcmesh_ckpt::fault::FaultPlan`] recoverable.
//!
//! Fault injection hooks (drop/delay/duplicate/kill) live on the send path
//! and cost one relaxed atomic load when no plan is installed.

use crate::network::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dcmesh_ckpt::fault::{self, MessageAction};
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A message between ranks: payload of f64 words plus the sender's clock.
/// `logical_bytes` lets scaling drivers model full-size transfers without
/// materializing the data. `seq` is unique per sender and drives duplicate
/// suppression on the receive side.
#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u64,
    seq: u64,
    payload: Vec<f64>,
    clock: f64,
    logical_bytes: Option<u64>,
}

/// Internal tag namespace for collectives (user tags must stay below).
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

/// Receive poll granularity. The deadline is accumulated from these
/// chunks rather than read off a wall clock (kernel crates are
/// wall-clock-free; see the lint regime).
const POLL_MS: u64 = 1;

/// Default receive deadline when `DCMESH_COMM_DEADLINE_MS` is unset.
const DEFAULT_DEADLINE_MS: u64 = 5000;

/// How many recent sender sequence numbers each rank remembers for
/// duplicate suppression.
const DEDUP_WINDOW: usize = 64;

/// A typed communication failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A peer rank died (panicked) while this rank was communicating.
    RankFailed {
        /// The rank that failed.
        rank: usize,
    },
    /// No matching message arrived within the receive deadline.
    Timeout {
        /// Sender the receive was waiting on.
        from: usize,
        /// Tag the receive was waiting on.
        tag: u64,
        /// How long the receive polled before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// The channel closed without a recorded rank failure.
    Disconnected,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
            CommError::Timeout {
                from,
                tag,
                waited_ms,
            } => write!(
                f,
                "receive from rank {from} (tag {tag}) timed out after {waited_ms} ms"
            ),
            CommError::Disconnected => write!(f, "communication channel disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

/// One or more ranks failed during a [`World::try_run`].
#[derive(Clone, Debug)]
pub struct WorldError {
    /// `(rank, panic message)` for every failed rank, ordered by rank id.
    pub failures: Vec<(usize, String)>,
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rank(s) failed:", self.failures.len())?;
        for (rank, reason) in &self.failures {
            write!(f, "\n  rank {rank}: {reason}")?;
        }
        Ok(())
    }
}

impl std::error::Error for WorldError {}

/// Shared world state: which ranks have failed, and why. Ranks poll the
/// flags between receive chunks, so a dead peer surfaces as a typed error
/// within one poll interval instead of a deadlock.
#[derive(Debug)]
struct WorldCtrl {
    failed: Vec<AtomicBool>,
    reasons: Mutex<Vec<Option<String>>>,
}

impl WorldCtrl {
    fn new(nranks: usize) -> Self {
        Self {
            failed: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
            reasons: Mutex::new(vec![None; nranks]),
        }
    }

    fn mark_failed(&self, rank: usize, reason: String) {
        {
            let mut reasons = self.reasons.lock().unwrap_or_else(|e| e.into_inner());
            reasons[rank] = Some(reason);
        }
        // Flag set after the reason so a reader that sees the flag finds
        // the message.
        self.failed[rank].store(true, Ordering::Release);
    }

    fn first_failed(&self) -> Option<usize> {
        self.failed.iter().position(|f| f.load(Ordering::Acquire))
    }

    fn failures(&self) -> Vec<(usize, String)> {
        let reasons = self.reasons.lock().unwrap_or_else(|e| e.into_inner());
        reasons
            .iter()
            .enumerate()
            .filter_map(|(rank, r)| r.as_ref().map(|s| (rank, s.clone())))
            .collect()
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn deadline_from_env() -> u64 {
    std::env::var("DCMESH_COMM_DEADLINE_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_DEADLINE_MS)
}

/// The communicator world; spawns one OS thread per rank.
#[derive(Debug)]
pub struct World;

impl World {
    /// Run `f` on `nranks` ranks in parallel and return each rank's result,
    /// ordered by rank id. Panics in any rank propagate.
    ///
    /// ```
    /// use dcmesh_comm::{NetworkModel, World};
    /// let sums = World::run(4, NetworkModel::ideal(), |rank| {
    ///     rank.allreduce_sum_scalar(rank.id() as f64)
    /// });
    /// assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
    /// ```
    pub fn run<T, F>(nranks: usize, net: NetworkModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        Self::try_run(nranks, net, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`World::run`], but rank failures are reported instead of
    /// propagated: if any rank panics (including a comm failure escalated
    /// to a panic by the legacy API), the returned [`WorldError`] names
    /// every failed rank with its panic message. Surviving ranks observe
    /// the failure as a typed [`CommError`] from their next receive rather
    /// than deadlocking.
    pub fn try_run<T, F>(nranks: usize, net: NetworkModel, f: F) -> Result<Vec<T>, WorldError>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        assert!(nranks >= 1, "need at least one rank");
        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(nranks);
        let mut receivers: Vec<Option<Receiver<Message>>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(Some(r));
        }
        let ctrl = Arc::new(WorldCtrl::new(nranks));
        let deadline_ms = deadline_from_env();
        let senders_ref = &senders;
        let f_ref = &f;
        let net_ref = &net;
        let results: Vec<Option<T>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (id, recv_slot) in receivers.iter_mut().enumerate() {
                let receiver = recv_slot.take().expect("receiver taken once");
                let ctrl = Arc::clone(&ctrl);
                handles.push(scope.spawn(move || {
                    let mut rank = Rank {
                        id,
                        size: nranks,
                        senders: senders_ref.to_vec(),
                        receiver,
                        pending: Vec::new(),
                        clock: 0.0,
                        net: net_ref.clone(),
                        collective_seq: 0,
                        ctrl: Arc::clone(&ctrl),
                        deadline_ms,
                        send_seq: Cell::new(0),
                        comm_ops: Cell::new(0),
                        dedup: vec![VecDeque::new(); nranks],
                        p2p_names: vec![None; nranks],
                    };
                    match catch_unwind(AssertUnwindSafe(|| f_ref(&mut rank))) {
                        Ok(t) => Some(t),
                        Err(payload) => {
                            ctrl.mark_failed(id, panic_reason(payload.as_ref()));
                            None
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread join"))
                .collect()
        });
        let failures = ctrl.failures();
        if failures.is_empty() {
            Ok(results
                .into_iter()
                .map(|t| t.expect("rank with no failure returns a value"))
                .collect())
        } else {
            Err(WorldError { failures })
        }
    }
}

/// One rank's endpoint: identity, point-to-point plumbing, collectives,
/// and the simulated clock.
pub struct Rank {
    id: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    pending: Vec<Message>,
    clock: f64,
    net: NetworkModel,
    collective_seq: u64,
    ctrl: Arc<WorldCtrl>,
    deadline_ms: u64,
    /// Per-sender sequence stamp; `Cell` keeps `send` at `&self`.
    send_seq: Cell<u64>,
    /// Communication-operation counter driving the kill fault.
    comm_ops: Cell<u64>,
    /// Recently seen sequence numbers per sender (duplicate suppression).
    dedup: Vec<VecDeque<u64>>,
    /// Lazily built per-neighbor latency metric names, so the receive hot
    /// path never allocates a metric key.
    p2p_names: Vec<Option<String>>,
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("id", &self.id)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Rank {
    /// This rank's id in `0..size()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Simulated wall-clock of this rank, seconds.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Add measured local compute time to the simulated clock.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance clock backwards");
        self.clock += seconds;
    }

    /// Network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Receive deadline in milliseconds (see `DCMESH_COMM_DEADLINE_MS`).
    pub fn deadline_ms(&self) -> u64 {
        self.deadline_ms
    }

    /// Override the receive deadline for this rank (tests mostly).
    pub fn set_deadline_ms(&mut self, ms: u64) {
        assert!(ms >= POLL_MS, "deadline below poll granularity");
        self.deadline_ms = ms;
    }

    /// Panic with a structured comm failure; the legacy (non-`try`) API
    /// escalates typed errors this way, and `World` converts the panic
    /// into a [`WorldError`] entry instead of a deadlock.
    fn escalate(&self, e: CommError) -> ! {
        panic!("communication failure on rank {}: {e}", self.id)
    }

    /// Count a communication operation and fire the kill fault if the
    /// installed plan targets this rank at this operation.
    fn fault_op(&self) {
        let op = self.comm_ops.get();
        self.comm_ops.set(op + 1);
        if fault::armed() && fault::should_kill(self.id, op) {
            panic!("fault injection: rank {} killed at comm op {op}", self.id);
        }
    }

    /// Stamp an outgoing message with this sender's next sequence number.
    fn make_msg(
        &self,
        tag: u64,
        payload: Vec<f64>,
        clock: f64,
        logical_bytes: Option<u64>,
    ) -> Message {
        let seq = self.send_seq.get();
        self.send_seq.set(seq + 1);
        Message {
            from: self.id,
            tag,
            seq,
            payload,
            clock,
            logical_bytes,
        }
    }

    fn channel_error(&self) -> CommError {
        match self.ctrl.first_failed() {
            Some(rank) => CommError::RankFailed { rank },
            None => CommError::Disconnected,
        }
    }

    /// Push one message to `to`, applying any installed fault plan:
    /// drop, extra modeled latency, or duplication (the duplicate carries
    /// the same sequence number, so the receiver's dedup window absorbs
    /// it).
    fn post(&self, to: usize, mut msg: Message) -> Result<(), CommError> {
        if fault::armed() {
            match fault::message_action(msg.from, to, msg.tag, msg.seq) {
                MessageAction::Deliver => {}
                MessageAction::Drop => return Ok(()),
                MessageAction::Delay(s) => msg.clock += s,
                MessageAction::Duplicate => {
                    self.senders[to]
                        .send(msg.clone())
                        .map_err(|_| self.channel_error())?;
                }
            }
        }
        self.senders[to].send(msg).map_err(|_| self.channel_error())
    }

    /// Non-blocking send of `payload` to rank `to` with a user `tag`
    /// (must be < 2^60; higher tags are reserved for collectives).
    /// Panics on a dead peer; see [`Rank::try_send`] for the typed form.
    pub fn send(&self, to: usize, tag: u64, payload: &[f64]) {
        if let Err(e) = self.try_send(to, tag, payload) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::send`].
    pub fn try_send(&self, to: usize, tag: u64, payload: &[f64]) -> Result<(), CommError> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        self.send_raw(to, tag, payload.to_vec())
    }

    fn send_raw(&self, to: usize, tag: u64, payload: Vec<f64>) -> Result<(), CommError> {
        dcmesh_obs::metrics::counter_add("comm.messages", 1);
        dcmesh_obs::metrics::counter_add("comm.send_bytes", (payload.len() * 8) as u64);
        let msg = self.make_msg(tag, payload, self.clock, None);
        self.post(to, msg)
    }

    /// Blocking selective receive from rank `from` with matching `tag`.
    /// Advances the clock to the modeled arrival time. Panics on peer
    /// failure or deadline expiry; see [`Rank::try_recv`] for the typed
    /// form.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        match self.try_recv(from, tag) {
            Ok(payload) => payload,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::recv`]: returns a typed error when a peer
    /// rank has failed, the channel closed, or no matching message arrived
    /// within the deadline.
    pub fn try_recv(&mut self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        let msg = self.recv_raw(from, tag)?;
        let bytes = msg.payload.len() * 8;
        let latency = self.net.p2p_time(bytes, from, self.id);
        self.clock = self.clock.max(msg.clock + latency);
        self.record_p2p(from, bytes as u64, latency);
        Ok(msg.payload)
    }

    /// Feed modeled p2p traffic into the metrics registry: total exchanged
    /// bytes plus a per-neighbor latency histogram. No-op (and no
    /// allocation) when the collector is disabled; the metric name for
    /// each neighbor is built once and cached, not formatted per receive.
    fn record_p2p(&mut self, from: usize, bytes: u64, latency_s: f64) {
        if !dcmesh_obs::enabled() {
            return;
        }
        dcmesh_obs::metrics::counter_add("comm.recv_bytes", bytes);
        let name =
            self.p2p_names[from].get_or_insert_with(|| format!("comm.p2p_latency_s.from_{from}"));
        dcmesh_obs::metrics::histogram_record(name, latency_s);
    }

    /// Non-blocking send of a *modeled* message: no payload is
    /// materialized, but the receiver's clock advances as if
    /// `logical_bytes` had crossed the fabric. Scaling drivers use this to
    /// model full-size halo exchanges without allocating them.
    pub fn send_modeled(&self, to: usize, tag: u64, logical_bytes: u64) {
        if let Err(e) = self.try_send_modeled(to, tag, logical_bytes) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::send_modeled`].
    pub fn try_send_modeled(
        &self,
        to: usize,
        tag: u64,
        logical_bytes: u64,
    ) -> Result<(), CommError> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        dcmesh_obs::metrics::counter_add("comm.send_bytes", logical_bytes);
        let msg = self.make_msg(tag, Vec::new(), self.clock, Some(logical_bytes));
        self.post(to, msg)
    }

    /// Blocking receive of a modeled message; advances the clock by the
    /// modeled transfer time of its logical size.
    pub fn recv_modeled(&mut self, from: usize, tag: u64) -> u64 {
        match self.try_recv_modeled(from, tag) {
            Ok(bytes) => bytes,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::recv_modeled`].
    pub fn try_recv_modeled(&mut self, from: usize, tag: u64) -> Result<u64, CommError> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.fault_op();
        let msg = self.recv_raw(from, tag)?;
        let bytes = msg.logical_bytes.unwrap_or((msg.payload.len() * 8) as u64);
        let latency = self.net.p2p_time(bytes as usize, from, self.id);
        self.clock = self.clock.max(msg.clock + latency);
        self.record_p2p(from, bytes, latency);
        Ok(bytes)
    }

    /// Admit a message off the wire, dropping duplicates: a sequence
    /// number already in the sender's dedup window means this copy was
    /// injected (or retransmitted) and must not be delivered twice.
    fn admit(&mut self, msg: Message) -> Option<Message> {
        let window = &mut self.dedup[msg.from];
        if window.contains(&msg.seq) {
            dcmesh_obs::metrics::counter_add("comm.dup_dropped", 1);
            return None;
        }
        if window.len() == DEDUP_WINDOW {
            window.pop_front();
        }
        window.push_back(msg.seq);
        Some(msg)
    }

    /// Deadline-bounded selective receive. Polls in `POLL_MS` chunks:
    /// queued messages are drained first (data a rank sent before dying
    /// still delivers), then the failed-rank flags are checked, then one
    /// timed wait. The deadline accumulates from the timed-out chunks —
    /// no wall clock is read.
    fn recv_raw(&mut self, from: usize, tag: u64) -> Result<Message, CommError> {
        let mut waited_ms: u64 = 0;
        loop {
            if let Some(pos) = self
                .pending
                .iter()
                .position(|m| m.from == from && m.tag == tag)
            {
                return Ok(self.pending.remove(pos));
            }
            // Drain whatever is already queued before consulting failure
            // flags, so delivered-then-died messages win. Empty and
            // Disconnected both fall through to the failure check below.
            while let Ok(msg) = self.receiver.try_recv() {
                if let Some(m) = self.admit(msg) {
                    if m.from == from && m.tag == tag {
                        return Ok(m);
                    }
                    self.pending.push(m);
                }
            }
            if let Some(rank) = self.ctrl.first_failed() {
                return Err(CommError::RankFailed { rank });
            }
            match self.receiver.recv_timeout(Duration::from_millis(POLL_MS)) {
                Ok(msg) => {
                    if let Some(m) = self.admit(msg) {
                        if m.from == from && m.tag == tag {
                            return Ok(m);
                        }
                        self.pending.push(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    waited_ms += POLL_MS;
                    if waited_ms >= self.deadline_ms {
                        dcmesh_obs::metrics::counter_add("comm.timeouts", 1);
                        return Err(CommError::Timeout {
                            from,
                            tag,
                            waited_ms,
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(self.channel_error());
                }
            }
        }
    }

    fn next_collective_tag(&mut self) -> u64 {
        self.collective_seq += 1;
        COLLECTIVE_TAG_BASE + self.collective_seq
    }

    /// Allreduce with an arbitrary elementwise combiner; result replaces
    /// `data` on every rank. Clocks synchronize to
    /// `max(entry clocks) + tree_collective_time`. Panics (structured)
    /// on rank failure or deadline expiry.
    pub fn allreduce_with(&mut self, data: &mut [f64], combine: impl Fn(f64, f64) -> f64) {
        if let Err(e) = self.try_allreduce_with(data, combine) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::allreduce_with`].
    pub fn try_allreduce_with(
        &mut self,
        data: &mut [f64],
        combine: impl Fn(f64, f64) -> f64,
    ) -> Result<(), CommError> {
        let tag = self.next_collective_tag();
        let bytes = data.len() * 8;
        if self.size == 1 {
            return Ok(());
        }
        self.fault_op();
        if self.id == 0 {
            let mut max_clock = self.clock;
            for from in 1..self.size {
                let msg = self.recv_raw(from, tag)?;
                max_clock = max_clock.max(msg.clock);
                for (d, v) in data.iter_mut().zip(&msg.payload) {
                    *d = combine(*d, *v);
                }
            }
            let coll = self.net.tree_collective_time(bytes, self.size);
            let done = max_clock + coll;
            self.clock = done;
            dcmesh_obs::metrics::counter_add("comm.collective_bytes", bytes as u64);
            dcmesh_obs::metrics::histogram_record("comm.collective_latency_s", coll);
            for to in 1..self.size {
                let msg = self.make_msg(tag, data.to_vec(), done, None);
                self.post(to, msg)?;
            }
        } else {
            self.send_raw(0, tag, data.to_vec())?;
            let msg = self.recv_raw(0, tag)?;
            data.copy_from_slice(&msg.payload);
            self.clock = msg.clock; // collective completion time
        }
        Ok(())
    }

    /// Elementwise sum allreduce.
    pub fn allreduce_sum(&mut self, data: &mut [f64]) {
        self.allreduce_with(data, |a, b| a + b);
    }

    /// Elementwise max allreduce.
    pub fn allreduce_max(&mut self, data: &mut [f64]) {
        self.allreduce_with(data, f64::max);
    }

    /// Scalar sum allreduce convenience.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Barrier: zero-byte allreduce.
    pub fn barrier(&mut self) {
        self.allreduce_with(&mut [], |a, _| a);
    }

    /// Broadcast `data` from `root` to all ranks. Panics (structured) on
    /// rank failure or deadline expiry.
    pub fn broadcast(&mut self, root: usize, data: &mut Vec<f64>) {
        if let Err(e) = self.try_broadcast(root, data) {
            self.escalate(e);
        }
    }

    /// Fallible form of [`Rank::broadcast`].
    pub fn try_broadcast(&mut self, root: usize, data: &mut Vec<f64>) -> Result<(), CommError> {
        let tag = self.next_collective_tag();
        if self.size == 1 {
            return Ok(());
        }
        self.fault_op();
        let bytes = data.len() * 8;
        if self.id == root {
            let done = self.clock + self.net.tree_collective_time(bytes, self.size);
            self.clock = done;
            for to in 0..self.size {
                if to != root {
                    let msg = self.make_msg(tag, data.clone(), done, None);
                    self.post(to, msg)?;
                }
            }
        } else {
            let msg = self.recv_raw(root, tag)?;
            *data = msg.payload;
            self.clock = self.clock.max(msg.clock);
        }
        Ok(())
    }

    /// Gather each rank's `data` to the root; `Some(rows)` on root (indexed
    /// by rank), `None` elsewhere. Panics (structured) on rank failure or
    /// deadline expiry.
    pub fn gather(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        match self.try_gather(root, data) {
            Ok(rows) => rows,
            Err(e) => self.escalate(e),
        }
    }

    /// Fallible form of [`Rank::gather`].
    pub fn try_gather(
        &mut self,
        root: usize,
        data: &[f64],
    ) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        let tag = self.next_collective_tag();
        self.fault_op();
        if self.id == root {
            let mut rows: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            rows[root] = data.to_vec();
            let mut max_clock = self.clock;
            // Index loop: `recv_raw` needs `&mut self`, so `rows` cannot be
            // borrowed through `iter_mut` across the receives.
            #[allow(clippy::needless_range_loop)]
            for from in 0..self.size {
                if from == root {
                    continue;
                }
                let msg = self.recv_raw(from, tag)?;
                max_clock = max_clock.max(msg.clock);
                rows[from] = msg.payload;
            }
            self.clock = max_clock + self.net.gather_time(data.len() * 8, self.size);
            Ok(Some(rows))
        } else {
            self.send_raw(root, tag, data.to_vec())?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, NetworkModel::ideal(), |r| {
            r.barrier();
            let s = r.allreduce_sum_scalar(5.0);
            (r.id(), s)
        });
        assert_eq!(out, vec![(0, 5.0)]);
    }

    #[test]
    fn point_to_point_ring() {
        let n = 6;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let next = (r.id() + 1) % n;
            let prev = (r.id() + n - 1) % n;
            r.send(next, 7, &[r.id() as f64]);
            let got = r.recv(prev, 7);
            got[0] as usize
        });
        for (id, got) in out.iter().enumerate() {
            assert_eq!(*got, (id + n - 1) % n);
        }
    }

    #[test]
    fn allreduce_sum_correct() {
        let n = 8;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let mut v = vec![r.id() as f64, 1.0];
            r.allreduce_sum(&mut v);
            v
        });
        let want = vec![(0..8).sum::<usize>() as f64, 8.0];
        for v in out {
            assert_eq!(v, want);
        }
    }

    #[test]
    fn allreduce_max_correct() {
        let out = World::run(5, NetworkModel::ideal(), |r| {
            let mut v = vec![-(r.id() as f64), r.id() as f64];
            r.allreduce_max(&mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![0.0, 4.0]);
        }
    }

    #[test]
    fn collective_synchronizes_clocks() {
        let out = World::run(4, NetworkModel::slingshot11(), |r| {
            // Rank 2 is slow.
            r.advance(if r.id() == 2 { 1.0 } else { 0.1 });
            r.barrier();
            r.time()
        });
        // Everyone ends at the same completion time >= slowest entry.
        let t0 = out[0];
        assert!(t0 >= 1.0);
        for t in &out {
            assert!((t - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_delivers_root_data() {
        let out = World::run(4, NetworkModel::slingshot11(), |r| {
            let mut v = if r.id() == 1 {
                vec![3.5, -2.0]
            } else {
                vec![0.0, 0.0]
            };
            r.broadcast(1, &mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![3.5, -2.0]);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let out = World::run(3, NetworkModel::ideal(), |r| {
            r.gather(0, &[r.id() as f64 * 10.0])
        });
        let rows = out[0].as_ref().expect("root has rows");
        assert_eq!(rows[0], vec![0.0]);
        assert_eq!(rows[1], vec![10.0]);
        assert_eq!(rows[2], vec![20.0]);
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn tags_demultiplex_out_of_order_sends() {
        let out = World::run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                // Send tag 2 first, tag 1 second.
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                // Receive tag 1 first: must skip the tag-2 message.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn comm_time_grows_with_rank_count() {
        let time_for = |p: usize| {
            let out = World::run(p, NetworkModel::slingshot11(), |r| {
                let mut v = vec![0.0; 1024];
                for _ in 0..10 {
                    r.allreduce_sum(&mut v);
                }
                r.time()
            });
            out[0]
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        assert!(t16 > t4, "t4={t4} t16={t16}");
    }

    #[test]
    fn modeled_messages_cost_time_without_payload() {
        let out = World::run(2, NetworkModel::slingshot11(), |r| {
            if r.id() == 0 {
                r.send_modeled(1, 9, 1 << 30); // "1 GiB" halo
                0.0
            } else {
                let bytes = r.recv_modeled(0, 9);
                assert_eq!(bytes, 1 << 30);
                r.time()
            }
        });
        // 1 GiB over NVLink (same node) at 600 GB/s ~ 1.8 ms.
        assert!(out[1] > 1e-3, "modeled transfer time {}", out[1]);
    }

    #[test]
    fn repeated_collectives_use_distinct_tags() {
        // Two back-to-back allreduces must not cross-talk.
        let out = World::run(3, NetworkModel::ideal(), |r| {
            let mut a = vec![1.0];
            r.allreduce_sum(&mut a);
            let mut b = vec![10.0];
            r.allreduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in out {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
        }
    }
}
