//! Rank-per-thread message passing with simulated clocks.
//!
//! QXMD's global-local SCF needs: point-to-point exchange of domain
//! boundaries, allreduce of the global density/energy, broadcast of the
//! global potential, and gathers for diagnostics. Each rank carries a
//! simulated clock: `advance()` adds *measured* local compute time, and
//! every communication operation adds *modeled* network time from
//! [`NetworkModel`], so a laptop reproduces full-machine timing structure.

use crate::network::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// A message between ranks: payload of f64 words plus the sender's clock.
/// `logical_bytes` lets scaling drivers model full-size transfers without
/// materializing the data.
#[derive(Clone, Debug)]
struct Message {
    from: usize,
    tag: u64,
    payload: Vec<f64>,
    clock: f64,
    logical_bytes: Option<u64>,
}

/// Internal tag namespace for collectives (user tags must stay below).
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

/// The communicator world; spawns one OS thread per rank.
#[derive(Debug)]
pub struct World;

impl World {
    /// Run `f` on `nranks` ranks in parallel and return each rank's result,
    /// ordered by rank id. Panics in any rank propagate.
    ///
    /// ```
    /// use dcmesh_comm::{NetworkModel, World};
    /// let sums = World::run(4, NetworkModel::ideal(), |rank| {
    ///     rank.allreduce_sum_scalar(rank.id() as f64)
    /// });
    /// assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
    /// ```
    pub fn run<T, F>(nranks: usize, net: NetworkModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Rank) -> T + Sync,
    {
        assert!(nranks >= 1, "need at least one rank");
        let mut senders: Vec<Sender<Message>> = Vec::with_capacity(nranks);
        let mut receivers: Vec<Option<Receiver<Message>>> = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(Some(r));
        }
        let senders_ref = &senders;
        let f_ref = &f;
        let net_ref = &net;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nranks);
            for (id, recv_slot) in receivers.iter_mut().enumerate() {
                let receiver = recv_slot.take().expect("receiver taken once");
                handles.push(scope.spawn(move || {
                    let mut rank = Rank {
                        id,
                        size: nranks,
                        senders: senders_ref.to_vec(),
                        receiver,
                        pending: Vec::new(),
                        clock: 0.0,
                        net: net_ref.clone(),
                        collective_seq: 0,
                    };
                    f_ref(&mut rank)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank panicked"))
                .collect()
        })
    }
}

/// One rank's endpoint: identity, point-to-point plumbing, collectives,
/// and the simulated clock.
pub struct Rank {
    id: usize,
    size: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    pending: Vec<Message>,
    clock: f64,
    net: NetworkModel,
    collective_seq: u64,
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("id", &self.id)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl Rank {
    /// This rank's id in `0..size()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Simulated wall-clock of this rank, seconds.
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// Add measured local compute time to the simulated clock.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "cannot advance clock backwards");
        self.clock += seconds;
    }

    /// Network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Non-blocking send of `payload` to rank `to` with a user `tag`
    /// (must be < 2^60; higher tags are reserved for collectives).
    pub fn send(&self, to: usize, tag: u64, payload: &[f64]) {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        self.send_raw(to, tag, payload.to_vec());
    }

    fn send_raw(&self, to: usize, tag: u64, payload: Vec<f64>) {
        dcmesh_obs::metrics::counter_add("comm.send_bytes", (payload.len() * 8) as u64);
        let msg = Message {
            from: self.id,
            tag,
            payload,
            clock: self.clock,
            logical_bytes: None,
        };
        self.senders[to].send(msg).expect("receiver hung up");
    }

    /// Blocking selective receive from rank `from` with matching `tag`.
    /// Advances the clock to the modeled arrival time.
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        let msg = self.recv_raw(from, tag);
        let bytes = msg.payload.len() * 8;
        let latency = self.net.p2p_time(bytes, from, self.id);
        self.clock = self.clock.max(msg.clock + latency);
        self.record_p2p(from, bytes as u64, latency);
        msg.payload
    }

    /// Feed modeled p2p traffic into the metrics registry: total exchanged
    /// bytes plus a per-neighbor latency histogram. No-op (and no
    /// allocation) when the collector is disabled.
    fn record_p2p(&self, from: usize, bytes: u64, latency_s: f64) {
        if !dcmesh_obs::enabled() {
            return;
        }
        dcmesh_obs::metrics::counter_add("comm.recv_bytes", bytes);
        dcmesh_obs::metrics::histogram_record(
            &format!("comm.p2p_latency_s.from_{from}"),
            latency_s,
        );
    }

    /// Non-blocking send of a *modeled* message: no payload is
    /// materialized, but the receiver's clock advances as if
    /// `logical_bytes` had crossed the fabric. Scaling drivers use this to
    /// model full-size halo exchanges without allocating them.
    pub fn send_modeled(&self, to: usize, tag: u64, logical_bytes: u64) {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        dcmesh_obs::metrics::counter_add("comm.send_bytes", logical_bytes);
        let msg = Message {
            from: self.id,
            tag,
            payload: Vec::new(),
            clock: self.clock,
            logical_bytes: Some(logical_bytes),
        };
        self.senders[to].send(msg).expect("receiver hung up");
    }

    /// Blocking receive of a modeled message; advances the clock by the
    /// modeled transfer time of its logical size.
    pub fn recv_modeled(&mut self, from: usize, tag: u64) -> u64 {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must be < 2^60");
        let msg = self.recv_raw(from, tag);
        let bytes = msg.logical_bytes.unwrap_or((msg.payload.len() * 8) as u64);
        let latency = self.net.p2p_time(bytes as usize, from, self.id);
        self.clock = self.clock.max(msg.clock + latency);
        self.record_p2p(from, bytes, latency);
        bytes
    }

    fn recv_raw(&mut self, from: usize, tag: u64) -> Message {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.pending.remove(pos);
        }
        loop {
            let msg = self.receiver.recv().expect("all senders hung up");
            if msg.from == from && msg.tag == tag {
                return msg;
            }
            self.pending.push(msg);
        }
    }

    fn next_collective_tag(&mut self) -> u64 {
        self.collective_seq += 1;
        COLLECTIVE_TAG_BASE + self.collective_seq
    }

    /// Allreduce with an arbitrary elementwise combiner; result replaces
    /// `data` on every rank. Clocks synchronize to
    /// `max(entry clocks) + tree_collective_time`.
    pub fn allreduce_with(&mut self, data: &mut [f64], combine: impl Fn(f64, f64) -> f64) {
        let tag = self.next_collective_tag();
        let bytes = data.len() * 8;
        if self.size == 1 {
            return;
        }
        if self.id == 0 {
            let mut max_clock = self.clock;
            for from in 1..self.size {
                let msg = self.recv_raw(from, tag);
                max_clock = max_clock.max(msg.clock);
                for (d, v) in data.iter_mut().zip(&msg.payload) {
                    *d = combine(*d, *v);
                }
            }
            let coll = self.net.tree_collective_time(bytes, self.size);
            let done = max_clock + coll;
            self.clock = done;
            dcmesh_obs::metrics::counter_add("comm.collective_bytes", bytes as u64);
            dcmesh_obs::metrics::histogram_record("comm.collective_latency_s", coll);
            for to in 1..self.size {
                let msg = Message {
                    from: 0,
                    tag,
                    payload: data.to_vec(),
                    clock: done,
                    logical_bytes: None,
                };
                self.senders[to].send(msg).expect("receiver hung up");
            }
        } else {
            self.send_raw(0, tag, data.to_vec());
            let msg = self.recv_raw(0, tag);
            data.copy_from_slice(&msg.payload);
            self.clock = msg.clock; // collective completion time
        }
    }

    /// Elementwise sum allreduce.
    pub fn allreduce_sum(&mut self, data: &mut [f64]) {
        self.allreduce_with(data, |a, b| a + b);
    }

    /// Elementwise max allreduce.
    pub fn allreduce_max(&mut self, data: &mut [f64]) {
        self.allreduce_with(data, f64::max);
    }

    /// Scalar sum allreduce convenience.
    pub fn allreduce_sum_scalar(&mut self, x: f64) -> f64 {
        let mut buf = [x];
        self.allreduce_sum(&mut buf);
        buf[0]
    }

    /// Barrier: zero-byte allreduce.
    pub fn barrier(&mut self) {
        self.allreduce_with(&mut [], |a, _| a);
    }

    /// Broadcast `data` from `root` to all ranks.
    pub fn broadcast(&mut self, root: usize, data: &mut Vec<f64>) {
        let tag = self.next_collective_tag();
        if self.size == 1 {
            return;
        }
        let bytes = data.len() * 8;
        if self.id == root {
            let done = self.clock + self.net.tree_collective_time(bytes, self.size);
            self.clock = done;
            for to in 0..self.size {
                if to != root {
                    let msg = Message {
                        from: root,
                        tag,
                        payload: data.clone(),
                        clock: done,
                        logical_bytes: None,
                    };
                    self.senders[to].send(msg).expect("receiver hung up");
                }
            }
        } else {
            let msg = self.recv_raw(root, tag);
            *data = msg.payload;
            self.clock = self.clock.max(msg.clock);
        }
    }

    /// Gather each rank's `data` to the root; `Some(rows)` on root (indexed
    /// by rank), `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        let tag = self.next_collective_tag();
        if self.id == root {
            let mut rows: Vec<Vec<f64>> = vec![Vec::new(); self.size];
            rows[root] = data.to_vec();
            let mut max_clock = self.clock;
            for (from, row) in rows.iter_mut().enumerate() {
                if from == root {
                    continue;
                }
                let msg = self.recv_raw(from, tag);
                max_clock = max_clock.max(msg.clock);
                *row = msg.payload;
            }
            self.clock = max_clock + self.net.gather_time(data.len() * 8, self.size);
            Some(rows)
        } else {
            self.send_raw(root, tag, data.to_vec());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, NetworkModel::ideal(), |r| {
            r.barrier();
            let s = r.allreduce_sum_scalar(5.0);
            (r.id(), s)
        });
        assert_eq!(out, vec![(0, 5.0)]);
    }

    #[test]
    fn point_to_point_ring() {
        let n = 6;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let next = (r.id() + 1) % n;
            let prev = (r.id() + n - 1) % n;
            r.send(next, 7, &[r.id() as f64]);
            let got = r.recv(prev, 7);
            got[0] as usize
        });
        for (id, got) in out.iter().enumerate() {
            assert_eq!(*got, (id + n - 1) % n);
        }
    }

    #[test]
    fn allreduce_sum_correct() {
        let n = 8;
        let out = World::run(n, NetworkModel::slingshot11(), |r| {
            let mut v = vec![r.id() as f64, 1.0];
            r.allreduce_sum(&mut v);
            v
        });
        let want = vec![(0..8).sum::<usize>() as f64, 8.0];
        for v in out {
            assert_eq!(v, want);
        }
    }

    #[test]
    fn allreduce_max_correct() {
        let out = World::run(5, NetworkModel::ideal(), |r| {
            let mut v = vec![-(r.id() as f64), r.id() as f64];
            r.allreduce_max(&mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![0.0, 4.0]);
        }
    }

    #[test]
    fn collective_synchronizes_clocks() {
        let out = World::run(4, NetworkModel::slingshot11(), |r| {
            // Rank 2 is slow.
            r.advance(if r.id() == 2 { 1.0 } else { 0.1 });
            r.barrier();
            r.time()
        });
        // Everyone ends at the same completion time >= slowest entry.
        let t0 = out[0];
        assert!(t0 >= 1.0);
        for t in &out {
            assert!((t - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_delivers_root_data() {
        let out = World::run(4, NetworkModel::slingshot11(), |r| {
            let mut v = if r.id() == 1 {
                vec![3.5, -2.0]
            } else {
                vec![0.0, 0.0]
            };
            r.broadcast(1, &mut v);
            v
        });
        for v in out {
            assert_eq!(v, vec![3.5, -2.0]);
        }
    }

    #[test]
    fn gather_collects_by_rank() {
        let out = World::run(3, NetworkModel::ideal(), |r| {
            r.gather(0, &[r.id() as f64 * 10.0])
        });
        let rows = out[0].as_ref().expect("root has rows");
        assert_eq!(rows[0], vec![0.0]);
        assert_eq!(rows[1], vec![10.0]);
        assert_eq!(rows[2], vec![20.0]);
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn tags_demultiplex_out_of_order_sends() {
        let out = World::run(2, NetworkModel::ideal(), |r| {
            if r.id() == 0 {
                // Send tag 2 first, tag 1 second.
                r.send(1, 2, &[2.0]);
                r.send(1, 1, &[1.0]);
                vec![]
            } else {
                // Receive tag 1 first: must skip the tag-2 message.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn comm_time_grows_with_rank_count() {
        let time_for = |p: usize| {
            let out = World::run(p, NetworkModel::slingshot11(), |r| {
                let mut v = vec![0.0; 1024];
                for _ in 0..10 {
                    r.allreduce_sum(&mut v);
                }
                r.time()
            });
            out[0]
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        assert!(t16 > t4, "t4={t4} t16={t16}");
    }

    #[test]
    fn modeled_messages_cost_time_without_payload() {
        let out = World::run(2, NetworkModel::slingshot11(), |r| {
            if r.id() == 0 {
                r.send_modeled(1, 9, 1 << 30); // "1 GiB" halo
                0.0
            } else {
                let bytes = r.recv_modeled(0, 9);
                assert_eq!(bytes, 1 << 30);
                r.time()
            }
        });
        // 1 GiB over NVLink (same node) at 600 GB/s ~ 1.8 ms.
        assert!(out[1] > 1e-3, "modeled transfer time {}", out[1]);
    }

    #[test]
    fn repeated_collectives_use_distinct_tags() {
        // Two back-to-back allreduces must not cross-talk.
        let out = World::run(3, NetworkModel::ideal(), |r| {
            let mut a = vec![1.0];
            r.allreduce_sum(&mut a);
            let mut b = vec![10.0];
            r.allreduce_sum(&mut b);
            (a[0], b[0])
        });
        for (a, b) in out {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
        }
    }
}
