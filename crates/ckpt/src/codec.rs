//! Self-describing binary encoding for checkpoint payloads.
//!
//! Every field carries a one-byte type tag, and every variable-length
//! field a `u64` length prefix, so a decoder reading a truncated,
//! corrupted, or simply *wrong* payload fails with a typed error at the
//! first mismatched field instead of silently reinterpreting bytes.
//! Floating-point values round-trip through `to_le_bytes`/`from_le_bytes`
//! bit-for-bit — the restart-equivalence guarantee (resume a trajectory
//! bitwise) rests on this.

use std::fmt;

/// Errors from checkpoint encoding, decoding, and file I/O.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// Underlying file-system error (message carries the `io::Error`).
    Io(String),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The container version is not [`crate::FORMAT_VERSION`].
    BadVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The payload checksum does not match the header.
    BadChecksum,
    /// The file ends before the declared payload does.
    Truncated,
    /// A payload field failed to decode (wrong tag, bad length, bad value).
    Corrupt(String),
    /// The snapshot was taken under a different simulation configuration.
    ConfigMismatch,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a dcmesh checkpoint (bad magic)"),
            CkptError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {})",
                    crate::FORMAT_VERSION
                )
            }
            CkptError::BadChecksum => write!(f, "checkpoint payload checksum mismatch"),
            CkptError::Truncated => write!(f, "checkpoint file truncated"),
            CkptError::Corrupt(what) => write!(f, "corrupt checkpoint payload: {what}"),
            CkptError::ConfigMismatch => {
                write!(f, "checkpoint was taken under a different configuration")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e.to_string())
    }
}

const TAG_U64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_F64_SLICE: u8 = 3;
const TAG_BYTES: u8 = 4;
const TAG_BOOL: u8 = 5;

/// FNV-1a 64-bit checksum over a byte slice.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Append-only payload builder.
#[derive(Clone, Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Payload size so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.push(TAG_U64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` (stored as `u64`).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.push(TAG_F64);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(TAG_BOOL);
        self.buf.push(v as u8);
    }

    /// Append a length-prefixed `f64` slice bit-exactly.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.buf.push(TAG_F64_SLICE);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        for x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Append length-prefixed raw bytes (e.g. a nested payload).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.push(TAG_BYTES);
        self.buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(v);
    }
}

/// Sequential payload reader; every `take_*` validates the field tag.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take_raw(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CkptError::Truncated)?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn expect_tag(&mut self, want: u8, what: &str) -> Result<(), CkptError> {
        let got = self.take_raw(1)?[0];
        if got != want {
            return Err(CkptError::Corrupt(format!(
                "expected {what} field (tag {want}), found tag {got} at offset {}",
                self.pos - 1
            )));
        }
        Ok(())
    }

    /// Read a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CkptError> {
        self.expect_tag(TAG_U64, "u64")?;
        let b = self.take_raw(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a `usize`, rejecting values that do not fit.
    pub fn take_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| CkptError::Corrupt(format!("usize overflow: {v}")))
    }

    /// Read an `f64` bit-exactly.
    pub fn take_f64(&mut self) -> Result<f64, CkptError> {
        self.expect_tag(TAG_F64, "f64")?;
        let b = self.take_raw(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a bool.
    pub fn take_bool(&mut self) -> Result<bool, CkptError> {
        self.expect_tag(TAG_BOOL, "bool")?;
        match self.take_raw(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    /// Read a length-prefixed `f64` slice bit-exactly.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, CkptError> {
        self.expect_tag(TAG_F64_SLICE, "f64 slice")?;
        let n = u64::from_le_bytes(self.take_raw(8)?.try_into().expect("8 bytes"));
        let n = usize::try_from(n).map_err(|_| CkptError::Corrupt("slice too long".into()))?;
        let bytes = self
            .take_raw(n.checked_mul(8).ok_or(CkptError::Truncated)?)
            .map_err(|_| CkptError::Truncated)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Read length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        self.expect_tag(TAG_BYTES, "bytes")?;
        let n = u64::from_le_bytes(self.take_raw(8)?.try_into().expect("8 bytes"));
        let n = usize::try_from(n).map_err(|_| CkptError::Corrupt("bytes too long".into()))?;
        self.take_raw(n).map_err(|_| CkptError::Truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_field_kind() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        e.put_usize(12345);
        e.put_f64(-0.0);
        e.put_f64(f64::MIN_POSITIVE);
        e.put_bool(true);
        e.put_f64_slice(&[1.0, f64::NAN, -3.5e300]);
        e.put_bytes(b"nested");
        let payload = e.finish();
        let mut d = Decoder::new(&payload);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_usize().unwrap(), 12345);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.take_f64().unwrap(), f64::MIN_POSITIVE);
        assert!(d.take_bool().unwrap());
        let v = d.take_f64_vec().unwrap();
        assert_eq!(v[0].to_bits(), 1.0f64.to_bits());
        assert_eq!(v[1].to_bits(), f64::NAN.to_bits());
        assert_eq!(v[2], -3.5e300);
        assert_eq!(d.take_bytes().unwrap(), b"nested");
        assert!(d.is_done());
    }

    #[test]
    fn wrong_tag_is_a_typed_error() {
        let mut e = Encoder::new();
        e.put_u64(1);
        let payload = e.finish();
        let mut d = Decoder::new(&payload);
        assert!(matches!(d.take_f64(), Err(CkptError::Corrupt(_))));
    }

    #[test]
    fn truncated_payload_is_detected() {
        let mut e = Encoder::new();
        e.put_f64_slice(&[1.0, 2.0, 3.0]);
        let payload = e.finish();
        let mut d = Decoder::new(&payload[..payload.len() - 4]);
        assert_eq!(d.take_f64_vec(), Err(CkptError::Truncated));
    }

    #[test]
    fn checksum_changes_on_any_flip() {
        let mut e = Encoder::new();
        e.put_f64_slice(&[0.25; 16]);
        let payload = e.finish();
        let base = checksum64(&payload);
        for i in 0..payload.len() {
            let mut copy = payload.clone();
            copy[i] ^= 0x01;
            assert_ne!(checksum64(&copy), base, "flip at byte {i} undetected");
        }
    }
}
