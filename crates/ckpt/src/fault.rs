//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes which faults to inject: message drops, delays
//! and duplications (by probability), a rank kill at a chosen communication
//! operation, and a NaN planted in a kernel output at a chosen step. The
//! plan is installed globally ([`install`] or [`install_from_env`] via
//! `DCMESH_FAULT_PLAN`) and queried from the comm and engine hot paths.
//!
//! Two properties make the injected faults debuggable:
//!
//! * **Disarmed is free.** With no plan installed every query is a single
//!   relaxed atomic load — the same contract as the `dcmesh-obs` collector.
//! * **Decisions are deterministic.** Each per-message decision hashes
//!   `(plan seed, from, to, tag, sequence number)` through SplitMix64, so
//!   whether a given message is dropped does not depend on thread
//!   interleaving and a failing run replays exactly.
//!
//! Every injected fault increments `faults.injected` plus a per-kind
//! counter (`faults.dropped`, `faults.delayed`, ...).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};

/// The kinds of fault a [`FaultPlan`] can inject.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A message silently discarded in transit.
    Drop,
    /// A message delivered with extra modeled latency.
    Delay,
    /// A message delivered twice.
    Duplicate,
    /// A rank panicking at a chosen communication operation.
    Kill,
    /// A NaN planted in a kernel output.
    Nan,
}

impl FaultKind {
    fn metric(self) -> &'static str {
        match self {
            FaultKind::Drop => "faults.dropped",
            FaultKind::Delay => "faults.delayed",
            FaultKind::Duplicate => "faults.duplicated",
            FaultKind::Kill => "faults.killed",
            FaultKind::Nan => "faults.nan",
        }
    }
}

/// What the comm layer should do with one message.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum MessageAction {
    /// Deliver normally.
    Deliver,
    /// Discard the message.
    Drop,
    /// Deliver with this many extra modeled seconds of latency.
    Delay(f64),
    /// Deliver the message twice.
    Duplicate,
}

/// A declarative description of the faults to inject into one run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message fault decisions.
    pub seed: u64,
    /// Probability a point-to-point message is dropped.
    pub drop_prob: f64,
    /// Probability a message is delayed.
    pub delay_prob: f64,
    /// Extra modeled latency (seconds) applied to a delayed message.
    pub delay_s: f64,
    /// Probability a message is duplicated.
    pub dup_prob: f64,
    /// Defer each duplicate copy until the sender has posted this many
    /// *further* messages (0 = replay immediately, adjacent to the
    /// original). A deferred duplicate models a retransmitted packet
    /// surfacing long after the original — the adversarial case for any
    /// bounded receive-side dedup window.
    pub dup_defer_msgs: u64,
    /// Kill rank `.0` when it performs its `.1`-th communication operation.
    pub kill_rank: Option<(usize, u64)>,
    /// Plant a NaN in a kernel output at this engine step (one-shot).
    pub nan_at_step: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_s: 0.0,
            dup_prob: 0.0,
            dup_defer_msgs: 0,
            kill_rank: None,
            nan_at_step: None,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn none() -> Self {
        Self::default()
    }

    /// Parse the `DCMESH_FAULT_PLAN` syntax: comma-separated directives
    /// `seed=N`, `drop=P`, `delay=P@S` (probability `P`, extra seconds
    /// `S`), `dup=P` or `dup=P@N` (replay the duplicate after `N` further
    /// sends), `kill=R@OP` (rank `R` at its `OP`-th comm operation),
    /// `nan@STEP`.
    ///
    /// Example: `seed=42,drop=0.1,delay=0.5@0.25,kill=1@3,nan@2`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(v) = part.strip_prefix("seed=") {
                plan.seed = v.parse().map_err(|_| format!("bad seed: {part}"))?;
            } else if let Some(v) = part.strip_prefix("drop=") {
                plan.drop_prob = parse_prob(v, part)?;
            } else if let Some(v) = part.strip_prefix("delay=") {
                let (p, s) = v
                    .split_once('@')
                    .ok_or_else(|| format!("delay needs P@S: {part}"))?;
                plan.delay_prob = parse_prob(p, part)?;
                plan.delay_s = s
                    .parse()
                    .map_err(|_| format!("bad delay seconds: {part}"))?;
            } else if let Some(v) = part.strip_prefix("dup=") {
                match v.split_once('@') {
                    Some((p, defer)) => {
                        plan.dup_prob = parse_prob(p, part)?;
                        plan.dup_defer_msgs = defer
                            .parse()
                            .map_err(|_| format!("bad dup defer count: {part}"))?;
                    }
                    None => plan.dup_prob = parse_prob(v, part)?,
                }
            } else if let Some(v) = part.strip_prefix("kill=") {
                let (r, op) = v
                    .split_once('@')
                    .ok_or_else(|| format!("kill needs RANK@OP: {part}"))?;
                plan.kill_rank = Some((
                    r.parse().map_err(|_| format!("bad kill rank: {part}"))?,
                    op.parse().map_err(|_| format!("bad kill op: {part}"))?,
                ));
            } else if let Some(v) = part.strip_prefix("nan@") {
                plan.nan_at_step = Some(v.parse().map_err(|_| format!("bad nan step: {part}"))?);
            } else {
                return Err(format!("unknown fault directive: {part}"));
            }
        }
        Ok(plan)
    }

    /// Render the plan back into the `DCMESH_FAULT_PLAN` spec syntax
    /// (the inverse of [`FaultPlan::parse`]); empty for a no-op plan with
    /// the default seed. Run records embed this so a telemetry diff can
    /// tell a faulted run from a clean one.
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        if self.drop_prob > 0.0 {
            parts.push(format!("drop={}", self.drop_prob));
        }
        if self.delay_prob > 0.0 {
            parts.push(format!("delay={}@{}", self.delay_prob, self.delay_s));
        }
        if self.dup_prob > 0.0 {
            if self.dup_defer_msgs > 0 {
                parts.push(format!("dup={}@{}", self.dup_prob, self.dup_defer_msgs));
            } else {
                parts.push(format!("dup={}", self.dup_prob));
            }
        }
        if let Some((r, op)) = self.kill_rank {
            parts.push(format!("kill={r}@{op}"));
        }
        if let Some(step) = self.nan_at_step {
            parts.push(format!("nan@{step}"));
        }
        parts.join(",")
    }
}

fn parse_prob(v: &str, part: &str) -> Result<f64, String> {
    let p: f64 = v.parse().map_err(|_| format!("bad probability: {part}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability out of [0, 1]: {part}"));
    }
    Ok(p)
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);
/// Set once the plan's NaN injection has fired; never rearms, so a
/// rollback that replays the trigger step does not loop forever.
static NAN_CONSUMED: AtomicBool = AtomicBool::new(false);

/// True when a fault plan is installed. One relaxed load; the fast path
/// for every injection site.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Install `plan` globally, arming the injection sites.
pub fn install(plan: FaultPlan) {
    *PLAN.write().expect("fault plan lock poisoned") = Some(plan);
    NAN_CONSUMED.store(false, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

/// Remove any installed plan, disarming the injection sites.
pub fn clear() {
    ARMED.store(false, Ordering::Relaxed);
    *PLAN.write().expect("fault plan lock poisoned") = None;
    NAN_CONSUMED.store(false, Ordering::Relaxed);
}

/// Install a plan from `DCMESH_FAULT_PLAN` if the variable is set.
/// Returns whether a plan was installed; panics on a malformed spec
/// (a silently ignored fault plan would defeat the test it gates).
pub fn install_from_env() -> bool {
    match std::env::var("DCMESH_FAULT_PLAN") {
        Ok(spec) if !spec.trim().is_empty() => {
            let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("DCMESH_FAULT_PLAN: {e}"));
            install(plan);
            true
        }
        _ => false,
    }
}

/// A clone of the installed plan, if any — one relaxed load when
/// disarmed. Telemetry records this in the run record so faulted runs
/// are distinguishable from clean ones.
pub fn current() -> Option<FaultPlan> {
    with_plan(FaultPlan::clone)
}

fn with_plan<T>(f: impl FnOnce(&FaultPlan) -> T) -> Option<T> {
    if !armed() {
        return None;
    }
    PLAN.read()
        .expect("fault plan lock poisoned")
        .as_ref()
        .map(f)
}

fn record(kind: FaultKind) {
    dcmesh_obs::metrics::counter_add("faults.injected", 1);
    dcmesh_obs::metrics::counter_add(kind.metric(), 1);
}

/// SplitMix64 output mix: the per-message decision hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash a message identity plus a per-decision salt into a uniform
/// draw in `[0, 1)`.
fn draw(plan_seed: u64, salt: u64, from: usize, to: usize, tag: u64, seq: u64) -> f64 {
    let mut h = mix(plan_seed ^ salt);
    h = mix(h ^ from as u64);
    h = mix(h ^ to as u64);
    h = mix(h ^ tag);
    h = mix(h ^ seq);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_DROP: u64 = 0xD509;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_DUP: u64 = 0xD0B1;

/// Decide the fate of one point-to-point message. Deterministic in the
/// message identity `(from, to, tag, seq)` and the plan seed — independent
/// of thread interleaving. Records fault metrics for non-`Deliver`
/// outcomes.
pub fn message_action(from: usize, to: usize, tag: u64, seq: u64) -> MessageAction {
    with_plan(|plan| {
        if plan.drop_prob > 0.0 && draw(plan.seed, SALT_DROP, from, to, tag, seq) < plan.drop_prob {
            record(FaultKind::Drop);
            return MessageAction::Drop;
        }
        if plan.delay_prob > 0.0
            && draw(plan.seed, SALT_DELAY, from, to, tag, seq) < plan.delay_prob
        {
            record(FaultKind::Delay);
            return MessageAction::Delay(plan.delay_s);
        }
        if plan.dup_prob > 0.0 && draw(plan.seed, SALT_DUP, from, to, tag, seq) < plan.dup_prob {
            record(FaultKind::Duplicate);
            return MessageAction::Duplicate;
        }
        MessageAction::Deliver
    })
    .unwrap_or(MessageAction::Deliver)
}

/// How many subsequent messages the sender should post before replaying a
/// duplicate copy (see [`FaultPlan::dup_defer_msgs`]). Zero — replay
/// immediately — when disarmed or unset; one relaxed load when disarmed.
pub fn dup_defer() -> u64 {
    with_plan(|plan| plan.dup_defer_msgs).unwrap_or(0)
}

/// True when `rank` should die at its `op`-th communication operation.
/// Records the kill when it fires.
pub fn should_kill(rank: usize, op: u64) -> bool {
    let kill = with_plan(|plan| plan.kill_rank == Some((rank, op))).unwrap_or(false);
    if kill {
        record(FaultKind::Kill);
    }
    kill
}

/// True exactly once, when the engine reaches the plan's NaN step. The
/// injection is consumed on first fire so a checkpoint rollback that
/// replays the same step recovers instead of re-tripping the fault.
pub fn consume_nan_injection(step: u64) -> bool {
    let due = with_plan(|plan| plan.nan_at_step == Some(step)).unwrap_or(false);
    if due && !NAN_CONSUMED.swap(true, Ordering::Relaxed) {
        record(FaultKind::Nan);
        return true;
    }
    false
}

static TEST_GUARD: Mutex<()> = Mutex::new(());

/// Serialize access to the global plan across tests (the plan is
/// process-global state). Returns a guard; hold it for the duration of
/// any test that installs a plan.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with `plan` installed, clearing it afterwards (even on panic
/// the next [`with_installed`]/[`install`] call resets the state). Tests
/// touching the global plan are serialized through an internal lock.
pub fn with_installed<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    let _guard = test_lock();
    install(plan);
    let out = f();
    clear();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injects_nothing() {
        let _guard = test_lock();
        clear();
        assert!(!armed());
        for seq in 0..1000 {
            assert_eq!(message_action(0, 1, 7, seq), MessageAction::Deliver);
        }
        assert!(!should_kill(0, 0));
        assert!(!consume_nan_injection(0));
    }

    #[test]
    fn drop_rate_matches_probability_and_is_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.25,
            ..FaultPlan::none()
        };
        with_installed(plan, || {
            let first: Vec<MessageAction> =
                (0..4000).map(|seq| message_action(0, 1, 3, seq)).collect();
            let second: Vec<MessageAction> =
                (0..4000).map(|seq| message_action(0, 1, 3, seq)).collect();
            assert_eq!(first, second, "decisions must be replayable");
            let dropped = first.iter().filter(|a| **a == MessageAction::Drop).count() as f64;
            let rate = dropped / first.len() as f64;
            assert!((rate - 0.25).abs() < 0.05, "drop rate {rate}");
        });
    }

    #[test]
    fn delay_and_duplicate_fire() {
        let plan = FaultPlan {
            seed: 7,
            delay_prob: 0.5,
            delay_s: 0.125,
            dup_prob: 0.5,
            ..FaultPlan::none()
        };
        with_installed(plan, || {
            let actions: Vec<MessageAction> =
                (0..256).map(|seq| message_action(1, 0, 9, seq)).collect();
            assert!(actions.contains(&MessageAction::Delay(0.125)));
            assert!(actions.contains(&MessageAction::Duplicate));
        });
    }

    #[test]
    fn kill_targets_exactly_one_rank_and_op() {
        let plan = FaultPlan {
            kill_rank: Some((2, 5)),
            ..FaultPlan::none()
        };
        with_installed(plan, || {
            assert!(!should_kill(2, 4));
            assert!(!should_kill(1, 5));
            assert!(should_kill(2, 5));
        });
    }

    #[test]
    fn nan_injection_is_one_shot() {
        let plan = FaultPlan {
            nan_at_step: Some(3),
            ..FaultPlan::none()
        };
        with_installed(plan, || {
            assert!(!consume_nan_injection(2));
            assert!(consume_nan_injection(3));
            // A rollback replaying step 3 must not re-trip the fault.
            assert!(!consume_nan_injection(3));
        });
    }

    #[test]
    fn parse_full_spec() {
        let plan =
            FaultPlan::parse("seed=42, drop=0.1, delay=0.5@0.25, dup=0.2@100, kill=1@3, nan@2")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop_prob, 0.1);
        assert_eq!(plan.delay_prob, 0.5);
        assert_eq!(plan.delay_s, 0.25);
        assert_eq!(plan.dup_prob, 0.2);
        assert_eq!(plan.dup_defer_msgs, 100);
        assert_eq!(plan.kill_rank, Some((1, 3)));
        assert_eq!(plan.nan_at_step, Some(2));
        // Bare `dup=P` keeps the immediate-replay default.
        assert_eq!(FaultPlan::parse("dup=0.5").unwrap().dup_defer_msgs, 0);
    }

    #[test]
    fn spec_roundtrips_through_parse() {
        let plan = FaultPlan {
            seed: 42,
            drop_prob: 0.1,
            delay_prob: 0.5,
            delay_s: 0.25,
            dup_prob: 0.2,
            dup_defer_msgs: 100,
            kill_rank: Some((1, 3)),
            nan_at_step: Some(2),
        };
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        let immediate = FaultPlan {
            dup_defer_msgs: 0,
            ..plan
        };
        assert_eq!(FaultPlan::parse(&immediate.spec()).unwrap(), immediate);
        assert_eq!(FaultPlan::none().spec(), "");
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
    }

    #[test]
    fn dup_defer_visible_only_while_armed() {
        let plan = FaultPlan {
            dup_prob: 1.0,
            dup_defer_msgs: 7,
            ..FaultPlan::none()
        };
        with_installed(plan, || assert_eq!(dup_defer(), 7));
        let _guard = test_lock();
        clear();
        assert_eq!(dup_defer(), 0);
    }

    #[test]
    fn current_reflects_the_installed_plan() {
        let plan = FaultPlan {
            nan_at_step: Some(7),
            ..FaultPlan::none()
        };
        with_installed(plan.clone(), || {
            assert_eq!(current(), Some(plan.clone()));
        });
        let _guard = test_lock();
        clear();
        assert_eq!(current(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("kill=1").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
    }
}
