//! # dcmesh-ckpt
//!
//! The robustness subsystem: checkpoint/restart and fault injection.
//!
//! The paper's production campaigns run DC-MESH for thousands of MD steps
//! across hundreds of nodes, where rank failure and SCF divergence are
//! routine. This crate provides the pieces every layer shares:
//!
//! * [`codec`] — a tiny self-describing binary encoder/decoder with
//!   per-field type tags, so a truncated or corrupted snapshot fails to
//!   decode loudly instead of deserializing garbage into a trajectory.
//! * [`file`] — the versioned, checksummed checkpoint container written
//!   via temp-file + atomic rename: a crash mid-write can never destroy
//!   the previous good checkpoint.
//! * [`fault`] — a deterministic, env-gated [`fault::FaultPlan`] that can
//!   drop/delay/duplicate messages, kill a rank at a chosen operation, and
//!   inject a NaN into a kernel output. Disarmed it costs one relaxed
//!   atomic load, the same contract as `dcmesh-obs`.
//!
//! Observability rides on `dcmesh-obs`: `ckpt.write_s`, `ckpt.bytes`,
//! `faults.injected` and friends land in the metrics registry when the
//! collector is enabled.

pub mod codec;
pub mod fault;
pub mod file;

pub use codec::{CkptError, Decoder, Encoder};
pub use fault::{FaultKind, FaultPlan};
pub use file::{read_checkpoint, write_checkpoint_atomic, FORMAT_VERSION};
