//! The checkpoint container: versioned, checksummed, atomically written.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! [0..8)    magic  b"DCMESHCK"
//! [8..12)   format version (u32)
//! [12..20)  payload length (u64)
//! [20..28)  FNV-1a 64 checksum of the payload (u64)
//! [28..)    payload
//! ```
//!
//! Writes go to `<path>.tmp` followed by `fs::rename`, so a crash at any
//! point leaves either the old checkpoint or the new one — never a torn
//! file. Reads validate magic, version, length, and checksum before the
//! payload is handed to a [`crate::Decoder`].

use std::path::Path;
use std::time::Instant;

use crate::codec::{checksum64, CkptError};

/// The container magic.
pub const MAGIC: &[u8; 8] = b"DCMESHCK";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;

/// Write `payload` as a checkpoint at `path` (temp file + atomic rename).
///
/// Records `ckpt.write_s` (histogram), `ckpt.bytes` and `ckpt.writes`
/// (counters) when the obs collector is enabled.
pub fn write_checkpoint_atomic(path: &Path, payload: &[u8]) -> Result<(), CkptError> {
    let _span = dcmesh_obs::span!("ckpt.write");
    let wall = Instant::now();
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&checksum64(payload).to_le_bytes());
    file.extend_from_slice(payload);

    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, &file)?;
    std::fs::rename(&tmp, path)?;

    dcmesh_obs::metrics::counter_add("ckpt.writes", 1);
    dcmesh_obs::metrics::counter_add("ckpt.bytes", file.len() as u64);
    dcmesh_obs::metrics::histogram_record("ckpt.write_s", wall.elapsed().as_secs_f64());
    Ok(())
}

/// Read and validate a checkpoint; returns the payload bytes.
pub fn read_checkpoint(path: &Path) -> Result<Vec<u8>, CkptError> {
    let bytes = std::fs::read(path)?;
    parse_container(&bytes)
}

/// Validate a checkpoint container held in memory.
pub fn parse_container(bytes: &[u8]) -> Result<Vec<u8>, CkptError> {
    if bytes.len() < 8 || &bytes[..8] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CkptError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(CkptError::BadVersion { found: version });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let want = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let len = usize::try_from(len).map_err(|_| CkptError::Truncated)?;
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or(CkptError::Truncated)?;
    if checksum64(payload) != want {
        return Err(CkptError::BadChecksum);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dcmesh_ckpt_test_{}_{tag}_{n}.ckpt",
            std::process::id()
        ))
    }

    #[test]
    fn write_read_roundtrip() {
        let path = scratch_path("roundtrip");
        let payload: Vec<u8> = (0..=255).collect();
        write_checkpoint_atomic(&path, &payload).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), payload);
        // No temp file left behind.
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let path = scratch_path("overwrite");
        write_checkpoint_atomic(&path, b"first").unwrap();
        write_checkpoint_atomic(&path, b"second").unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), b"second");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = vec![0u8; 64];
        bytes[..8].copy_from_slice(b"NOTDCMSH");
        assert_eq!(parse_container(&bytes), Err(CkptError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let path = scratch_path("version");
        write_checkpoint_atomic(&path, b"payload").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            parse_container(&bytes),
            Err(CkptError::BadVersion { found: 99 })
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_rejected() {
        let path = scratch_path("corrupt");
        write_checkpoint_atomic(&path, &[7u8; 128]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        assert_eq!(parse_container(&bytes), Err(CkptError::BadChecksum));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = scratch_path("truncated");
        write_checkpoint_atomic(&path, &[3u8; 128]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, HEADER_LEN + 5, HEADER_LEN, 10] {
            assert_eq!(
                parse_container(&bytes[..cut]),
                Err(CkptError::Truncated),
                "cut at {cut}"
            );
        }
        // Cutting inside the magic loses the signature itself.
        assert_eq!(parse_container(&bytes[..4]), Err(CkptError::BadMagic));
        std::fs::remove_file(&path).unwrap();
    }
}
