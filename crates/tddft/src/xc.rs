//! Local density approximation exchange-correlation.
//!
//! Slater exchange plus Perdew–Zunger (1981) parametrization of the
//! Ceperley–Alder correlation energy. The paper treats "higher-order
//! correlations represented by the exchange-correlation kernel ... locally
//! within each DC domain since they are known to be short-ranged" — LDA is
//! exactly point-local, the cleanest realization of that statement.

/// Exchange energy density per electron `eps_x(rho)` (Hartree).
#[inline]
pub fn eps_x(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    const CX: f64 = -0.738_558_766_382_022_4; // -(3/4)(3/pi)^(1/3)
    CX * rho.powf(1.0 / 3.0)
}

/// Exchange potential `v_x = d(rho eps_x)/d rho = (4/3) eps_x`.
#[inline]
pub fn v_x(rho: f64) -> f64 {
    4.0 / 3.0 * eps_x(rho)
}

/// Wigner–Seitz radius `rs = (3 / (4 pi rho))^(1/3)`.
#[inline]
pub fn rs_of(rho: f64) -> f64 {
    (3.0 / (4.0 * std::f64::consts::PI * rho)).powf(1.0 / 3.0)
}

// Perdew–Zunger fit constants (unpolarized).
const PZ_A: f64 = 0.0311;
const PZ_B: f64 = -0.048;
const PZ_C: f64 = 0.0020;
const PZ_D: f64 = -0.0116;
const PZ_GAMMA: f64 = -0.1423;
const PZ_BETA1: f64 = 1.0529;
const PZ_BETA2: f64 = 0.3334;

/// Correlation energy density per electron `eps_c(rho)` (Hartree, PZ81).
pub fn eps_c(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    let rs = rs_of(rho);
    if rs < 1.0 {
        let ln = rs.ln();
        PZ_A * ln + PZ_B + PZ_C * rs * ln + PZ_D * rs
    } else {
        let srs = rs.sqrt();
        PZ_GAMMA / (1.0 + PZ_BETA1 * srs + PZ_BETA2 * rs)
    }
}

/// Correlation potential `v_c = eps_c - (rs/3) d eps_c / d rs` (PZ81).
pub fn v_c(rho: f64) -> f64 {
    if rho <= 0.0 {
        return 0.0;
    }
    let rs = rs_of(rho);
    if rs < 1.0 {
        let ln = rs.ln();
        // v_c = A ln rs + (B - A/3) + (2/3) C rs ln rs + (2D - C)/3 * rs
        PZ_A * ln
            + (PZ_B - PZ_A / 3.0)
            + 2.0 / 3.0 * PZ_C * rs * ln
            + (2.0 * PZ_D - PZ_C) / 3.0 * rs
    } else {
        let srs = rs.sqrt();
        let denom = 1.0 + PZ_BETA1 * srs + PZ_BETA2 * rs;
        let e = PZ_GAMMA / denom;
        // v_c = e * (1 + 7/6 beta1 sqrt(rs) + 4/3 beta2 rs) / denom
        e * (1.0 + 7.0 / 6.0 * PZ_BETA1 * srs + 4.0 / 3.0 * PZ_BETA2 * rs) / denom
    }
}

/// Total XC potential `v_xc(rho)`.
#[inline]
pub fn v_xc(rho: f64) -> f64 {
    v_x(rho) + v_c(rho)
}

/// Total XC energy density per electron `eps_xc(rho)`.
#[inline]
pub fn eps_xc(rho: f64) -> f64 {
    eps_x(rho) + eps_c(rho)
}

/// XC energy of a density field: `integral rho * eps_xc(rho) dV`.
pub fn xc_energy(rho: &[f64], dv: f64) -> f64 {
    rho.iter().map(|&r| r * eps_xc(r.max(0.0))).sum::<f64>() * dv
}

/// Fill the XC potential for a density field.
pub fn xc_potential(rho: &[f64], out: &mut [f64]) {
    debug_assert_eq!(rho.len(), out.len());
    for (v, &r) in out.iter_mut().zip(rho) {
        *v = v_xc(r.max(0.0));
    }
}

/// The double-counting correction `integral rho (eps_xc - v_xc) dV`
/// entering the total energy when summing KS eigenvalues.
pub fn xc_double_counting(rho: &[f64], dv: f64) -> f64 {
    rho.iter()
        .map(|&r| {
            let rr = r.max(0.0);
            rr * (eps_xc(rr) - v_xc(rr))
        })
        .sum::<f64>()
        * dv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_density_is_safe() {
        assert_eq!(eps_x(0.0), 0.0);
        assert_eq!(v_xc(0.0), 0.0);
        assert_eq!(eps_c(-1.0), 0.0);
    }

    #[test]
    fn exchange_reference_value() {
        // rho = 1: eps_x = -(3/4)(3/pi)^(1/3) ~ -0.738559.
        assert!((eps_x(1.0) + 0.738_558_8).abs() < 1e-6);
        assert!((v_x(1.0) - 4.0 / 3.0 * eps_x(1.0)).abs() < 1e-12);
    }

    #[test]
    fn correlation_continuous_at_rs_one() {
        // PZ81 pieces meet at rs = 1; check continuity of eps_c and v_c.
        let rho1 = 3.0 / (4.0 * std::f64::consts::PI); // rs = 1
        let lo = eps_c(rho1 * 1.0001);
        let hi = eps_c(rho1 * 0.9999);
        assert!((lo - hi).abs() < 1e-4, "eps_c jump {lo} vs {hi}");
        let lov = v_c(rho1 * 1.0001);
        let hiv = v_c(rho1 * 0.9999);
        assert!((lov - hiv).abs() < 1e-3, "v_c jump {lov} vs {hiv}");
    }

    #[test]
    fn xc_is_attractive_and_deepens_with_density() {
        for &rho in &[0.01, 0.1, 1.0, 10.0] {
            assert!(v_xc(rho) < 0.0);
            assert!(eps_xc(rho) < 0.0);
        }
        assert!(v_xc(10.0) < v_xc(0.1));
    }

    #[test]
    fn potential_is_functional_derivative() {
        // v_xc = d(rho eps_xc)/drho, checked by central differences.
        for &rho in &[0.05, 0.2, 0.5, 2.0, 8.0] {
            let h = rho * 1e-6;
            let f = |r: f64| r * eps_xc(r);
            let fd = (f(rho + h) - f(rho - h)) / (2.0 * h);
            assert!(
                (fd - v_xc(rho)).abs() < 1e-6 * v_xc(rho).abs().max(1.0),
                "rho={rho}: fd {fd} vs v {}",
                v_xc(rho)
            );
        }
    }

    #[test]
    fn energy_and_double_counting_consistency() {
        let rho = vec![0.3, 0.7, 1.1, 0.0];
        let dv = 0.125;
        let e = xc_energy(&rho, dv);
        let dc = xc_double_counting(&rho, dv);
        // E_xc < 0, and |dc| < |E_xc| since v_xc and eps_xc share sign and
        // |v_xc| > |eps_xc| (so dc > 0).
        assert!(e < 0.0);
        assert!(dc > 0.0);
        let mut v = vec![0.0; 4];
        xc_potential(&rho, &mut v);
        let vint: f64 = rho.iter().zip(&v).map(|(r, vv)| r * vv).sum::<f64>() * dv;
        assert!((e - (vint + dc)).abs() < 1e-12);
    }
}
