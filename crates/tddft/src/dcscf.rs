//! Divide-and-conquer global–local SCF — the "DC" of DC-MESH (paper §II).
//!
//! The global cell is decomposed into DC domains (Fig. 1a). Each SCF cycle
//! alternates:
//!
//! * **global**: assemble the electron density from the domain *cores*
//!   (the recombine step), solve the Hartree problem once on the global
//!   mesh with the O(N) multigrid, add local XC — producing the global
//!   effective potential;
//! * **local**: scatter that potential into each domain's core + buffer
//!   mesh (the LDC density-adaptive boundary condition: the buffer sees
//!   the *globally informed* potential, not vacuum) and refine the
//!   domain's Kohn–Sham orbitals with the dense local eigensolver.
//!
//! Occupations use a single **global Fermi level** across all domains, so
//! electrons can flow between domains during SCF — the "globally sparse,
//! locally dense" coupling the paper credits for its scalability.

use dcmesh_grid::{DcDecomposition, Domain, Mesh3, WfAos};

use crate::atoms::{Atom, AtomSet};
use crate::eigensolver::{self};
use crate::hamiltonian::{build_projectors, Hamiltonian};
use crate::hartree::{ionic_density, HartreeSolver};
use crate::scf::fermi_occupations;
use crate::xc;

/// DC-SCF configuration.
#[derive(Clone, Debug)]
pub struct DcScfConfig {
    /// Domain counts per axis.
    pub parts: [usize; 3],
    /// Buffer width in mesh points (the LDC embedding shell).
    pub buffer: usize,
    /// KS orbitals solved per domain (occupied + virtuals).
    pub norb_per_domain: usize,
    /// Outer global-local SCF cycles.
    pub scf_iters: usize,
    /// Eigensolver refinements per cycle per domain.
    pub eig_iters: usize,
    /// Cold-start eigensolver iterations.
    pub init_eig_iters: usize,
    /// Linear density mixing fraction.
    pub mixing: f64,
    /// Fermi smearing temperature (Hartree) for the global level.
    pub smearing: f64,
    /// Seed for initial orbital guesses.
    pub seed: u64,
}

impl Default for DcScfConfig {
    fn default() -> Self {
        Self {
            parts: [2, 1, 1],
            buffer: 2,
            norb_per_domain: 4,
            scf_iters: 6,
            eig_iters: 20,
            init_eig_iters: 100,
            mixing: 0.35,
            smearing: 0.05,
            seed: 99,
        }
    }
}

/// Per-domain electronic solution.
#[derive(Clone, Debug)]
pub struct DomainSolution {
    /// The domain geometry.
    pub domain: Domain,
    /// Atoms inside this domain's local mesh (used for its projectors).
    pub atoms: AtomSet,
    /// KS orbitals on the local (core + buffer) mesh.
    pub orbitals: WfAos<f64>,
    /// KS eigenvalues.
    pub values: Vec<f64>,
    /// Occupations from the global Fermi level.
    pub occupations: Vec<f64>,
}

/// Result of a DC-SCF run.
#[derive(Clone, Debug)]
pub struct DcScfResult {
    /// The decomposition used.
    pub decomposition: DcDecomposition,
    /// Per-domain solutions.
    pub domains: Vec<DomainSolution>,
    /// Electron density on the global mesh.
    pub global_density: Vec<f64>,
    /// Effective potential (electrostatic + XC) on the global mesh.
    pub global_potential: Vec<f64>,
    /// Global chemical potential (Fermi level).
    pub fermi_level: f64,
    /// Global density residual per cycle (dv-weighted L2).
    pub residual_history: Vec<f64>,
}

impl DcScfResult {
    /// Total electron count of the assembled global density.
    pub fn electron_count(&self) -> f64 {
        let dv = self.decomposition.global.dv();
        self.global_density.iter().sum::<f64>() * dv
    }

    /// HOMO/LUMO across ALL domains (global frontier states).
    pub fn global_homo_lumo(&self) -> (f64, f64) {
        let mut homo = f64::NEG_INFINITY;
        let mut lumo = f64::INFINITY;
        for d in &self.domains {
            for (e, f) in d.values.iter().zip(&d.occupations) {
                // Majority-occupied states count as filled (degenerate
                // frontier levels under smearing sit just below 1.0).
                if *f >= 0.5 {
                    homo = homo.max(*e);
                } else {
                    lumo = lumo.min(*e);
                }
            }
        }
        (homo, lumo)
    }
}

/// Atoms whose position falls inside `dom`'s local mesh box (periodic
/// images of the global cell included, so edge-domain buffers see their
/// wrapped neighbours).
fn atoms_in_domain(global: &Mesh3, dom: &Domain, atoms: &AtomSet) -> AtomSet {
    let mut out = AtomSet::new(atoms.species.clone());
    let lo = dom.mesh.origin;
    let len = dom.mesh.lengths();
    let cell = global.lengths();
    for a in &atoms.atoms {
        // Try the atom and its 26 periodic images.
        'images: for sx in -1i32..=1 {
            for sy in -1i32..=1 {
                for sz in -1i32..=1 {
                    let p = [
                        a.pos[0] + sx as f64 * cell[0],
                        a.pos[1] + sy as f64 * cell[1],
                        a.pos[2] + sz as f64 * cell[2],
                    ];
                    if (0..3).all(|ax| p[ax] >= lo[ax] && p[ax] < lo[ax] + len[ax]) {
                        let mut img = Atom::at(a.species, p);
                        img.vel = a.vel;
                        out.atoms.push(img);
                        break 'images;
                    }
                }
            }
        }
    }
    out
}

/// Electron count owned by a domain = valence charge of atoms whose
/// positions fall inside its *core* region.
#[cfg_attr(not(test), allow(dead_code))]
fn core_electrons(global: &Mesh3, dom: &Domain, atoms: &AtomSet) -> f64 {
    let cell = global.lengths();
    let core_lo = [
        dom.mesh.origin[0] + dom.buffer as f64 * dom.mesh.dx,
        dom.mesh.origin[1] + dom.buffer as f64 * dom.mesh.dy,
        dom.mesh.origin[2] + dom.buffer as f64 * dom.mesh.dz,
    ];
    let core_len = [
        dom.core[0] as f64 * dom.mesh.dx,
        dom.core[1] as f64 * dom.mesh.dy,
        dom.core[2] as f64 * dom.mesh.dz,
    ];
    atoms
        .atoms
        .iter()
        .filter(|a| {
            (0..3).all(|ax| {
                let mut x = a.pos[ax] - core_lo[ax];
                x -= cell[ax] * (x / cell[ax]).floor();
                x < core_len[ax]
            })
        })
        .map(|a| atoms.species[a.species].z_val)
        .sum()
}

/// Run the divide-and-conquer global-local SCF.
pub fn run_dc_scf(global: &Mesh3, atoms: &AtomSet, cfg: &DcScfConfig) -> DcScfResult {
    let decomposition = DcDecomposition::new(global.clone(), cfg.parts, cfg.buffer);
    let hartree = HartreeSolver::new(global.clone());
    let rho_ion = ionic_density(global, atoms);
    let nelec_total = atoms.electron_count();
    assert!(
        cfg.norb_per_domain as f64 * 2.0 * decomposition.len() as f64 >= nelec_total,
        "not enough orbitals across domains for {nelec_total} electrons"
    );

    // Per-domain setup: local atoms, projectors, initial orbitals.
    struct Local {
        atoms: AtomSet,
        orbitals: WfAos<f64>,
        values: Vec<f64>,
    }
    let mut locals: Vec<Local> = decomposition
        .domains
        .iter()
        .map(|dom| {
            let datoms = atoms_in_domain(global, dom, atoms);
            let mut orbitals = WfAos::<f64>::zeros(dom.mesh.clone(), cfg.norb_per_domain);
            orbitals.randomize(cfg.seed.wrapping_add(dom.id as u64));
            Local {
                atoms: datoms,
                orbitals,
                values: vec![0.0; cfg.norb_per_domain],
            }
        })
        .collect();

    // Initial global potential: bare ionic electrostatics.
    let neg_ion: Vec<f64> = rho_ion.iter().map(|r| -r).collect();
    let mut v_global = hartree.solve(&neg_ion);

    // Initial local solves in the scattered bare potential.
    for (dom, local) in decomposition.domains.iter().zip(locals.iter_mut()) {
        let v_local = decomposition.scatter_field(dom, &v_global);
        let mut h = Hamiltonian::with_potential(dom.mesh.clone(), v_local);
        h.projectors = build_projectors(&dom.mesh, &local.atoms);
        let eig = eigensolver::refine_states(&h, &mut local.orbitals, cfg.init_eig_iters);
        local.values = eig.values;
    }

    let dv = global.dv();
    let mut rho_global = vec![0.0; global.len()];
    let mut residual_history = Vec::with_capacity(cfg.scf_iters);
    let mut occupations_per_domain: Vec<Vec<f64>> =
        vec![vec![0.0; cfg.norb_per_domain]; decomposition.len()];

    for cycle in 0..cfg.scf_iters {
        // --- Global Fermi level over the union of domain spectra. ---
        let all_values: Vec<f64> = locals
            .iter()
            .flat_map(|l| l.values.iter().copied())
            .collect();
        let all_occ = fermi_occupations(&all_values, nelec_total, cfg.smearing);
        for (d, occs) in occupations_per_domain.iter_mut().enumerate() {
            let base = d * cfg.norb_per_domain;
            occs.copy_from_slice(&all_occ[base..base + cfg.norb_per_domain]);
        }

        // --- Recombine: assemble the global density from domain cores. ---
        let mut rho_new = vec![0.0; global.len()];
        for ((dom, local), occs) in decomposition
            .domains
            .iter()
            .zip(&locals)
            .zip(&occupations_per_domain)
        {
            let local_rho = local.orbitals.density(occs);
            decomposition.gather_core(dom, &local_rho, &mut rho_new);
        }
        // LDC renormalization: orbital tails extending into buffers are
        // dropped by the core gather; rescale to the exact electron count.
        let raw: f64 = rho_new.iter().sum::<f64>() * dv;
        if raw > 1e-12 {
            let s = nelec_total / raw;
            for r in rho_new.iter_mut() {
                *r *= s;
            }
        }

        let res = rho_global
            .iter()
            .zip(&rho_new)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            * dv.sqrt();
        dcmesh_obs::metrics::gauge_set("tddft.dcscf_residual", res);
        residual_history.push(res);
        if cycle == 0 {
            rho_global = rho_new;
        } else {
            for (r, n) in rho_global.iter_mut().zip(&rho_new) {
                *r = (1.0 - cfg.mixing) * *r + cfg.mixing * n;
            }
        }

        // --- Global potential: multigrid electrostatics + local XC. ---
        let rho_tot: Vec<f64> = rho_global
            .iter()
            .zip(&rho_ion)
            .map(|(e, i)| e - i)
            .collect();
        let v_es = hartree.solve(&rho_tot);
        let mut v_x = vec![0.0; global.len()];
        xc::xc_potential(&rho_global, &mut v_x);
        for (idx, v) in v_global.iter_mut().enumerate() {
            *v = v_es[idx] + v_x[idx];
        }

        // --- Local solves in the scattered (embedded) potential. ---
        for (dom, local) in decomposition.domains.iter().zip(locals.iter_mut()) {
            let v_local = decomposition.scatter_field(dom, &v_global);
            let mut h = Hamiltonian::with_potential(dom.mesh.clone(), v_local);
            h.projectors = build_projectors(&dom.mesh, &local.atoms);
            let eig = eigensolver::refine_states(&h, &mut local.orbitals, cfg.eig_iters);
            local.values = eig.values;
        }
    }

    // Final occupations consistent with the *final* spectra (the loop's
    // occupations were computed before the last local solve).
    let fermi_level = {
        let all_values: Vec<f64> = locals
            .iter()
            .flat_map(|l| l.values.iter().copied())
            .collect();
        let all_occ = fermi_occupations(&all_values, nelec_total, cfg.smearing);
        for (d, occs) in occupations_per_domain.iter_mut().enumerate() {
            let base = d * cfg.norb_per_domain;
            occs.copy_from_slice(&all_occ[base..base + cfg.norb_per_domain]);
        }
        estimate_fermi(&all_values, &all_occ)
    };

    let domains = decomposition
        .domains
        .iter()
        .zip(locals)
        .zip(occupations_per_domain)
        .map(|((dom, local), occupations)| DomainSolution {
            domain: dom.clone(),
            atoms: local.atoms,
            orbitals: local.orbitals,
            values: local.values,
            occupations,
        })
        .collect();

    DcScfResult {
        decomposition,
        domains,
        global_density: rho_global,
        global_potential: v_global,
        fermi_level,
        residual_history,
    }
}

/// Rough Fermi-level estimate: midpoint between the highest level with
/// occupation > 1 and the lowest with occupation < 1.
fn estimate_fermi(values: &[f64], occ: &[f64]) -> f64 {
    let mut homo = f64::NEG_INFINITY;
    let mut lumo = f64::INFINITY;
    for (e, f) in values.iter().zip(occ) {
        if *f >= 0.5 {
            homo = homo.max(*e);
        } else {
            lumo = lumo.min(*e);
        }
    }
    if homo.is_finite() && lumo.is_finite() {
        0.5 * (homo + lumo)
    } else if homo.is_finite() {
        homo
    } else {
        lumo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Species;

    fn two_atom_system() -> (Mesh3, AtomSet) {
        let global = Mesh3::new(16, 8, 8, 0.55, 0.55, 0.55);
        let mut atoms = AtomSet::new(vec![Species::hydrogen()]);
        // One H in each half of the cell, centered in y-z.
        atoms.push(0, [4.0 * 0.55, 4.0 * 0.55, 4.0 * 0.55]);
        atoms.push(0, [12.0 * 0.55, 4.0 * 0.55, 4.0 * 0.55]);
        (global, atoms)
    }

    #[test]
    fn dc_scf_converges_and_conserves_electrons() {
        let (global, atoms) = two_atom_system();
        let cfg = DcScfConfig {
            parts: [2, 1, 1],
            buffer: 2,
            norb_per_domain: 2,
            ..Default::default()
        };
        let res = run_dc_scf(&global, &atoms, &cfg);
        assert_eq!(res.domains.len(), 2);
        assert!((res.electron_count() - 2.0).abs() < 1e-9);
        let first = res.residual_history[1]; // [0] is the cold-start jump
        let last = *res.residual_history.last().unwrap();
        assert!(last < first, "residuals {:?}", res.residual_history);
    }

    #[test]
    fn symmetric_system_gives_symmetric_domains() {
        let (global, atoms) = two_atom_system();
        let cfg = DcScfConfig {
            parts: [2, 1, 1],
            buffer: 2,
            norb_per_domain: 2,
            ..Default::default()
        };
        let res = run_dc_scf(&global, &atoms, &cfg);
        // Equivalent atoms in equivalent domains: eigenvalues match.
        let v0 = &res.domains[0].values;
        let v1 = &res.domains[1].values;
        for (a, b) in v0.iter().zip(v1) {
            assert!((a - b).abs() < 5e-2, "domain spectra differ: {a} vs {b}");
        }
        // And occupations split the 2 electrons evenly.
        let n0: f64 = res.domains[0].occupations.iter().sum();
        let n1: f64 = res.domains[1].occupations.iter().sum();
        assert!((n0 - n1).abs() < 0.1, "occupations {n0} vs {n1}");
    }

    #[test]
    fn single_domain_dc_scf_matches_plain_scf_density() {
        // parts = [1,1,1], buffer 0: DC-SCF degenerates to the plain loop.
        let global = Mesh3::cubic(12, 0.55);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        atoms.push(0, global.center());
        let cfg = DcScfConfig {
            parts: [1, 1, 1],
            buffer: 0,
            norb_per_domain: 5,
            scf_iters: 8,
            ..Default::default()
        };
        let dc = run_dc_scf(&global, &atoms, &cfg);
        let plain = crate::scf::run_scf(
            &global,
            &atoms,
            &crate::scf::ScfConfig {
                norb: 5,
                scf_iters: 8,
                eig_iters: 20,
                init_eig_iters: 100,
                mixing: 0.35,
                smearing: 0.05,
                seed: 99,
            },
        );
        // Densities agree closely (same discretization, same solver family).
        let dv = global.dv();
        let diff: f64 = dc
            .global_density
            .iter()
            .zip(&plain.density)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            * dv.sqrt();
        let norm: f64 = plain.density.iter().map(|x| x * x).sum::<f64>().sqrt() * dv.sqrt();
        assert!(diff / norm < 0.05, "relative density diff {}", diff / norm);
    }

    #[test]
    fn buffer_improves_the_embedding() {
        // LDC claim: a thicker buffer reduces the DC error against the
        // single-domain reference.
        let (global, atoms) = two_atom_system();
        let reference = {
            let cfg = DcScfConfig {
                parts: [1, 1, 1],
                buffer: 0,
                norb_per_domain: 4,
                scf_iters: 8,
                ..Default::default()
            };
            run_dc_scf(&global, &atoms, &cfg).global_density
        };
        let err_for = |buffer: usize| -> f64 {
            let cfg = DcScfConfig {
                parts: [2, 1, 1],
                buffer,
                norb_per_domain: 2,
                scf_iters: 8,
                ..Default::default()
            };
            let dc = run_dc_scf(&global, &atoms, &cfg);
            dc.global_density
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        };
        let e_none = err_for(0);
        let e_buffered = err_for(2);
        assert!(
            e_buffered < e_none,
            "buffer did not help: none {e_none} buffered {e_buffered}"
        );
    }

    #[test]
    fn fermi_level_sits_between_homo_and_lumo() {
        let (global, atoms) = two_atom_system();
        let cfg = DcScfConfig {
            parts: [2, 1, 1],
            buffer: 2,
            norb_per_domain: 3,
            ..Default::default()
        };
        let res = run_dc_scf(&global, &atoms, &cfg);
        let (homo, lumo) = res.global_homo_lumo();
        assert!(homo <= res.fermi_level + 1e-9);
        assert!(res.fermi_level <= lumo + 1e-9);
    }

    #[test]
    fn atoms_assigned_to_domains_via_periodic_images() {
        let (global, atoms) = two_atom_system();
        let d = DcDecomposition::new(global.clone(), [2, 1, 1], 2);
        // Each domain's local box must contain its own atom.
        for dom in &d.domains {
            let local = atoms_in_domain(&global, dom, &atoms);
            assert!(!local.is_empty(), "domain {} found no atoms", dom.id);
            assert_eq!(core_electrons(&global, dom, &atoms), 1.0);
        }
    }
}
