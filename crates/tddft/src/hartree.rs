//! Hartree (mean electrostatic) potential via the O(N) multigrid solver.
//!
//! Paper §II: "the mean electrostatic field (or Hartree potential) is
//! computed globally using the scalable O(N) multigrid method". The solver
//! works on the *total* charge density (electrons minus smeared ionic
//! charges) so the periodic compatibility condition is physical: a neutral
//! cell has a mean-free source.

use dcmesh_grid::Mesh3;
use dcmesh_math::multigrid::{MgParams, Multigrid};

use crate::atoms::AtomSet;

/// Hartree solver bound to a mesh.
pub struct HartreeSolver {
    mesh: Mesh3,
    mg: Multigrid,
}

impl std::fmt::Debug for HartreeSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HartreeSolver").finish_non_exhaustive()
    }
}

impl HartreeSolver {
    /// Build the multigrid hierarchy for `mesh` (periodic cell).
    pub fn new(mesh: Mesh3) -> Self {
        let l = mesh.lengths();
        let mg = Multigrid::new(
            mesh.nx,
            mesh.ny,
            mesh.nz,
            l[0],
            l[1],
            l[2],
            MgParams::default(),
        );
        Self { mesh, mg }
    }

    /// Build with custom multigrid parameters.
    pub fn with_params(mesh: Mesh3, params: MgParams) -> Self {
        let l = mesh.lengths();
        let mg = Multigrid::new(mesh.nx, mesh.ny, mesh.nz, l[0], l[1], l[2], params);
        Self { mesh, mg }
    }

    /// Solve `-lap(v) = 4 pi rho` for a (possibly non-neutral) density;
    /// the k=0 (mean) component is projected out, which physically amounts
    /// to a neutralizing background.
    pub fn solve(&self, rho: &[f64]) -> Vec<f64> {
        assert_eq!(rho.len(), self.mesh.len());
        let _span = dcmesh_obs::span!("tddft.hartree_solve");
        let f: Vec<f64> = rho
            .iter()
            .map(|&r| 4.0 * std::f64::consts::PI * r)
            .collect();
        let sol = self.mg.solve(&f);
        dcmesh_obs::metrics::counter_add("tddft.mg_vcycles", sol.cycles as u64);
        dcmesh_obs::metrics::gauge_set("tddft.mg_rel_residual", sol.rel_residual);
        sol.phi
    }

    /// Hartree energy `1/2 integral rho v_H dV` of an electron density.
    pub fn energy(&self, rho: &[f64], v_h: &[f64]) -> f64 {
        0.5 * rho.iter().zip(v_h).map(|(r, v)| r * v).sum::<f64>() * self.mesh.dv()
    }

    /// The mesh this solver is bound to.
    pub fn mesh(&self) -> &Mesh3 {
        &self.mesh
    }
}

/// Smeared ionic charge density on the mesh: each ion contributes a
/// normalized Gaussian of width `rc_loc / sqrt(2)` carrying charge `+Z`,
/// which is the exact charge distribution whose potential is
/// `Z erf(r/rc)/r` — consistent with [`crate::atoms::Species::v_local`].
pub fn ionic_density(mesh: &Mesh3, atoms: &AtomSet) -> Vec<f64> {
    let mut rho = vec![0.0; mesh.len()];
    for atom in &atoms.atoms {
        let sp = &atoms.species[atom.species];
        let rc = sp.rc_loc;
        // Gaussian: Z * (1/(pi rc^2))^{3/2} exp(-r^2/rc^2) integrates to Z.
        let norm = sp.z_val / (std::f64::consts::PI * rc * rc).powf(1.5);
        // Only fill within 5 rc of the atom for O(1) cost per atom.
        let cutoff = 5.0 * rc;
        let (i0, j0, k0) = mesh.nearest_point(atom.pos);
        let ri = (cutoff / mesh.dx).ceil() as isize;
        let rj = (cutoff / mesh.dy).ceil() as isize;
        let rk = (cutoff / mesh.dz).ceil() as isize;
        for di in -ri..=ri {
            let i = i0 as isize + di;
            if i < 0 || i >= mesh.nx as isize {
                continue;
            }
            for dj in -rj..=rj {
                let j = j0 as isize + dj;
                if j < 0 || j >= mesh.ny as isize {
                    continue;
                }
                for dk in -rk..=rk {
                    let k = k0 as isize + dk;
                    if k < 0 || k >= mesh.nz as isize {
                        continue;
                    }
                    let p = mesh.position(i as usize, j as usize, k as usize);
                    let r2 = (p[0] - atom.pos[0]).powi(2)
                        + (p[1] - atom.pos[1]).powi(2)
                        + (p[2] - atom.pos[2]).powi(2);
                    if r2 > cutoff * cutoff {
                        continue;
                    }
                    rho[mesh.idx(i as usize, j as usize, k as usize)] +=
                        norm * (-r2 / (rc * rc)).exp();
                }
            }
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Species;

    #[test]
    fn hartree_potential_of_gaussian_blob_is_positive_at_center() {
        let mesh = Mesh3::cubic(16, 0.5);
        let solver = HartreeSolver::new(mesh.clone());
        let c = mesh.center();
        let mut rho = vec![0.0; mesh.len()];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
            rho[mesh.idx(i, j, k)] = (-r2).exp();
        }
        let v = solver.solve(&rho);
        let (ci, cj, ck) = mesh.nearest_point(c);
        let vc = v[mesh.idx(ci, cj, ck)];
        let vedge = v[mesh.idx(0, 0, 0)];
        assert!(vc > vedge, "center {vc} edge {vedge}");
        // Positive charge: repulsive (positive) potential at center after
        // background subtraction.
        assert!(vc > 0.0);
    }

    #[test]
    fn hartree_energy_positive_for_any_density() {
        let mesh = Mesh3::cubic(8, 0.6);
        let solver = HartreeSolver::new(mesh.clone());
        let mut rho = vec![0.0; mesh.len()];
        rho[mesh.idx(4, 4, 4)] = 1.0;
        rho[mesh.idx(2, 2, 2)] = 0.5;
        let v = solver.solve(&rho);
        // E_H = (1/2) <rho | (-lap/4pi)^-1 4pi rho> >= 0 for mean-free part.
        let mean = rho.iter().sum::<f64>() / rho.len() as f64;
        let rho0: Vec<f64> = rho.iter().map(|r| r - mean).collect();
        let e = solver.energy(&rho0, &v);
        assert!(e > 0.0, "E_H = {e}");
    }

    #[test]
    fn ionic_density_integrates_to_valence_charge() {
        let mesh = Mesh3::cubic(24, 0.4);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        let c = mesh.center();
        atoms.push(0, c);
        let rho = ionic_density(&mesh, &atoms);
        let q: f64 = rho.iter().sum::<f64>() * mesh.dv();
        assert!((q - 6.0).abs() < 0.05, "integrated ionic charge {q}");
    }

    #[test]
    fn neutral_system_total_charge_near_zero() {
        let mesh = Mesh3::cubic(16, 0.5);
        let mut atoms = AtomSet::new(vec![Species::hydrogen()]);
        atoms.push(0, mesh.center());
        let ion = ionic_density(&mesh, &atoms);
        // Fake electron density: same Gaussian shape scaled to 1 electron.
        let total: f64 = ion.iter().sum::<f64>() * mesh.dv();
        let elec: Vec<f64> = ion.iter().map(|r| r / total).collect();
        let net: f64 = ion
            .iter()
            .zip(&elec)
            .map(|(i, e)| i - e * total)
            .sum::<f64>()
            * mesh.dv();
        assert!(net.abs() < 1e-10);
    }
}
