//! Hellmann–Feynman forces on the ions from the electronic structure —
//! the electron-atom coupling channel of Ehrenfest dynamics (the "E" of
//! DC-MESH, paper Eq. (3): the time-dependent electronic state "dictates
//! interatomic interaction for molecular dynamics").
//!
//! At fixed wavefunctions the force on atom `a` is
//!
//! ```text
//! F_a = - d/dR_a [ integral rho(r) v_loc(|r - R_a|) dV
//!                  + sum_n f_n E_kb |<chi_a | psi_n>|^2 ]
//! ```
//!
//! evaluated on the mesh: the local part integrates the density against the
//! analytic gradient of the smooth pseudopotential; the nonlocal part uses
//! the analytic gradient of the Gaussian KB projector.

use dcmesh_grid::{Mesh3, WfAos};

use crate::atoms::{distance, erf, AtomSet};
use crate::hamiltonian::build_projectors;

/// d/dr of the local pseudopotential `-Z erf(r/rc)/r`.
fn dv_local_dr(z_val: f64, rc: f64, r: f64) -> f64 {
    if r < 1e-8 {
        return 0.0; // the smooth potential has zero slope at the origin
    }
    let x = r / rc;
    let derf = 2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp() / rc;
    -z_val * (derf / r - erf(x) / (r * r))
}

/// Forces on every atom from the electron density interacting with the
/// *local* pseudopotentials (Hellmann–Feynman, local channel). Adds into
/// the atoms' force accumulators and returns the interaction energy.
pub fn local_pseudo_forces(mesh: &Mesh3, atoms: &mut AtomSet, rho: &[f64]) -> f64 {
    assert_eq!(rho.len(), mesh.len());
    let dv = mesh.dv();
    let mut energy = 0.0;
    for ai in 0..atoms.len() {
        let sp = atoms.species[atoms.atoms[ai].species].clone();
        let ra = atoms.atoms[ai].pos;
        let cutoff = 8.0 * sp.rc_loc;
        let mut f = [0.0; 3];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let d = distance(p, ra);
            let rho_p = rho[mesh.idx(i, j, k)];
            if rho_p == 0.0 {
                continue;
            }
            energy += rho_p * sp.v_local(d) * dv;
            if d < 1e-8 || d > cutoff {
                continue;
            }
            // F_a = + integral rho v'(d) (r - R_a)/d dV.
            let g = rho_p * dv_local_dr(sp.z_val, sp.rc_loc, d) * dv / d;
            for (ax, fa) in f.iter_mut().enumerate() {
                *fa += g * (p[ax] - ra[ax]);
            }
        }
        for (ax, &fa) in f.iter().enumerate() {
            atoms.atoms[ai].force[ax] += fa;
        }
    }
    energy
}

/// Forces from the nonlocal KB channel at fixed orbitals: analytic gradient
/// of `sum_n f_n E_kb |<chi_a|psi_n>|^2` with the Gaussian projector
/// `chi(r - R_a)`. Adds into the force accumulators; returns the nonlocal
/// energy.
pub fn nonlocal_forces(
    mesh: &Mesh3,
    atoms: &mut AtomSet,
    orbitals: &WfAos<f64>,
    occupations: &[f64],
) -> f64 {
    assert_eq!(orbitals.norb(), occupations.len());
    let dv = mesh.dv();
    let mut energy = 0.0;
    // build_projectors yields one projector per atom with e_kb != 0, in
    // atom order; track which atom each belongs to.
    let owners: Vec<usize> = atoms
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| atoms.species[a.species].e_kb != 0.0)
        .map(|(i, _)| i)
        .collect();
    let projectors = build_projectors(mesh, atoms);
    // Projectors can be dropped for atoms outside the mesh; match by count.
    for (proj, &owner) in projectors.iter().zip(&owners) {
        let sp = &atoms.species[atoms.atoms[owner].species];
        let ra = atoms.atoms[owner].pos;
        let inv_w2 = 1.0 / (sp.r_nl * sp.r_nl);
        let mut f = [0.0; 3];
        for (n, &fn_occ) in occupations.iter().enumerate().take(orbitals.norb()) {
            if fn_occ == 0.0 {
                continue;
            }
            let psi = orbitals.orbital(n);
            // c = <chi|psi> dv ; grad_a c = <d chi/d R_a | psi> dv with
            // d chi/d R_a = (r - R_a)/w^2 * chi.
            let mut c = dcmesh_math::C64::zero();
            let mut gc = [dcmesh_math::C64::zero(); 3];
            for &(idx, amp) in &proj.entries {
                let (i, j, k) = mesh.coords(idx);
                let p = mesh.position(i, j, k);
                let val = psi[idx].scale(amp);
                c += val;
                for ax in 0..3 {
                    gc[ax] += val.scale((p[ax] - ra[ax]) * inv_w2);
                }
            }
            c = c.scale(dv);
            for g in gc.iter_mut() {
                *g = g.scale(dv);
            }
            energy += fn_occ * proj.e_kb * c.norm_sqr();
            // F = - f E_kb * 2 Re(conj(c) grad c).
            for (fa, g) in f.iter_mut().zip(&gc) {
                *fa -= fn_occ * proj.e_kb * 2.0 * (c.conj() * *g).re;
            }
        }
        for (ax, &fa) in f.iter().enumerate() {
            atoms.atoms[owner].force[ax] += fa;
        }
    }
    energy
}

/// Full Ehrenfest/Hellmann–Feynman force evaluation: electron-local,
/// electron-nonlocal, and ion-ion contributions. Clears the accumulators
/// first; returns the total interaction energy (electron-ion + ion-ion).
pub fn ehrenfest_forces(
    mesh: &Mesh3,
    atoms: &mut AtomSet,
    rho: &[f64],
    orbitals: &WfAos<f64>,
    occupations: &[f64],
) -> f64 {
    atoms.clear_forces();
    let e_loc = local_pseudo_forces(mesh, atoms, rho);
    let e_nl = nonlocal_forces(mesh, atoms, orbitals, occupations);
    let e_ii = atoms.ion_ion_energy();
    atoms.accumulate_ion_ion_forces();
    e_loc + e_nl + e_ii
}

/// Central-difference gradient of a periodic scalar field along `ax`.
fn grad_periodic(mesh: &Mesh3, field: &[f64], i: usize, j: usize, k: usize, ax: usize) -> f64 {
    let (n, h) = match ax {
        0 => (mesh.nx, mesh.dx),
        1 => (mesh.ny, mesh.dy),
        _ => (mesh.nz, mesh.dz),
    };
    let wrap = |p: isize| -> usize {
        let n = n as isize;
        (((p % n) + n) % n) as usize
    };
    let (ip, im) = match ax {
        0 => (
            mesh.idx(wrap(i as isize + 1), j, k),
            mesh.idx(wrap(i as isize - 1), j, k),
        ),
        1 => (
            mesh.idx(i, wrap(j as isize + 1), k),
            mesh.idx(i, wrap(j as isize - 1), k),
        ),
        _ => (
            mesh.idx(i, j, wrap(k as isize + 1)),
            mesh.idx(i, j, wrap(k as isize - 1)),
        ),
    };
    (field[ip] - field[im]) / (2.0 * h)
}

/// Electrostatic forces on the smeared ions in the *periodic* field
/// `v_es` (the electron-energy convention of the SCF: electrons feel
/// `+v_es`, so a unit positive ion charge feels `-v_es`):
///
/// ```text
/// F_a = integral rho_ion_a(r) grad v_es(r) dV
/// ```
///
/// This single term carries electron-ion attraction AND ion-ion repulsion
/// (both are sources of `v_es`), with the periodic images the SCF's
/// multigrid sees — the self-force vanishes by symmetry. Adds into the
/// accumulators.
pub fn periodic_es_forces(mesh: &Mesh3, atoms: &mut AtomSet, v_es: &[f64]) {
    assert_eq!(v_es.len(), mesh.len());
    let dv = mesh.dv();
    let cell = mesh.lengths();
    for ai in 0..atoms.len() {
        let sp = atoms.species[atoms.atoms[ai].species].clone();
        let ra = atoms.atoms[ai].pos;
        let rc = sp.rc_loc;
        let norm = sp.z_val / (std::f64::consts::PI * rc * rc).powf(1.5);
        let cutoff = 5.0 * rc;
        let mut f = [0.0; 3];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            // Minimum-image distance to the (possibly wrapped) ion.
            let mut r2 = 0.0;
            for ax in 0..3 {
                let mut d = p[ax] - ra[ax];
                d -= cell[ax] * (d / cell[ax]).round();
                r2 += d * d;
            }
            if r2 > cutoff * cutoff {
                continue;
            }
            let w = norm * (-r2 / (rc * rc)).exp() * dv;
            for (ax, fa) in f.iter_mut().enumerate() {
                *fa += w * grad_periodic(mesh, v_es, i, j, k, ax);
            }
        }
        for (ax, &fa) in f.iter().enumerate() {
            atoms.atoms[ai].force[ax] += fa;
        }
    }
}

/// SCF-consistent Born–Oppenheimer forces: periodic electrostatics (from a
/// fresh multigrid solve on `rho_e - rho_ion`) plus the nonlocal channel.
/// Clears the accumulators first; returns the electrostatic energy.
pub fn scf_consistent_forces(
    mesh: &Mesh3,
    atoms: &mut AtomSet,
    rho_e: &[f64],
    orbitals: &WfAos<f64>,
    occupations: &[f64],
) -> f64 {
    use crate::hartree::{ionic_density, HartreeSolver};
    atoms.clear_forces();
    let rho_ion = ionic_density(mesh, atoms);
    let rho_tot: Vec<f64> = rho_e.iter().zip(&rho_ion).map(|(e, i)| e - i).collect();
    let hartree = HartreeSolver::new(mesh.clone());
    let v_es = hartree.solve(&rho_tot);
    periodic_es_forces(mesh, atoms, &v_es);
    nonlocal_forces(mesh, atoms, orbitals, occupations);
    hartree.energy(&rho_tot, &v_es)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Species;

    /// Gaussian density blob centered at `c`.
    fn blob_density(mesh: &Mesh3, c: [f64; 3], width: f64, total: f64) -> Vec<f64> {
        let mut rho = vec![0.0; mesh.len()];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
            rho[mesh.idx(i, j, k)] = (-r2 / (2.0 * width * width)).exp();
        }
        let sum: f64 = rho.iter().sum::<f64>() * mesh.dv();
        for r in rho.iter_mut() {
            *r *= total / sum;
        }
        rho
    }

    #[test]
    fn local_force_points_toward_electron_density() {
        // An electron blob to the +x side of the atom attracts it (+x force).
        let mesh = Mesh3::cubic(14, 0.5);
        let mut atoms = AtomSet::new(vec![Species::hydrogen()]);
        let c = mesh.center();
        atoms.push(0, [c[0] - 1.0, c[1], c[2]]);
        let rho = blob_density(&mesh, [c[0] + 1.0, c[1], c[2]], 0.8, 1.0);
        atoms.clear_forces();
        local_pseudo_forces(&mesh, &mut atoms, &rho);
        let f = atoms.atoms[0].force;
        assert!(f[0] > 1e-4, "force not attractive: {f:?}");
        assert!(
            f[1].abs() < 0.05 * f[0] && f[2].abs() < 0.05 * f[0],
            "asymmetry {f:?}"
        );
    }

    #[test]
    fn local_force_matches_energy_finite_difference() {
        let mesh = Mesh3::cubic(14, 0.5);
        let c = mesh.center();
        let rho = blob_density(&mesh, [c[0] + 0.7, c[1] - 0.3, c[2]], 0.9, 2.0);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        atoms.push(0, [c[0] - 0.5, c[1] + 0.2, c[2] + 0.1]);
        atoms.clear_forces();
        local_pseudo_forces(&mesh, &mut atoms, &rho);
        let f = atoms.atoms[0].force;
        let h = 1e-4;
        #[allow(clippy::needless_range_loop)]
        for ax in 0..3 {
            let mut ep_atoms = atoms.clone();
            ep_atoms.atoms[0].pos[ax] += h;
            ep_atoms.clear_forces();
            let ep = local_pseudo_forces(&mesh, &mut ep_atoms, &rho);
            let mut em_atoms = atoms.clone();
            em_atoms.atoms[0].pos[ax] -= h;
            em_atoms.clear_forces();
            let em = local_pseudo_forces(&mesh, &mut em_atoms, &rho);
            let fd = -(ep - em) / (2.0 * h);
            assert!(
                (fd - f[ax]).abs() < 2e-3 * f[ax].abs().max(1.0),
                "axis {ax}: fd {fd} vs analytic {}",
                f[ax]
            );
        }
    }

    #[test]
    fn nonlocal_force_matches_energy_finite_difference() {
        let mesh = Mesh3::cubic(12, 0.5);
        let c = mesh.center();
        let mut atoms = AtomSet::new(vec![Species::titanium()]);
        atoms.push(0, [c[0] + 0.3, c[1] - 0.2, c[2] + 0.1]);
        // A fixed orbital: normalized blob offset from the atom.
        let mut orbitals = WfAos::<f64>::zeros(mesh.clone(), 1);
        let rho = blob_density(&mesh, [c[0] - 0.4, c[1], c[2]], 1.0, 1.0);
        for (z, &r) in orbitals.orbital_mut(0).iter_mut().zip(&rho) {
            *z = dcmesh_math::C64::from_real(r.sqrt());
        }
        orbitals.normalize_orbitals();
        let occ = vec![2.0];
        atoms.clear_forces();
        nonlocal_forces(&mesh, &mut atoms, &orbitals, &occ);
        let f = atoms.atoms[0].force;
        let h = 1e-4;
        #[allow(clippy::needless_range_loop)]
        for ax in 0..3 {
            let energy_at = |shift: f64| -> f64 {
                let mut a2 = atoms.clone();
                a2.atoms[0].pos[ax] += shift;
                a2.clear_forces();
                nonlocal_forces(&mesh, &mut a2, &orbitals, &occ)
            };
            let fd = -(energy_at(h) - energy_at(-h)) / (2.0 * h);
            assert!(
                (fd - f[ax]).abs() < 5e-3 * f[ax].abs().max(0.1),
                "axis {ax}: fd {fd} vs analytic {}",
                f[ax]
            );
        }
    }

    #[test]
    fn symmetric_density_gives_zero_force() {
        let mesh = Mesh3::cubic(13, 0.5);
        let c = mesh.center();
        let mut atoms = AtomSet::new(vec![Species::hydrogen()]);
        atoms.push(0, c);
        let rho = blob_density(&mesh, c, 1.0, 1.0);
        atoms.clear_forces();
        local_pseudo_forces(&mesh, &mut atoms, &rho);
        for ax in 0..3 {
            assert!(atoms.atoms[0].force[ax].abs() < 1e-8, "axis {ax}");
        }
    }

    #[test]
    fn ehrenfest_total_includes_all_channels() {
        let mesh = Mesh3::cubic(12, 0.5);
        let c = mesh.center();
        let mut atoms = AtomSet::new(vec![Species::titanium(), Species::oxygen()]);
        atoms.push(0, [c[0] - 1.5, c[1], c[2]]);
        atoms.push(1, [c[0] + 1.5, c[1], c[2]]);
        let rho = blob_density(&mesh, c, 1.2, 10.0);
        let mut orbitals = WfAos::<f64>::zeros(mesh.clone(), 2);
        orbitals.randomize(3);
        let occ = vec![2.0, 2.0];
        let e = ehrenfest_forces(&mesh, &mut atoms, &rho, &orbitals, &occ);
        assert!(e.is_finite());
        // Electron cloud between the ions screens the ion-ion repulsion:
        // net force magnitudes are finite and the energy has both signs'
        // contributions (smoke-level sanity).
        for a in &atoms.atoms {
            for ax in 0..3 {
                assert!(a.force[ax].is_finite());
            }
        }
    }
}
