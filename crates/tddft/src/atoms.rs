//! Atomic species, pseudopotential parameters, and atom containers.
//!
//! Each species carries a norm-conserving-style model pseudopotential:
//! a smooth local part `v_loc(r) = -Z_val * erf(r / rc) / r` (finite at the
//! origin, Coulombic at range) and one Kleinman–Bylander nonlocal channel
//! with a Gaussian projector — the `v_ion = v_loc + v_nl` split of paper
//! Eq. (5). Parameters for Pb/Ti/O are model values tuned for stable SCF on
//! coarse meshes, not transferable chemistry (see DESIGN.md).

use dcmesh_math::phys::AMU_IN_ME;

/// A chemical species with model pseudopotential parameters (atomic units).
#[derive(Clone, Debug)]
pub struct Species {
    /// Chemical symbol for reports.
    pub symbol: &'static str,
    /// Valence charge seen by electrons.
    pub z_val: f64,
    /// Ionic mass in electron masses.
    pub mass: f64,
    /// Local pseudopotential core radius (Bohr).
    pub rc_loc: f64,
    /// Nonlocal KB projector radius (Bohr).
    pub r_nl: f64,
    /// KB energy strength (Hartree); sign sets attractive/repulsive channel.
    pub e_kb: f64,
}

impl Species {
    /// Model lead (Pb): 4 valence electrons (6s2 6p2).
    pub fn lead() -> Self {
        Self {
            symbol: "Pb",
            z_val: 4.0,
            mass: 207.2 * AMU_IN_ME,
            rc_loc: 1.2,
            r_nl: 1.0,
            e_kb: 0.8,
        }
    }

    /// Model titanium (Ti): 4 valence electrons (3d2 4s2).
    pub fn titanium() -> Self {
        Self {
            symbol: "Ti",
            z_val: 4.0,
            mass: 47.867 * AMU_IN_ME,
            rc_loc: 1.0,
            r_nl: 0.9,
            e_kb: 1.2,
        }
    }

    /// Model oxygen (O): 6 valence electrons.
    pub fn oxygen() -> Self {
        Self {
            symbol: "O",
            z_val: 6.0,
            mass: 15.999 * AMU_IN_ME,
            rc_loc: 0.7,
            r_nl: 0.6,
            e_kb: -0.5,
        }
    }

    /// A light one-electron test species (hydrogen-like).
    pub fn hydrogen() -> Self {
        Self {
            symbol: "H",
            z_val: 1.0,
            mass: 1.008 * AMU_IN_ME,
            rc_loc: 0.5,
            r_nl: 0.5,
            e_kb: 0.0,
        }
    }

    /// Local pseudopotential at distance `r` (Bohr):
    /// `-Z erf(r/rc)/r`, with the analytic `r -> 0` limit `-2Z/(sqrt(pi) rc)`.
    pub fn v_local(&self, r: f64) -> f64 {
        if r < 1e-10 {
            -2.0 * self.z_val / (std::f64::consts::PI.sqrt() * self.rc_loc)
        } else {
            -self.z_val * erf(r / self.rc_loc) / r
        }
    }

    /// Unnormalized KB projector amplitude at distance `r`.
    pub fn projector(&self, r: f64) -> f64 {
        (-0.5 * (r / self.r_nl).powi(2)).exp()
    }
}

/// Error function, accurate to ~1e-15: Maclaurin series for `|x| < 2`,
/// continued-fraction `erfc` (modified Lentz) beyond. High accuracy matters
/// because ion-ion forces are validated against finite differences of the
/// erf-based energy.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    if x < 2.0 {
        // erf(x) = 2/sqrt(pi) * sum_n (-1)^n x^(2n+1) / (n! (2n+1)).
        let x2 = x * x;
        let mut term = x; // (-1)^n x^(2n+1)/n! at n = 0
        let mut sum = x;
        let mut n = 0usize;
        loop {
            n += 1;
            term *= -x2 / n as f64;
            let add = term / (2 * n + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1e-300) || n > 60 {
                break;
            }
        }
        two_over_sqrt_pi * sum
    } else {
        1.0 - erfc_cf(x)
    }
}

/// Complementary error function for `x >= 2` via the Laplace continued
/// fraction `erfc(x) = e^{-x^2}/sqrt(pi) * 1/(x + (1/2)/(x + 1/(x + ...)))`
/// evaluated with the modified Lentz algorithm.
fn erfc_cf(x: f64) -> f64 {
    // f = x + K_{n>=1}( (n/2) / x ), evaluated by modified Lentz.
    let tiny = 1e-300;
    let mut f = x;
    let mut c = f;
    let mut d = 0.0;
    for n in 1..200 {
        let a = n as f64 / 2.0;
        d = x + a * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = x + a / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / std::f64::consts::PI.sqrt() / f
}

/// One atom: species index plus dynamic state.
#[derive(Clone, Debug)]
pub struct Atom {
    /// Index into the owning [`AtomSet`]'s species table.
    pub species: usize,
    /// Position (Bohr).
    pub pos: [f64; 3],
    /// Velocity (atomic units).
    pub vel: [f64; 3],
    /// Force accumulator (Hartree/Bohr).
    pub force: [f64; 3],
}

impl Atom {
    /// An atom at rest.
    pub fn at(species: usize, pos: [f64; 3]) -> Self {
        Self {
            species,
            pos,
            vel: [0.0; 3],
            force: [0.0; 3],
        }
    }
}

/// A collection of atoms sharing a species table.
#[derive(Clone, Debug, Default)]
pub struct AtomSet {
    /// Species table.
    pub species: Vec<Species>,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl AtomSet {
    /// Empty set with the given species table.
    pub fn new(species: Vec<Species>) -> Self {
        Self {
            species,
            atoms: Vec::new(),
        }
    }

    /// Add an atom at rest; returns its index.
    pub fn push(&mut self, species: usize, pos: [f64; 3]) -> usize {
        assert!(species < self.species.len(), "unknown species index");
        self.atoms.push(Atom::at(species, pos));
        self.atoms.len() - 1
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if there are no atoms.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Total valence electron count.
    pub fn electron_count(&self) -> f64 {
        self.atoms
            .iter()
            .map(|a| self.species[a.species].z_val)
            .sum()
    }

    /// Number of doubly occupied orbitals needed (spin-restricted).
    pub fn occupied_orbitals(&self) -> usize {
        (self.electron_count() / 2.0).ceil() as usize
    }

    /// Species of atom `i`.
    pub fn species_of(&self, i: usize) -> &Species {
        &self.species[self.atoms[i].species]
    }

    /// Ion-ion repulsion energy with smeared charges matching `v_local`:
    /// `sum_{a<b} Za Zb erf(r / sqrt(rca^2 + rcb^2)) / r` (open boundaries —
    /// DC domains are finite; the global Madelung part lives in the
    /// recombine phase's global potential).
    pub fn ion_ion_energy(&self) -> f64 {
        let mut e = 0.0;
        for a in 0..self.atoms.len() {
            for b in a + 1..self.atoms.len() {
                let sa = self.species_of(a);
                let sb = self.species_of(b);
                let d = distance(self.atoms[a].pos, self.atoms[b].pos);
                if d < 1e-10 {
                    continue;
                }
                let rc = (sa.rc_loc.powi(2) + sb.rc_loc.powi(2)).sqrt();
                e += sa.z_val * sb.z_val * erf(d / rc) / d;
            }
        }
        e
    }

    /// Analytic ion-ion forces matching [`AtomSet::ion_ion_energy`];
    /// accumulates into each atom's force field.
    pub fn accumulate_ion_ion_forces(&mut self) {
        let n = self.atoms.len();
        for a in 0..n {
            for b in a + 1..n {
                let sa = self.species[self.atoms[a].species].clone();
                let sb = self.species[self.atoms[b].species].clone();
                let pa = self.atoms[a].pos;
                let pb = self.atoms[b].pos;
                let d = distance(pa, pb);
                if d < 1e-10 {
                    continue;
                }
                let rc = (sa.rc_loc.powi(2) + sb.rc_loc.powi(2)).sqrt();
                let x = d / rc;
                // dE/dr of Z Z erf(r/rc)/r.
                let derf = 2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp() / rc;
                let de_dr = sa.z_val * sb.z_val * (derf / d - erf(x) / (d * d));
                for ax in 0..3 {
                    let dir = (pa[ax] - pb[ax]) / d;
                    // F = -dE/dr * dir on atom a.
                    self.atoms[a].force[ax] -= de_dr * dir;
                    self.atoms[b].force[ax] += de_dr * dir;
                }
            }
        }
    }

    /// Zero every atom's force accumulator.
    pub fn clear_forces(&mut self) {
        for a in &mut self.atoms {
            a.force = [0.0; 3];
        }
    }
}

/// Euclidean distance between two positions.
pub fn distance(a: [f64; 3], b: [f64; 3]) -> f64 {
    ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn v_local_is_finite_and_coulombic() {
        let s = Species::oxygen();
        let v0 = s.v_local(0.0);
        assert!(v0.is_finite() && v0 < 0.0);
        // At long range: -Z/r.
        let r = 10.0;
        assert!((s.v_local(r) + s.z_val / r).abs() < 1e-6);
        // Monotone attraction: deeper closer in.
        assert!(s.v_local(0.1) < s.v_local(1.0));
    }

    #[test]
    fn electron_counting_pbtio3() {
        let mut set = AtomSet::new(vec![
            Species::lead(),
            Species::titanium(),
            Species::oxygen(),
        ]);
        set.push(0, [0.0; 3]);
        set.push(1, [1.0; 3]);
        for i in 0..3 {
            set.push(2, [i as f64, 0.0, 0.0]);
        }
        // Pb(4) + Ti(4) + 3 O(6) = 26 electrons, 13 doubly occupied orbitals.
        assert_eq!(set.electron_count(), 26.0);
        assert_eq!(set.occupied_orbitals(), 13);
    }

    #[test]
    fn ion_ion_energy_positive_and_decaying() {
        let mut set = AtomSet::new(vec![Species::hydrogen()]);
        set.push(0, [0.0; 3]);
        set.push(0, [2.0, 0.0, 0.0]);
        let e2 = set.ion_ion_energy();
        set.atoms[1].pos = [4.0, 0.0, 0.0];
        let e4 = set.ion_ion_energy();
        assert!(e2 > e4 && e4 > 0.0);
        // Long range: Z^2/r.
        assert!((e4 - 1.0 / 4.0).abs() < 1e-3);
    }

    #[test]
    fn ion_ion_forces_match_energy_gradient() {
        let mut set = AtomSet::new(vec![Species::lead(), Species::oxygen()]);
        set.push(0, [0.0, 0.0, 0.0]);
        set.push(1, [1.7, 0.4, -0.2]);
        set.clear_forces();
        set.accumulate_ion_ion_forces();
        let f_analytic = set.atoms[0].force;
        // Central finite difference along each axis.
        let h = 1e-5;
        #[allow(clippy::needless_range_loop)]
        for ax in 0..3 {
            let mut plus = set.clone();
            plus.atoms[0].pos[ax] += h;
            let mut minus = set.clone();
            minus.atoms[0].pos[ax] -= h;
            let fd = -(plus.ion_ion_energy() - minus.ion_ion_energy()) / (2.0 * h);
            assert!(
                (fd - f_analytic[ax]).abs() < 1e-6,
                "axis {ax}: fd {fd} vs analytic {}",
                f_analytic[ax]
            );
        }
    }

    #[test]
    fn newtons_third_law() {
        let mut set = AtomSet::new(vec![Species::titanium()]);
        set.push(0, [0.0; 3]);
        set.push(0, [1.1, -0.3, 0.8]);
        set.push(0, [-0.4, 0.9, 0.1]);
        set.clear_forces();
        set.accumulate_ion_ion_forces();
        for ax in 0..3 {
            let total: f64 = set.atoms.iter().map(|a| a.force[ax]).sum();
            assert!(total.abs() < 1e-12);
        }
    }

    #[test]
    fn projector_decays() {
        let s = Species::titanium();
        assert!(s.projector(0.0) == 1.0);
        assert!(s.projector(3.0) < s.projector(1.0));
        assert!(s.projector(5.0) < 1e-5);
    }
}
