//! # dcmesh-tddft
//!
//! The density-functional-theory substrate of DC-MESH: everything QXMD needs
//! to produce ground-state Kohn–Sham (KS) wavefunctions, potentials and
//! eigenvalues per DC domain, which LFD then propagates in real time.
//!
//! Replaces the paper's Fortran plane-wave QXMD electronic-structure core
//! with a real-space finite-difference formulation on the same meshes LFD
//! uses (DESIGN.md substitution table):
//!
//! * [`atoms`] — species/atom containers with smooth local pseudopotentials
//!   and Kleinman–Bylander (KB) nonlocal projectors,
//! * [`xc`] — LDA exchange-correlation (Slater exchange + Perdew–Zunger
//!   correlation),
//! * [`hartree`] — the global Hartree potential via the O(N) multigrid
//!   solver (paper §II "globally scalable" solver),
//! * [`hamiltonian`] — KS Hamiltonian application split into local and
//!   nonlocal parts exactly as paper Eq. (5) requires,
//! * [`eigensolver`] — preconditioned block steepest descent with
//!   Rayleigh–Ritz subspace rotation (the "locally fast" dense solve),
//! * [`scf`] — the global-local self-consistent-field loop with linear
//!   density mixing (3 SCF x 3 CG iterations in the paper's benchmarks).

pub mod atoms;
pub mod dcscf;
pub mod eigensolver;
pub mod forces;
pub mod hamiltonian;
pub mod hartree;
pub mod scf;
pub mod xc;

pub use atoms::{Atom, AtomSet, Species};
pub use hamiltonian::Hamiltonian;
pub use scf::{ScfConfig, ScfResult};
