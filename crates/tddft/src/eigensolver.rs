//! Block preconditioned steepest descent with Rayleigh–Ritz rotation.
//!
//! This is the "locally dense" electronic solver of the GSLD scheme (paper
//! §II): each DC domain diagonalizes its Kohn–Sham Hamiltonian for the
//! lowest `Norb` states. The iteration is the classic subspace scheme:
//!
//! 1. apply `H` to the block, 2. Rayleigh–Ritz rotate within the subspace,
//! 3. take a damped gradient (residual) step, 4. re-orthonormalize.
//!
//! The paper's benchmarks use exactly "3 SCF iterations ... with 3 CG
//! iterations per SCF cycle to refine each wave function"; the `iters`
//! knob reproduces that refinement count.

use dcmesh_grid::{Mesh3, WfAos};
use dcmesh_math::gemm::{gemm, Op};
use dcmesh_math::{linalg, Complex, Matrix, C64};

use crate::hamiltonian::Hamiltonian;

/// Result of a subspace diagonalization.
#[derive(Clone, Debug)]
pub struct EigenResult {
    /// Rayleigh–Ritz eigenvalue estimates, ascending.
    pub values: Vec<f64>,
    /// The orbitals (orthonormal, dv-weighted).
    pub orbitals: WfAos<f64>,
    /// Residual norms `||H psi - eps psi||` per orbital at exit.
    pub residuals: Vec<f64>,
}

/// Apply `h` to every column of `x`, producing `hx` (both `Ngrid x Norb`).
pub fn apply_block(h: &Hamiltonian, x: &WfAos<f64>, include_nl: bool) -> WfAos<f64> {
    let mut hx = WfAos::zeros(x.mesh().clone(), x.norb());
    for n in 0..x.norb() {
        let col_in = x.orbital(n).to_vec();
        h.apply(&col_in, hx.orbital_mut(n), include_nl);
    }
    hx
}

/// Rayleigh–Ritz within the span of `x`: rotates `x` to diagonalize the
/// subspace Hamiltonian and returns the eigenvalue estimates.
pub fn rayleigh_ritz(h: &Hamiltonian, x: &mut WfAos<f64>, include_nl: bool) -> Vec<f64> {
    let hx = apply_block(h, x, include_nl);
    let norb = x.norb();
    let dv = x.mesh().dv();
    let xm = x.to_matrix();
    let hxm = hx.to_matrix();
    let mut s = Matrix::zeros(norb, norb);
    gemm(
        Complex::from_real(dv),
        &xm,
        Op::ConjTrans,
        &hxm,
        Op::None,
        C64::zero(),
        &mut s,
    );
    // Hermitize against roundoff before Jacobi.
    let mut sh = Matrix::zeros(norb, norb);
    for i in 0..norb {
        for j in 0..norb {
            sh[(i, j)] = (s[(i, j)] + s[(j, i)].conj()).scale(0.5);
        }
    }
    let eig = linalg::eigh(&sh);
    // x <- x * V.
    let mut rotated = Matrix::zeros(xm.rows(), norb);
    gemm(
        C64::one(),
        &xm,
        Op::None,
        &eig.vectors,
        Op::None,
        C64::zero(),
        &mut rotated,
    );
    *x = WfAos::from_matrix(x.mesh().clone(), rotated);
    eig.values
}

/// Find the lowest `norb` eigenpairs of `h` by `iters` outer iterations of
/// gradient + Rayleigh–Ritz, starting from a seeded random block.
pub fn lowest_states(h: &Hamiltonian, norb: usize, iters: usize, seed: u64) -> EigenResult {
    let mesh: Mesh3 = h.mesh().clone();
    let mut x = WfAos::zeros(mesh, norb);
    x.randomize(seed);
    refine_states(h, &mut x, iters)
}

/// Refine an existing orbital block in place (used by SCF restarts, where
/// the previous cycle's orbitals seed the next — the paper's "3 CG
/// iterations per SCF cycle").
pub fn refine_states(h: &Hamiltonian, x: &mut WfAos<f64>, iters: usize) -> EigenResult {
    let bound = h.spectral_bound();
    let tau = 1.0 / bound;
    let mut values = rayleigh_ritz(h, x, true);
    for _ in 0..iters {
        let hx = apply_block(h, x, true);
        // Gradient step per orbital: x_n <- x_n - tau (H x_n - eps_n x_n).
        for (n, &eps) in values.iter().enumerate().take(x.norb()) {
            let hcol = hx.orbital(n).to_vec();
            let xcol = x.orbital_mut(n);
            for (xc, hc) in xcol.iter_mut().zip(&hcol) {
                let resid = *hc - xc.scale(eps);
                *xc -= resid.scale(tau);
            }
        }
        x.orthonormalize();
        values = rayleigh_ritz(h, x, true);
    }
    // Final residuals.
    let hx = apply_block(h, x, true);
    let dv = x.mesh().dv();
    let residuals: Vec<f64> = (0..x.norb())
        .map(|n| {
            let eps = values[n];
            let r2: f64 = x
                .orbital(n)
                .iter()
                .zip(hx.orbital(n))
                .map(|(xc, hc)| (*hc - xc.scale(eps)).norm_sqr())
                .sum();
            (r2 * dv).sqrt()
        })
        .collect();
    EigenResult {
        values,
        orbitals: x.clone(),
        residuals,
    }
}

/// HOMO/LUMO eigenvalues given `nocc` doubly occupied orbitals.
/// Returns `(e_homo, e_lumo)`; requires at least `nocc + 1` states.
pub fn homo_lumo(values: &[f64], nocc: usize) -> (f64, f64) {
    assert!(nocc >= 1, "need at least one occupied orbital");
    assert!(
        values.len() > nocc,
        "need at least one virtual orbital for LUMO"
    );
    (values[nocc - 1], values[nocc])
}

/// Analytic eigenvalues of the Dirichlet finite-difference particle-in-a-box
/// along one axis: `lambda_k = (1 - cos(k pi / (n+1))) / (m dx^2)`,
/// `k = 1..n`. Used by tests and by benchmark sanity checks.
pub fn fd_box_eigenvalue(k: usize, n: usize, dx: f64, mass: f64) -> f64 {
    (1.0 - (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos()) / (mass * dx * dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::{AtomSet, Species};

    #[test]
    fn particle_in_a_box_spectrum() {
        let n = 9;
        let dx = 0.5;
        let mesh = Mesh3::cubic(n, dx);
        let h = Hamiltonian::with_potential(mesh.clone(), vec![0.0; mesh.len()]);
        let res = lowest_states(&h, 4, 400, 7);
        // Ground state: (1,1,1) mode -> 3 * lambda_1.
        let e0 = 3.0 * fd_box_eigenvalue(1, n, dx, 1.0);
        assert!(
            (res.values[0] - e0).abs() / e0 < 1e-3,
            "E0 {} vs analytic {e0}",
            res.values[0]
        );
        // First excited: (2,1,1) -> lambda_2 + 2 lambda_1 (3x degenerate).
        let e1 = fd_box_eigenvalue(2, n, dx, 1.0) + 2.0 * fd_box_eigenvalue(1, n, dx, 1.0);
        for k in 1..4 {
            assert!(
                (res.values[k] - e1).abs() / e1 < 5e-3,
                "E{k} {} vs analytic {e1}",
                res.values[k]
            );
        }
    }

    #[test]
    fn harmonic_oscillator_ground_state() {
        // v = 0.5 * |r - c|^2: E0 = 3/2 in atomic units (continuum).
        let n = 15;
        let dx = 0.5;
        let mesh = Mesh3::cubic(n, dx);
        let c = mesh.center();
        let mut v = vec![0.0; mesh.len()];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r2 = (p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2) + (p[2] - c[2]).powi(2);
            v[mesh.idx(i, j, k)] = 0.5 * r2;
        }
        let h = Hamiltonian::with_potential(mesh, v);
        let res = lowest_states(&h, 1, 300, 11);
        assert!(
            (res.values[0] - 1.5).abs() < 0.08,
            "harmonic E0 {} (want ~1.5)",
            res.values[0]
        );
    }

    #[test]
    fn residuals_shrink_with_iterations() {
        let mesh = Mesh3::cubic(8, 0.5);
        let h = Hamiltonian::with_potential(mesh.clone(), vec![0.0; mesh.len()]);
        let r_few = lowest_states(&h, 2, 20, 3).residuals[0];
        let r_many = lowest_states(&h, 2, 200, 3).residuals[0];
        assert!(r_many < r_few, "few {r_few} many {r_many}");
    }

    #[test]
    fn orbitals_stay_orthonormal() {
        let mesh = Mesh3::cubic(8, 0.5);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        atoms.push(0, mesh.center());
        let h = Hamiltonian::from_atoms(mesh, &atoms, None);
        let res = lowest_states(&h, 3, 60, 5);
        let s = res.orbitals.overlap(&res.orbitals);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((s[(i, j)].abs() - want).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn values_sorted_ascending() {
        let mesh = Mesh3::cubic(8, 0.6);
        let h = Hamiltonian::with_potential(mesh.clone(), vec![0.0; mesh.len()]);
        let res = lowest_states(&h, 5, 100, 9);
        for w in res.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn attractive_nonlocal_channel_lowers_homo() {
        let mesh = Mesh3::cubic(10, 0.5);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]); // e_kb < 0
        atoms.push(0, mesh.center());
        let h_nl = Hamiltonian::from_atoms(mesh.clone(), &atoms, None);
        let mut h_loc = h_nl.clone();
        h_loc.projectors.clear();
        let e_nl = lowest_states(&h_nl, 2, 150, 13).values[0];
        let e_loc = lowest_states(&h_loc, 2, 150, 13).values[0];
        assert!(e_nl < e_loc, "nl {e_nl} loc {e_loc}");
    }

    #[test]
    fn homo_lumo_extraction() {
        let vals = vec![-1.0, -0.5, 0.2, 0.9];
        assert_eq!(homo_lumo(&vals, 2), (-0.5, 0.2));
    }

    #[test]
    #[should_panic(expected = "virtual orbital")]
    fn homo_lumo_requires_a_virtual() {
        homo_lumo(&[-1.0, -0.5], 2);
    }
}
