//! The self-consistent-field (SCF) loop of the QXMD substrate.
//!
//! Global–local structure per the paper (§II): the electrostatic potential
//! is solved *globally* (multigrid, on the total electron-minus-ion charge,
//! so the cell is neutral), while exchange-correlation and the dense
//! eigenproblem are *local* to the domain. Density mixing stabilizes the
//! fixed point; the benchmark setting "3 SCF iterations, 3 CG per cycle"
//! maps to `scf_iters = 3, eig_iters = 3`.

use dcmesh_grid::{Mesh3, WfAos};

use crate::atoms::AtomSet;
use crate::eigensolver::{self, EigenResult};
use crate::hamiltonian::{build_projectors, Hamiltonian};
use crate::hartree::{ionic_density, HartreeSolver};
use crate::xc;

/// SCF configuration.
#[derive(Clone, Debug)]
pub struct ScfConfig {
    /// Total orbitals to solve (occupied + virtuals for HOMO/LUMO work).
    pub norb: usize,
    /// Outer SCF cycles.
    pub scf_iters: usize,
    /// Eigensolver refinement iterations per SCF cycle ("CG per SCF").
    pub eig_iters: usize,
    /// Extra eigensolver iterations on the first cycle (cold start).
    pub init_eig_iters: usize,
    /// Linear density mixing fraction (new density weight).
    pub mixing: f64,
    /// Electronic temperature for Fermi smearing of occupations (Hartree).
    /// Smearing stabilizes SCF when frontier orbitals are near-degenerate.
    pub smearing: f64,
    /// RNG seed for the initial orbital guess.
    pub seed: u64,
}

impl Default for ScfConfig {
    fn default() -> Self {
        Self {
            norb: 4,
            scf_iters: 8,
            eig_iters: 20,
            init_eig_iters: 120,
            mixing: 0.4,
            smearing: 0.05,
            seed: 12345,
        }
    }
}

impl ScfConfig {
    /// The paper's benchmark work per MD step: 3 SCF x 3 CG.
    pub fn paper_benchmark(norb: usize) -> Self {
        Self {
            norb,
            scf_iters: 3,
            eig_iters: 3,
            init_eig_iters: 60,
            mixing: 0.4,
            smearing: 0.05,
            seed: 12345,
        }
    }
}

/// Energy decomposition of a converged SCF state (Hartree).
#[derive(Clone, Debug, Default)]
pub struct EnergyBreakdown {
    /// Kinetic energy of occupied orbitals.
    pub kinetic: f64,
    /// Electrostatic energy of the total (electron - ion) charge.
    pub electrostatic: f64,
    /// Exchange-correlation energy.
    pub xc: f64,
    /// Sum of occupied KS eigenvalues (band energy), for reference.
    pub band: f64,
    /// Total: kinetic + electrostatic + xc.
    pub total: f64,
}

/// Converged (or best-effort) SCF state.
#[derive(Clone, Debug)]
pub struct ScfResult {
    /// KS orbitals (occupied + virtual), orthonormal.
    pub orbitals: WfAos<f64>,
    /// KS eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Occupation numbers (0..=2 each, spin-restricted).
    pub occupations: Vec<f64>,
    /// Electron density on the mesh.
    pub density: Vec<f64>,
    /// Effective local potential (electrostatic + XC) on the mesh.
    pub v_eff: Vec<f64>,
    /// Density residual per SCF cycle (L2, dv-weighted).
    pub residual_history: Vec<f64>,
    /// Energy decomposition.
    pub energies: EnergyBreakdown,
    /// Final eigensolver residual norms.
    pub eigen_residuals: Vec<f64>,
}

/// Fermi–Dirac occupations at electronic temperature `kt` (Hartree):
/// `f_n = 2 / (1 + exp((eps_n - mu)/kt))` with `mu` found by bisection so
/// the occupations sum to `nelec`. `kt <= 0` falls back to Aufbau filling.
///
/// ```
/// use dcmesh_tddft::scf::fermi_occupations;
/// let occ = fermi_occupations(&[-1.0, -0.5, 0.5], 4.0, 0.01);
/// assert!((occ.iter().sum::<f64>() - 4.0).abs() < 1e-9);
/// assert!(occ[0] > 1.99 && occ[2] < 0.01);
/// ```
pub fn fermi_occupations(values: &[f64], nelec: f64, kt: f64) -> Vec<f64> {
    let norb = values.len();
    if kt <= 0.0 {
        return fill_occupations(nelec, norb);
    }
    assert!(
        nelec <= 2.0 * norb as f64 + 1e-9,
        "not enough orbitals ({norb}) for {nelec} electrons"
    );
    let count = |mu: f64| -> f64 {
        values
            .iter()
            .map(|&e| 2.0 / (1.0 + ((e - mu) / kt).exp()))
            .sum()
    };
    let (mut lo, mut hi) = (
        values.iter().cloned().fold(f64::INFINITY, f64::min) - 50.0 * kt,
        values.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 50.0 * kt,
    );
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count(mid) < nelec {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mu = 0.5 * (lo + hi);
    values
        .iter()
        .map(|&e| 2.0 / (1.0 + ((e - mu) / kt).exp()))
        .collect()
}

/// Aufbau occupations: fill lowest orbitals with 2 electrons each; the
/// frontier orbital may be fractional.
pub fn fill_occupations(nelec: f64, norb: usize) -> Vec<f64> {
    assert!(nelec >= 0.0, "negative electron count");
    assert!(
        nelec <= 2.0 * norb as f64 + 1e-9,
        "not enough orbitals ({norb}) for {nelec} electrons"
    );
    let mut occ = vec![0.0; norb];
    let mut left = nelec;
    for o in occ.iter_mut() {
        let f = left.min(2.0);
        *o = f;
        left -= f;
        if left <= 0.0 {
            break;
        }
    }
    occ
}

/// Run the SCF loop for `atoms` on `mesh`.
pub fn run_scf(mesh: &Mesh3, atoms: &AtomSet, cfg: &ScfConfig) -> ScfResult {
    let nelec = atoms.electron_count();
    assert!(
        cfg.norb as f64 * 2.0 >= nelec,
        "norb = {} cannot hold {} electrons",
        cfg.norb,
        nelec
    );
    let hartree = HartreeSolver::new(mesh.clone());
    let rho_ion = ionic_density(mesh, atoms);
    let projectors = build_projectors(mesh, atoms);

    // Initial guess: solve in the bare ionic electrostatic potential.
    let v_bare: Vec<f64> = {
        let neg_ion: Vec<f64> = rho_ion.iter().map(|&r| -r).collect();
        hartree.solve(&neg_ion)
    };
    let mut orbitals = WfAos::<f64>::zeros(mesh.clone(), cfg.norb);
    orbitals.randomize(cfg.seed);
    let mut h = Hamiltonian::with_potential(mesh.clone(), v_bare);
    h.projectors = projectors.clone();
    let mut eig: EigenResult = eigensolver::refine_states(&h, &mut orbitals, cfg.init_eig_iters);

    let mut occupations = fermi_occupations(&eig.values, nelec, cfg.smearing);
    // rho_in: the mixed input density driving the potential.
    let mut rho = orbitals.density(&occupations);
    let mut residual_history = Vec::with_capacity(cfg.scf_iters);
    let dv = mesh.dv();
    let mut v_eff = h.v_loc.clone();

    for _ in 0..cfg.scf_iters {
        // Global electrostatics on the neutral total charge of rho_in.
        let rho_tot: Vec<f64> = rho.iter().zip(&rho_ion).map(|(e, i)| e - i).collect();
        let v_es = hartree.solve(&rho_tot);
        // Local XC.
        let mut v_x = vec![0.0; mesh.len()];
        xc::xc_potential(&rho, &mut v_x);
        for (idx, v) in v_eff.iter_mut().enumerate() {
            *v = v_es[idx] + v_x[idx];
        }
        let mut h = Hamiltonian::with_potential(mesh.clone(), v_eff.clone());
        h.projectors = projectors.clone();
        eig = eigensolver::refine_states(&h, &mut orbitals, cfg.eig_iters);
        occupations = fermi_occupations(&eig.values, nelec, cfg.smearing);
        let rho_out = orbitals.density(&occupations);
        let res = rho
            .iter()
            .zip(&rho_out)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            * dv.sqrt();
        dcmesh_obs::metrics::gauge_set("tddft.scf_residual", res);
        dcmesh_obs::metrics::counter_add("tddft.scf_iterations", 1);
        residual_history.push(res);
        // A non-finite residual means the density or orbitals are poisoned
        // (overflow, or an injected NaN). Stop iterating instead of mixing
        // the contamination into rho_in; the caller's resilience layer
        // decides whether to roll back.
        if !res.is_finite() {
            dcmesh_obs::metrics::counter_add("tddft.scf_nonfinite", 1);
            break;
        }
        // Linear density mixing: rho_in <- (1-a) rho_in + a rho_out.
        for (ri, ro) in rho.iter_mut().zip(&rho_out) {
            *ri = (1.0 - cfg.mixing) * *ri + cfg.mixing * ro;
        }
    }

    // Energies at exit.
    let rho_tot: Vec<f64> = rho.iter().zip(&rho_ion).map(|(e, i)| e - i).collect();
    let v_es = hartree.solve(&rho_tot);
    let e_es = hartree.energy(&rho_tot, &v_es);
    let e_xc = xc::xc_energy(&rho, dv);
    let mut h_kin = Hamiltonian::with_potential(mesh.clone(), vec![0.0; mesh.len()]);
    h_kin.projectors.clear();
    let mut kinetic = 0.0;
    for (n, &occ) in occupations.iter().enumerate().take(cfg.norb) {
        if occ == 0.0 {
            continue;
        }
        kinetic += occ * h_kin.expectation(orbitals.orbital(n), false);
    }
    let band: f64 = eig
        .values
        .iter()
        .zip(&occupations)
        .map(|(e, f)| e * f)
        .sum();
    let energies = EnergyBreakdown {
        kinetic,
        electrostatic: e_es,
        xc: e_xc,
        band,
        total: kinetic + e_es + e_xc,
    };

    ScfResult {
        orbitals,
        values: eig.values,
        occupations,
        density: rho,
        v_eff,
        residual_history,
        energies,
        eigen_residuals: eig.residuals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Species;

    fn oxygen_on_mesh() -> (Mesh3, AtomSet) {
        let mesh = Mesh3::cubic(12, 0.55);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        atoms.push(0, mesh.center());
        (mesh, atoms)
    }

    #[test]
    fn occupations_fill_aufbau() {
        assert_eq!(fill_occupations(6.0, 5), vec![2.0, 2.0, 2.0, 0.0, 0.0]);
        assert_eq!(fill_occupations(5.0, 3), vec![2.0, 2.0, 1.0]);
        assert_eq!(fill_occupations(0.0, 2), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not enough orbitals")]
    fn too_many_electrons_rejected() {
        fill_occupations(7.0, 3);
    }

    #[test]
    fn scf_converges_for_single_atom() {
        let (mesh, atoms) = oxygen_on_mesh();
        let cfg = ScfConfig {
            norb: 5,
            scf_iters: 10,
            eig_iters: 25,
            init_eig_iters: 120,
            mixing: 0.35,
            smearing: 0.05,
            seed: 1,
        };
        let res = run_scf(&mesh, &atoms, &cfg);
        let first = res.residual_history[0];
        let last = *res.residual_history.last().unwrap();
        assert!(
            last < first,
            "density residual did not shrink: {first} -> {last}"
        );
        assert!(last < 0.05, "final residual {last}");
    }

    #[test]
    fn non_finite_density_stops_the_scf_loop() {
        // A NaN atom position poisons the ionic density, so the first
        // residual is non-finite; the loop must bail out instead of mixing
        // NaN through the remaining iterations.
        let mesh = Mesh3::cubic(8, 0.6);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        atoms.push(0, [f64::NAN, 0.0, 0.0]);
        let cfg = ScfConfig {
            norb: 4,
            scf_iters: 6,
            eig_iters: 2,
            init_eig_iters: 2,
            ..ScfConfig::default()
        };
        let res = run_scf(&mesh, &atoms, &cfg);
        assert_eq!(
            res.residual_history.len(),
            1,
            "loop ran past the poisoned iteration"
        );
        assert!(!res.residual_history[0].is_finite());
    }

    #[test]
    fn electron_count_conserved_through_scf() {
        let (mesh, atoms) = oxygen_on_mesh();
        let cfg = ScfConfig {
            norb: 4,
            scf_iters: 4,
            ..ScfConfig::default()
        };
        let res = run_scf(&mesh, &atoms, &cfg);
        let count: f64 = res.density.iter().sum::<f64>() * mesh.dv();
        assert!((count - 6.0).abs() < 1e-8, "electron count {count}");
    }

    #[test]
    fn occupied_states_are_bound() {
        let (mesh, atoms) = oxygen_on_mesh();
        let cfg = ScfConfig {
            norb: 5,
            scf_iters: 6,
            ..ScfConfig::default()
        };
        let res = run_scf(&mesh, &atoms, &cfg);
        // The deepest occupied state sits well below the cell-edge
        // potential (the periodic, mean-free analog of the vacuum level).
        let v_edge = res.v_eff[mesh.idx(0, 0, 0)];
        assert!(
            res.values[0] < v_edge - 0.5,
            "lowest state {} vs edge potential {v_edge}",
            res.values[0]
        );
        // Eigenvalues ascend.
        for w in res.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-10);
        }
    }

    #[test]
    fn energies_have_physical_signs() {
        let (mesh, atoms) = oxygen_on_mesh();
        let cfg = ScfConfig {
            norb: 4,
            scf_iters: 5,
            ..ScfConfig::default()
        };
        let res = run_scf(&mesh, &atoms, &cfg);
        assert!(res.energies.kinetic > 0.0);
        assert!(res.energies.xc < 0.0);
        assert!(res.energies.total.is_finite());
    }

    #[test]
    fn paper_benchmark_config_matches_paper() {
        let cfg = ScfConfig::paper_benchmark(288);
        assert_eq!(cfg.scf_iters, 3);
        assert_eq!(cfg.eig_iters, 3);
        assert_eq!(cfg.norb, 288);
    }
}
