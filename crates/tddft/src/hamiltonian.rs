//! Kohn–Sham Hamiltonian application, split local/nonlocal per Eq. (5).
//!
//! `h = -(1/2m) lap + v_loc(r) + v_nl`, with:
//!
//! * kinetic: 3-point finite differences per axis, Dirichlet boundaries
//!   (DC domains are finite; the LDC density-adaptive boundary enters via
//!   the embedded `v_loc`),
//! * `v_loc`: local pseudopotential + Hartree + LDA XC, point-diagonal,
//! * `v_nl`: Kleinman–Bylander rank-1 channels, one per atom:
//!   `v_nl = sum_a |chi_a> E_a <chi_a|` with normalized projectors.
//!
//! The split matters because the whole shadow-dynamics optimization (paper
//! Eqs. (5)-(8)) hinges on treating `v_nl` separately from the point-local
//! part.

use dcmesh_grid::Mesh3;
use dcmesh_math::C64;

use crate::atoms::AtomSet;

/// One Kleinman–Bylander rank-1 nonlocal channel: sparse projector values
/// with its energy strength.
#[derive(Clone, Debug)]
pub struct NonlocalProjector {
    /// (mesh index, projector amplitude) — normalized so `sum p^2 dv = 1`.
    pub entries: Vec<(usize, f64)>,
    /// KB energy (Hartree).
    pub e_kb: f64,
}

impl NonlocalProjector {
    /// `<chi | psi> * dv` for a complex field.
    pub fn overlap(&self, psi: &[C64], dv: f64) -> C64 {
        let mut acc = C64::zero();
        for &(idx, p) in &self.entries {
            acc += psi[idx].scale(p);
        }
        acc.scale(dv)
    }

    /// `out += coeff * |chi>`.
    pub fn accumulate(&self, coeff: C64, out: &mut [C64]) {
        for &(idx, p) in &self.entries {
            out[idx] += coeff.scale(p);
        }
    }
}

/// The Kohn–Sham Hamiltonian on one mesh (f64 substrate precision).
#[derive(Clone, Debug)]
pub struct Hamiltonian {
    mesh: Mesh3,
    /// Point-local effective potential (pseudo + Hartree + XC [+ laser]).
    pub v_loc: Vec<f64>,
    /// Nonlocal KB channels.
    pub projectors: Vec<NonlocalProjector>,
    /// Electron mass (1 in atomic units; kept explicit for tests).
    pub mass: f64,
}

impl Hamiltonian {
    /// Hamiltonian with an externally supplied local potential and no
    /// nonlocal channels.
    pub fn with_potential(mesh: Mesh3, v_loc: Vec<f64>) -> Self {
        assert_eq!(v_loc.len(), mesh.len());
        Self {
            mesh,
            v_loc,
            projectors: Vec::new(),
            mass: 1.0,
        }
    }

    /// Build from atoms: local pseudopotential summed over atoms plus one
    /// KB projector per atom with `e_kb != 0`. `v_extra` (Hartree + XC) is
    /// added pointwise if provided.
    pub fn from_atoms(mesh: Mesh3, atoms: &AtomSet, v_extra: Option<&[f64]>) -> Self {
        let mut v_loc = local_pseudopotential(&mesh, atoms);
        if let Some(extra) = v_extra {
            assert_eq!(extra.len(), v_loc.len());
            for (v, e) in v_loc.iter_mut().zip(extra) {
                *v += e;
            }
        }
        let projectors = build_projectors(&mesh, atoms);
        Self {
            mesh,
            v_loc,
            projectors,
            mass: 1.0,
        }
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh3 {
        &self.mesh
    }

    /// `out = -(1/2m) lap psi` (Dirichlet boundaries), overwriting `out`.
    pub fn apply_kinetic(&self, psi: &[C64], out: &mut [C64]) {
        let m = &self.mesh;
        assert_eq!(psi.len(), m.len());
        assert_eq!(out.len(), m.len());
        let cx = 1.0 / (2.0 * self.mass * m.dx * m.dx);
        let cy = 1.0 / (2.0 * self.mass * m.dy * m.dy);
        let cz = 1.0 / (2.0 * self.mass * m.dz * m.dz);
        let diag = 2.0 * (cx + cy + cz);
        for i in 0..m.nx {
            for j in 0..m.ny {
                for k in 0..m.nz {
                    let c = m.idx(i, j, k);
                    let mut acc = psi[c].scale(diag);
                    if i > 0 {
                        acc -= psi[m.idx(i - 1, j, k)].scale(cx);
                    }
                    if i + 1 < m.nx {
                        acc -= psi[m.idx(i + 1, j, k)].scale(cx);
                    }
                    if j > 0 {
                        acc -= psi[m.idx(i, j - 1, k)].scale(cy);
                    }
                    if j + 1 < m.ny {
                        acc -= psi[m.idx(i, j + 1, k)].scale(cy);
                    }
                    if k > 0 {
                        acc -= psi[m.idx(i, j, k - 1)].scale(cz);
                    }
                    if k + 1 < m.nz {
                        acc -= psi[m.idx(i, j, k + 1)].scale(cz);
                    }
                    out[c] = acc;
                }
            }
        }
    }

    /// `out += v_loc * psi`.
    pub fn apply_local_potential(&self, psi: &[C64], out: &mut [C64]) {
        for ((o, p), &v) in out.iter_mut().zip(psi).zip(&self.v_loc) {
            *o += p.scale(v);
        }
    }

    /// `out += v_nl psi = sum_a E_a <chi_a|psi> |chi_a>`.
    pub fn apply_nonlocal(&self, psi: &[C64], out: &mut [C64]) {
        let dv = self.mesh.dv();
        for proj in &self.projectors {
            let c = proj.overlap(psi, dv).scale(proj.e_kb);
            proj.accumulate(c, out);
        }
    }

    /// Full application `out = h psi`, optionally including the nonlocal
    /// part (the loc/nl distinction of Eq. (5) and the scissor shift Eq. (8)).
    pub fn apply(&self, psi: &[C64], out: &mut [C64], include_nonlocal: bool) {
        self.apply_kinetic(psi, out);
        self.apply_local_potential(psi, out);
        if include_nonlocal {
            self.apply_nonlocal(psi, out);
        }
    }

    /// Expectation `<psi|h|psi> dv / <psi|psi> dv` (real for Hermitian h).
    pub fn expectation(&self, psi: &[C64], include_nonlocal: bool) -> f64 {
        let mut hpsi = vec![C64::zero(); psi.len()];
        self.apply(psi, &mut hpsi, include_nonlocal);
        let num: f64 = psi.iter().zip(&hpsi).map(|(a, b)| (a.conj() * *b).re).sum();
        let den: f64 = psi.iter().map(|z| z.norm_sqr()).sum();
        num / den
    }

    /// Upper-bound estimate of the largest eigenvalue (Gershgorin-style),
    /// used as the gradient step scale in the eigensolver.
    pub fn spectral_bound(&self) -> f64 {
        let m = &self.mesh;
        let kin =
            2.0 / self.mass * (1.0 / (m.dx * m.dx) + 1.0 / (m.dy * m.dy) + 1.0 / (m.dz * m.dz));
        let vmax = self.v_loc.iter().copied().fold(0.0f64, f64::max);
        let nl: f64 = self
            .projectors
            .iter()
            .map(|p| p.e_kb.abs())
            .fold(0.0, f64::max);
        kin + vmax + nl
    }
}

/// Sum of local pseudopotentials of all atoms, evaluated on the mesh.
pub fn local_pseudopotential(mesh: &Mesh3, atoms: &AtomSet) -> Vec<f64> {
    let mut v = vec![0.0; mesh.len()];
    for atom in &atoms.atoms {
        let sp = &atoms.species[atom.species];
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r = crate::atoms::distance(p, atom.pos);
            v[mesh.idx(i, j, k)] += sp.v_local(r);
        }
    }
    v
}

/// Build normalized KB projectors (one per atom with `e_kb != 0`).
pub fn build_projectors(mesh: &Mesh3, atoms: &AtomSet) -> Vec<NonlocalProjector> {
    let dv = mesh.dv();
    let mut out = Vec::new();
    for atom in &atoms.atoms {
        let sp = &atoms.species[atom.species];
        if sp.e_kb == 0.0 {
            continue;
        }
        let cutoff = 5.0 * sp.r_nl;
        let mut entries = Vec::new();
        let mut norm2 = 0.0;
        for (i, j, k) in mesh.iter_points() {
            let p = mesh.position(i, j, k);
            let r = crate::atoms::distance(p, atom.pos);
            if r > cutoff {
                continue;
            }
            let amp = sp.projector(r);
            entries.push((mesh.idx(i, j, k), amp));
            norm2 += amp * amp;
        }
        let norm = (norm2 * dv).sqrt();
        if norm < 1e-12 {
            continue; // atom outside this domain's mesh
        }
        for e in &mut entries {
            e.1 /= norm;
        }
        out.push(NonlocalProjector {
            entries,
            e_kb: sp.e_kb,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Species;
    use dcmesh_math::linalg;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_field(rng: &mut StdRng, n: usize) -> Vec<C64> {
        (0..n)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn test_hamiltonian() -> Hamiltonian {
        let mesh = Mesh3::cubic(10, 0.5);
        let mut atoms = AtomSet::new(vec![Species::titanium()]);
        atoms.push(0, mesh.center());
        Hamiltonian::from_atoms(mesh, &atoms, None)
    }

    #[test]
    fn hamiltonian_is_hermitian() {
        let h = test_hamiltonian();
        let mut rng = StdRng::seed_from_u64(51);
        let a = random_field(&mut rng, h.mesh().len());
        let b = random_field(&mut rng, h.mesh().len());
        let mut ha = vec![C64::zero(); a.len()];
        let mut hb = vec![C64::zero(); b.len()];
        h.apply(&a, &mut ha, true);
        h.apply(&b, &mut hb, true);
        let lhs = linalg::dotc(&b, &ha); // <b|H a>
        let rhs = linalg::dotc(&hb, &a); // <H b|a>
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn expectation_is_real_and_bounded() {
        let h = test_hamiltonian();
        let mut rng = StdRng::seed_from_u64(52);
        let psi = random_field(&mut rng, h.mesh().len());
        let e = h.expectation(&psi, true);
        assert!(e.is_finite());
        assert!(e < h.spectral_bound());
    }

    #[test]
    fn kinetic_of_constant_in_interior_is_zero() {
        let mesh = Mesh3::cubic(8, 0.5);
        let h = Hamiltonian::with_potential(mesh.clone(), vec![0.0; mesh.len()]);
        let psi = vec![C64::one(); mesh.len()];
        let mut out = vec![C64::zero(); mesh.len()];
        h.apply_kinetic(&psi, &mut out);
        // Interior points see a flat field: Laplacian = 0.
        let c = mesh.idx(4, 4, 4);
        assert!(out[c].abs() < 1e-14);
        // Boundary points feel the Dirichlet wall: nonzero.
        assert!(out[mesh.idx(0, 4, 4)].abs() > 0.0);
    }

    #[test]
    fn nonlocal_is_rank_one_per_projector() {
        let h = test_hamiltonian();
        assert_eq!(h.projectors.len(), 1);
        let proj = &h.projectors[0];
        // Applying v_nl to the projector itself returns e_kb * projector.
        let mut chi = vec![C64::zero(); h.mesh().len()];
        for &(idx, p) in &proj.entries {
            chi[idx] = C64::from_real(p);
        }
        let mut out = vec![C64::zero(); h.mesh().len()];
        h.apply_nonlocal(&chi, &mut out);
        for &(idx, p) in &proj.entries {
            let want = proj.e_kb * p;
            assert!((out[idx].re - want).abs() < 1e-9, "idx {idx}");
        }
    }

    #[test]
    fn projector_normalized() {
        let h = test_hamiltonian();
        let dv = h.mesh().dv();
        let n2: f64 = h.projectors[0]
            .entries
            .iter()
            .map(|&(_, p)| p * p)
            .sum::<f64>()
            * dv;
        assert!((n2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_pseudopotential_attractive_at_atom() {
        let mesh = Mesh3::cubic(12, 0.5);
        let mut atoms = AtomSet::new(vec![Species::oxygen()]);
        let c = mesh.center();
        atoms.push(0, c);
        let v = local_pseudopotential(&mesh, &atoms);
        let (ci, cj, ck) = mesh.nearest_point(c);
        let v_at = v[mesh.idx(ci, cj, ck)];
        let v_far = v[mesh.idx(0, 0, 0)];
        assert!(v_at < v_far && v_at < -1.0, "v_at={v_at} v_far={v_far}");
    }

    #[test]
    fn atom_outside_mesh_yields_no_projector() {
        let mesh = Mesh3::cubic(8, 0.4);
        let mut atoms = AtomSet::new(vec![Species::titanium()]);
        atoms.push(0, [100.0, 100.0, 100.0]);
        let projs = build_projectors(&mesh, &atoms);
        assert!(projs.is_empty());
    }

    #[test]
    fn loc_nl_split_adds_up() {
        let h = test_hamiltonian();
        let mut rng = StdRng::seed_from_u64(53);
        let psi = random_field(&mut rng, h.mesh().len());
        let mut full = vec![C64::zero(); psi.len()];
        h.apply(&psi, &mut full, true);
        let mut loc = vec![C64::zero(); psi.len()];
        h.apply(&psi, &mut loc, false);
        let mut nl = vec![C64::zero(); psi.len()];
        h.apply_nonlocal(&psi, &mut nl);
        for i in 0..psi.len() {
            assert!((full[i] - (loc[i] + nl[i])).abs() < 1e-12);
        }
    }
}
