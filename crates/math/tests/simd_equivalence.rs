//! Property tests: the SIMD (AVX2 split-complex) kernels must agree with
//! the scalar reference within tight accumulation-order bounds, across odd
//! shapes, remainder lanes, and every `Op` transpose case — and the forced
//! scalar backend must be *bitwise* identical to the serial reference.
//!
//! Tolerance model: complex FMA kernels and the scalar loops evaluate the
//! same sums in different association orders, so each output entry may
//! differ by a few ulps per accumulated term. We bound the difference by
//! `64 * EPS * (k + 4) * scale` where `k` is the contraction depth and
//! `scale` the magnitude of the entries involved — a bound a couple of
//! orders above the observed differences but far below any algorithmic
//! error.

use dcmesh_math::gemm::{
    gemm_blocked, gemm_colmajor_with_backend, gemm_naive, gemm_with_backend, Matrix, Op,
};
use dcmesh_math::simd::{self, Backend};
use dcmesh_math::C64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const OPS: [Op; 3] = [Op::None, Op::Trans, Op::ConjTrans];

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<C64> {
    (0..n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Accumulation-order tolerance for a depth-`k` contraction of O(1) data.
fn tol(k: usize) -> f64 {
    64.0 * f64::EPSILON * (k as f64 + 4.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_gemm_matches_naive_all_ops(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..60,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let alpha = C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        let beta = C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
        for op_a in OPS {
            for op_b in OPS {
                let a = match op_a {
                    Op::None => random_matrix(&mut rng, m, k),
                    _ => random_matrix(&mut rng, k, m),
                };
                let b = match op_b {
                    Op::None => random_matrix(&mut rng, k, n),
                    _ => random_matrix(&mut rng, n, k),
                };
                let mut want = random_matrix(&mut rng, m, n);
                let mut got = want.data().to_vec();
                gemm_naive(alpha, &a, op_a, &b, op_b, beta, &mut want);
                // Drive the packed SIMD kernel directly (no shape-size
                // dispatch gate) so ragged MR/NR edge tiles are exercised.
                let used = simd::try_gemm_packed(
                    Backend::Avx2,
                    alpha,
                    a.data(),
                    (a.rows(), a.cols()),
                    op_a,
                    b.data(),
                    (b.rows(), b.cols()),
                    op_b,
                    beta,
                    &mut got,
                    (m, n),
                    k,
                );
                if !used {
                    // Non-AVX2 host: nothing to compare.
                    return;
                }
                for (g, w) in got.iter().zip(want.data()) {
                    prop_assert!(
                        (*g - *w).abs() < tol(k),
                        "({m},{n},{k}) {op_a:?}x{op_b:?}: {g:?} vs {w:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_scalar_gemm_is_bitwise_equal_to_blocked(
        m in 1usize..48,
        n in 1usize..48,
        // k > 64 keeps gemm on the blocked panel path (the thin-k axpy
        // fast path deliberately uses a different accumulation order and
        // is covered by the tolerance tests instead).
        k in 65usize..100,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let alpha = C64::new(0.7, -0.3);
        let beta = C64::new(-0.1, 0.2);
        let mut serial = random_matrix(&mut rng, m, n);
        let mut forced = serial.clone();
        gemm_blocked(alpha, &a, Op::None, &b, Op::None, beta, &mut serial);
        gemm_with_backend(Backend::Scalar, alpha, &a, Op::None, &b, Op::None, beta, &mut forced);
        prop_assert_eq!(serial.data(), forced.data());
    }

    #[test]
    fn scalar_vs_avx2_colmajor_agree(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_vec(&mut rng, m * k);
        let b = random_vec(&mut rng, k * n);
        let base = random_vec(&mut rng, m * n);
        let alpha = C64::new(0.9, 0.1);
        let beta = C64::new(0.2, -0.4);
        let mut c_s = base.clone();
        let mut c_v = base;
        gemm_colmajor_with_backend(
            Backend::Scalar,
            alpha, &a, (m, k), Op::None, &b, (k, n), Op::None, beta, &mut c_s, (m, n),
        );
        gemm_colmajor_with_backend(
            Backend::Avx2,
            alpha, &a, (m, k), Op::None, &b, (k, n), Op::None, beta, &mut c_v, (m, n),
        );
        for (s, v) in c_s.iter().zip(&c_v) {
            prop_assert!((*s - *v).abs() < tol(k), "({m},{n},{k}): {s:?} vs {v:?}");
        }
    }

    #[test]
    fn simd_stencil_pair_update_matches_scalar(
        len in 1usize..130,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Unit-magnitude pair coefficients, like the kinetic propagator's.
        let d = C64::from_polar(rng.gen_range(0.5..1.0), rng.gen_range(-3.0..3.0));
        let o = C64::from_polar(rng.gen_range(0.0..0.9), rng.gen_range(-3.0..3.0));
        let (mut a_s, mut b_s) = (random_vec(&mut rng, len), random_vec(&mut rng, len));
        let (mut a_v, mut b_v) = (a_s.clone(), b_s.clone());
        simd::pair_update_with(Backend::Scalar, &mut a_s, &mut b_s, d, o);
        simd::pair_update_with(Backend::Avx2, &mut a_v, &mut b_v, d, o);
        for (s, v) in a_s.iter().zip(&a_v).chain(b_s.iter().zip(&b_v)) {
            // Pointwise kernel: depth-2 contraction, a few ulps at most.
            prop_assert!((*s - *v).abs() < tol(2), "len={len}: {s:?} vs {v:?}");
        }
    }

    #[test]
    fn simd_scale_and_axpy_and_dotc_match_scalar(
        len in 1usize..130,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ph = C64::from_polar(1.0, rng.gen_range(-3.0..3.0));
        let alpha = C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));

        let mut z_s = random_vec(&mut rng, len);
        let mut z_v = z_s.clone();
        simd::scale_with(Backend::Scalar, &mut z_s, ph);
        simd::scale_with(Backend::Avx2, &mut z_v, ph);
        for (s, v) in z_s.iter().zip(&z_v) {
            prop_assert!((*s - *v).abs() < tol(2));
        }

        let x = random_vec(&mut rng, len);
        let mut y_s = random_vec(&mut rng, len);
        let mut y_v = y_s.clone();
        simd::axpy_with(Backend::Scalar, alpha, &x, &mut y_s);
        simd::axpy_with(Backend::Avx2, alpha, &x, &mut y_v);
        for (s, v) in y_s.iter().zip(&y_v) {
            prop_assert!((*s - *v).abs() < tol(2));
        }

        let d_s = simd::dotc_with(Backend::Scalar, &x, &y_s);
        let d_v = simd::dotc_with(Backend::Avx2, &x, &y_s);
        prop_assert!((d_s - d_v).abs() < tol(len), "len={len}: {d_s:?} vs {d_v:?}");
    }
}
