//! Floating-point abstraction over `f32`/`f64`.
//!
//! The paper compares single-precision (SP) and double-precision (DP) builds
//! of the LFD subprogram (Table II); every numerical kernel in this workspace
//! is generic over [`Real`] so the same code path can be measured in both.

use std::fmt::{Debug, Display, LowerExp};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in all dcmesh numerics (`f32` or `f64`).
///
/// The [`dcmesh_pool::arena::Pod`] supertrait lets every kernel borrow
/// cache-aligned scratch from the per-thread arena for `R` and
/// `Complex<R>` panels without further bounds.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + LowerExp
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + dcmesh_pool::arena::Pod
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;
    /// Archimedes' constant.
    const PI: Self;
    /// Machine epsilon.
    const EPSILON: Self;
    /// Human-readable precision label used in benchmark tables ("SP"/"DP").
    const PRECISION_LABEL: &'static str;

    /// Lossy conversion from `f64` (exact for `f64`, rounded for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from `usize` (via `f64`).
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }

    fn sqrt(self) -> Self;
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn sin(self) -> Self;
    fn cos(self) -> Self;
    fn tan(self) -> Self;
    fn tanh(self) -> Self;
    fn atan2(self, other: Self) -> Self;
    fn abs(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn powf(self, p: Self) -> Self;
    fn floor(self) -> Self;
    fn round(self) -> Self;
    fn is_finite(self) -> bool;
    fn max(self, other: Self) -> Self;
    fn min(self, other: Self) -> Self;
    /// Fused multiply-add `self * a + b` (maps to hardware FMA).
    fn mul_add(self, a: Self, b: Self) -> Self;
}

macro_rules! impl_real {
    ($t:ty, $label:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const PI: Self = std::f64::consts::PI as $t;
            const EPSILON: Self = <$t>::EPSILON;
            const PRECISION_LABEL: &'static str = $label;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn tan(self) -> Self {
                self.tan()
            }
            #[inline(always)]
            fn tanh(self) -> Self {
                self.tanh()
            }
            #[inline(always)]
            fn atan2(self, other: Self) -> Self {
                self.atan2(other)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn powi(self, n: i32) -> Self {
                self.powi(n)
            }
            #[inline(always)]
            fn powf(self, p: Self) -> Self {
                self.powf(p)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn round(self) -> Self {
                self.round()
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
        }
    };
}

impl_real!(f32, "SP");
impl_real!(f64, "DP");

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<R: Real>() {
        let x = R::from_f64(1.5);
        assert_eq!(x.to_f64(), 1.5);
        assert_eq!(R::from_usize(7).to_f64(), 7.0);
        assert!((R::PI.to_f64() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_f32_f64() {
        generic_roundtrip::<f32>();
        generic_roundtrip::<f64>();
    }

    #[test]
    fn precision_labels() {
        assert_eq!(<f32 as Real>::PRECISION_LABEL, "SP");
        assert_eq!(<f64 as Real>::PRECISION_LABEL, "DP");
    }

    #[test]
    fn basic_math_ops() {
        let x: f64 = Real::from_f64(4.0);
        assert_eq!(x.sqrt(), 2.0);
        assert!((Real::exp(1.0f64) - std::f64::consts::E).abs() < 1e-12);
        assert_eq!(Real::mul_add(2.0f64, 3.0, 1.0), 7.0);
        assert_eq!(Real::max(1.0f32, 2.0), 2.0);
    }
}
